//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free implementation of exactly the `rand` 0.8 API
//! surface the sources use: [`RngCore`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] and [`rngs::StdRng`].
//!
//! `StdRng` is a deterministic xoshiro256++ generator seeded through
//! SplitMix64, so `seed_from_u64` reproduces identical streams across runs
//! and platforms — which is all the tests, examples and benchmarks rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the `Standard` distribution in real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over half-open and inclusive ranges
/// (`SampleUniform` in real `rand`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics if `hi < lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift: unbiased enough for test workloads.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, available on every [`RngCore`]
/// (including `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the workspace's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: i32 = rng.gen_range(-4i32..=5);
            assert!((-4..=5).contains(&m));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..2000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (500..1500).contains(&trues),
            "gen_bool badly biased: {trues}"
        );
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let u: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&u));
        let k = dynrng.gen_range(0usize..5);
        assert!(k < 5);
    }
}
