//! A minimal, dependency-free binding to POSIX `poll(2)` — the single
//! readiness primitive behind `dds-server`'s reactor.
//!
//! The workspace builds offline, so instead of pulling in `libc` this
//! shim declares the one foreign function it needs and wraps it in a safe
//! slice API. Level-triggered semantics, exactly as the syscall provides
//! them: a fd stays readable/writable until drained, so a caller that
//! processes only part of the pending data simply sees the fd again on
//! the next call.
//!
//! POSIX-only (the workspace CI runs on Linux; macOS and the BSDs share
//! the same ABI for `poll`). The unsafety is confined to this crate —
//! `dds-server` itself keeps `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_short};
use std::os::unix::io::RawFd;

/// There is data to read.
pub const POLLIN: c_short = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (revents only).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: c_short = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: c_short = 0x020;

/// One entry of a `poll(2)` set: the fd, the events the caller asks
/// about, and the events the kernel reports back. `#[repr(C)]` with the
/// exact field order POSIX specifies, so a `&mut [PollFd]` is the
/// syscall's `struct pollfd *`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (a negative fd is ignored by the
    /// kernel — the POSIX idiom for a tombstoned slot).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: c_short,
    /// Returned events; the kernel may add `POLLERR`/`POLLHUP`/`POLLNVAL`
    /// even when unrequested.
    pub revents: c_short,
}

impl PollFd {
    /// A slot asking for `events` on `fd`, with `revents` cleared.
    pub fn new(fd: RawFd, events: c_short) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

#[cfg(target_os = "linux")]
type NfdsT = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
}

/// Waits up to `timeout_ms` for readiness on any slot (`-1` blocks
/// indefinitely, `0` polls), returning how many slots have non-zero
/// `revents`. `EINTR` is reported as `Ok(0)` — a spurious wakeup the
/// caller's loop handles anyway — so the only errors surfaced are real
/// ones (`EINVAL`, `ENOMEM`).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    if fds.is_empty() {
        return Ok(0);
    }
    // SAFETY: `PollFd` is `#[repr(C)]` and layout-identical to POSIX
    // `struct pollfd`; the pointer/length pair comes from a live mutable
    // slice, and the kernel writes only within those `nfds` entries.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readability_level_triggered() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let mut set = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing pending: a zero-timeout poll returns no ready slots.
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
        a.write_all(b"xy").unwrap();
        set[0].revents = 0;
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].revents & POLLIN != 0);
        // Level-triggered: reading one of the two bytes leaves the fd
        // readable on the next call.
        let mut one = [0u8; 1];
        b.read_exact(&mut one).unwrap();
        set[0].revents = 0;
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].revents & POLLIN != 0);
    }

    #[test]
    fn reports_hangup() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut set = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].revents & (POLLIN | POLLHUP) != 0);
    }

    #[test]
    fn empty_set_is_a_noop() {
        assert_eq!(poll_fds(&mut [], 1000).unwrap(), 0);
    }
}
