//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! small wall-clock benchmark harness exposing the criterion entry points the
//! bench files use: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`, `Bencher::iter`
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It reports a median ns/iter per benchmark on stdout. There is no
//! statistical analysis, plotting, or HTML report — the goal is that
//! `cargo bench` compiles, runs fast, and prints comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: a name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of auto-scaled
    /// iteration batches, and records the median ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow the batch until it runs
        // for at least ~1ms so timer resolution doesn't dominate.
        let mut batch: u64 = 1;
        let calibration_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        self.samples
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        self.samples[self.samples.len() / 2]
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.sample_size, |b| routine(b));
        self
    }

    /// Runs `routine` with an input value, criterion-style.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (separator line, criterion API parity).
    pub fn finish(self) {
        let _ = &self.criterion;
        println!();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut routine: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples recorded)");
    } else {
        println!("{name:<50} median {:>12.1} ns/iter", bencher.median_ns());
    }
}

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration. This shim ignores the harness arguments
    /// cargo passes (`--bench`, filters), so this is the identity.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, |b| routine(b));
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(ran, 1);
    }
}
