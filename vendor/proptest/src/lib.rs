//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing harness with the subset of the proptest API the
//! test suite uses: the [`Strategy`] trait (ranges, tuples, `prop_map`,
//! `collection::vec`), [`ProptestConfig`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! shim: no shrinking (a failing case reports the generated inputs via the
//! panic message but is not minimized), and generation is driven by a fixed
//! deterministic seed so CI failures reproduce locally.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// Rejection raised by [`prop_assume!`]; the case is discarded, not failed.
#[derive(Debug)]
pub struct TestCaseRejection;

/// Runner configuration; only `cases` is honored by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A fresh deterministic generator for one property function.
    pub fn new_rng() -> StdRng {
        StdRng::seed_from_u64(0xD15_7A3A_2E5E_A2C7)
    }
}

/// Everything a proptest file normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::new_rng();
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(20) + 100,
                        "proptest: too many inputs rejected by prop_assume!"
                    );
                    $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseRejection> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_eq!($lhs, $rhs);
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        assert_eq!($lhs, $rhs, $($fmt)*);
    };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseRejection);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(
            x in -5i32..5,
            v in prop::collection::vec((0u32..10).prop_map(|u| u * 2), 1..4),
            (a, b) in ((0i32..3), (0i32..3)),
        ) {
            prop_assume!(x != 0);
            prop_assert!(x != 0 && (-5..5).contains(&x));
            prop_assert!(v.iter().all(|&e| e % 2 == 0));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!((a >= 0, b >= 0), (true, true));
        }
    }
}
