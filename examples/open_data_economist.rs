//! Example 1.1 of the paper, end to end: an economist searches an open-data
//! repository of city crime datasets for
//!  (i) cities with >= 10% of incidents inside a target region, and
//!  (ii) cities with at least k neighborhoods of high quality of life
//!      (a linear function over crime/pollution/healthcare attributes).
//!
//! ```sh
//! cargo run --release --example open_data_economist
//! ```

use dds_core::framework::Repository;
use dds_core::pref::{PrefBuildParams, PrefIndex};
use dds_core::ptile::{PtileBuildParams, PtileThresholdIndex};
use dds_workload::CityScenario;

fn main() {
    let sc = CityScenario::generate(40, 500, 0.15, 2026);
    println!(
        "open-data repository: {} cities, {} incident records, focus region {:?}\n",
        sc.len(),
        sc.incidents.iter().map(Vec::len).sum::<usize>(),
        sc.brooklyn
    );

    // (i) Percentile search over incident locations.
    let incidents = Repository::from_point_sets(sc.incidents.clone());
    let ptile = PtileThresholdIndex::build(
        &incidents.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let mut coverage = ptile.query(&sc.brooklyn, 0.10);
    coverage.sort_unstable();
    println!(
        ">= 10% of incidents in the focus region ({} cities):",
        coverage.len()
    );
    for &c in &coverage {
        let mass = sc.brooklyn.mass(&sc.incidents[c]);
        let tag = if sc.focused_cities.contains(&c) {
            " [engineered]"
        } else {
            ""
        };
        println!("  {} mass={:.3}{}", sc.names[c], mass, tag);
    }
    // Soundness spot-check: every engineered city is present.
    assert!(sc.focused_cities.iter().all(|c| coverage.contains(c)));

    // (ii) Preference search over neighborhood quality vectors.
    let quality = Repository::from_point_sets(sc.quality.clone());
    let k = 5;
    let pref = PrefIndex::build(
        &quality.exact_synopses(),
        k,
        PrefBuildParams::exact_centralized(),
    );
    // The economist's quality-of-life weighting: equal parts safety, air
    // quality, healthcare.
    let s3 = 1.0 / 3.0f64.sqrt();
    let v = vec![s3, s3, s3];
    let tau = 0.25;
    let mut livable = pref.query(&v, tau);
    livable.sort_unstable();
    println!(
        "\n>= {k} neighborhoods with quality score >= {tau} ({} cities):",
        livable.len()
    );
    for &c in &livable {
        let score = dds_workload::queries::exact_kth_score(&sc.quality[c], &v, k);
        println!("  {} omega_{k}={:.3}", sc.names[c], score);
    }

    // The combined discovery answer: statistically significant coverage AND
    // enough livable neighborhoods.
    let both: Vec<&str> = coverage
        .iter()
        .filter(|c| livable.contains(c))
        .map(|&c| sc.names[c].as_str())
        .collect();
    println!("\ncities satisfying both requirements: {both:?}");
}
