//! Federated data marketplace: the index never sees raw data — only
//! synopses (histograms / Gaussian mixtures / samples) published by data
//! owners. Shows measured synopsis error δ, the end-to-end ε + 2δ
//! guarantee, and the no-false-negative property the paper argues is
//! essential in marketplaces (Section 1).
//!
//! ```sh
//! cargo run --release --example federated_marketplace
//! ```

use dds_core::baseline::SynopsisScanPtile;
use dds_core::framework::{Interval, Repository};
use dds_core::guarantee::check_ptile;
use dds_core::pool::BuildOptions;
use dds_core::ptile::{PtileBuildParams, PtileRangeIndex};
use dds_geom::Point;
use dds_synopsis::{
    error, ExactSynopsis, GaussianMixtureSynopsis, GridHistogram, PercentileSynopsis,
    UniformSampleSynopsis,
};
use dds_workload::{queries, RepoSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n_datasets = 120;
    let spec = RepoSpec::mixed(n_datasets, 1500, 1, 99);
    let sets = spec.build();
    let repo = Repository::from_point_sets(sets.clone());
    let mut rng = StdRng::seed_from_u64(100);

    // Every data owner publishes a synopsis of their choice. (`+ Sync` so
    // the marketplace can sweep and index them on the worker pool.)
    println!("data owners publish synopses (no raw data leaves the owner):");
    let synopses: Vec<Box<dyn PercentileSynopsis + Sync>> = sets
        .iter()
        .enumerate()
        .map(|(i, pts)| -> Box<dyn PercentileSynopsis + Sync> {
            match i % 3 {
                0 => Box::new(GridHistogram::from_points(pts, 128)),
                1 => Box::new(GaussianMixtureSynopsis::fit(pts, 8, 12, &mut rng)),
                _ => Box::new(UniformSampleSynopsis::from_points(
                    pts, 1200, 0.001, &mut rng,
                )),
            }
        })
        .collect();

    // The marketplace measures δ per owner (Remark 2 with known budgets):
    // a coarse mixture synopsis gets a wide personal band, a fine histogram
    // a tight one — nobody pays for the worst publisher. The whole-federation
    // sweep fans out over the worker pool (DDS_THREADS / all cores), one RNG
    // stream per owner — same δ_i at every thread count.
    let opts = BuildOptions::default();
    let t0 = Instant::now();
    let deltas: Vec<f64> = error::estimate_percentile_errors(&synopses, &sets, 120, 101, &opts)
        .into_iter()
        .map(|d| (1.5 * d + 0.01).clamp(0.01, 0.5))
        .collect();
    let delta_max = deltas.iter().fold(0.0f64, |a, &b| a.max(b));
    let delta_med = {
        let mut d = deltas.clone();
        d.sort_by(|a, b| a.total_cmp(b));
        d[d.len() / 2]
    };
    println!(
        "  measured per-owner errors: median delta = {:.4}, worst = {:.4} ({:.1?})\n",
        delta_med,
        delta_max,
        t0.elapsed()
    );

    // Build the federated index from synopses alone.
    let t0 = Instant::now();
    // Empirical-margin mode: the provable Hoeffding ε is very conservative;
    // we use an empirically sized sampling margin instead and validate the
    // guarantees
    // against ground truth below (see PtileBuildParams::eps_override docs).
    let params = PtileBuildParams::default()
        .with_rect_budget(8192)
        .with_empirical_eps(0.12);
    let index = PtileRangeIndex::build_with_deltas_opts(&synopses, Some(&deltas), params, &opts);
    println!(
        "federated index: {} lifted points, eps = {:.3}, band = ±{:.3}, built in {:.1?}\n",
        index.lifted_points(),
        index.eps(),
        index.slack(),
        t0.elapsed()
    );

    // Also build the Fainder-style baseline: scan all synopses per query.
    let exact_syns: Vec<ExactSynopsis> = repo.exact_synopses();
    let scan = SynopsisScanPtile::new(exact_syns, 0.0);

    // Run buyer queries; verify no dataset that truly qualifies is missed.
    let bbox = spec.bbox();
    let mut total_missed = 0usize;
    let mut total_reported = 0usize;
    let mut total_exact = 0usize;
    let mut index_time = std::time::Duration::ZERO;
    let mut scan_time = std::time::Duration::ZERO;
    let n_queries = 50;
    for _ in 0..n_queries {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.1);
        let theta = Interval::new(a, b);

        let t = Instant::now();
        let hits = index.query(&r, theta);
        index_time += t.elapsed();

        let t = Instant::now();
        let _ = scan.query(&r, theta);
        scan_time += t.elapsed();

        let pts: Vec<Vec<Point>> = sets.clone();
        let check = check_ptile(&pts, &r, theta, &hits, index.slack());
        total_missed += check.missed.len();
        total_reported += check.reported;
        total_exact += check.exact_out;
        assert!(
            check.out_of_band.is_empty(),
            "band violation: {:?}",
            check.out_of_band
        );
    }
    println!("{n_queries} buyer queries:");
    println!("  qualifying datasets (exact):   {total_exact}");
    println!("  reported by federated index:   {total_reported}");
    println!("  missed (false negatives):      {total_missed}  <- must be 0");
    println!(
        "  avg query time: index {:.1?} vs synopsis scan {:.1?}",
        index_time / n_queries,
        scan_time / n_queries
    );
    assert_eq!(total_missed, 0, "marketplace recall violated");
    println!(
        "\nall reported datasets are within the ±{:.3} band.",
        index.slack()
    );
}
