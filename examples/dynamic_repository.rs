//! A living repository: datasets are published and withdrawn over time;
//! the dynamic indexes (Remark 1 of Theorems 4.11 / 5.4) absorb both
//! without rebuilding.
//!
//! ```sh
//! cargo run --release --example dynamic_repository
//! ```

use dds_core::framework::Interval;
use dds_core::pool::BuildOptions;
use dds_core::pref::{DynamicPrefIndex, PrefBuildParams};
use dds_core::ptile::{DynamicPtileIndex, PtileBuildParams};
use dds_geom::Rect;
use dds_synopsis::ExactSynopsis;
use dds_workload::datasets;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ptile = DynamicPtileIndex::new(1, PtileBuildParams::exact_centralized());
    let mut pref = DynamicPrefIndex::new(2, 3, PrefBuildParams::exact_centralized());

    // Day 0: a bulk load. `insert_batch` computes the per-synopsis payloads
    // on the worker pool (per-handle RNG streams) and lands bit-identical
    // to a serial `insert_synopsis` loop.
    let backlog: Vec<ExactSynopsis> = (0..30)
        .map(|i| {
            let lo = 200.0 + 3.0 * i as f64;
            let pts = datasets::uniform_cube(&mut rng, 50, &Rect::interval(lo, lo + 2.0));
            ExactSynopsis::new(pts)
        })
        .collect();
    let t0 = Instant::now();
    let bulk_handles = ptile.insert_batch(&backlog, &BuildOptions::default());
    println!(
        "bulk-loaded {} archived datasets in {:.1?} (worker pool)",
        bulk_handles.len(),
        t0.elapsed()
    );
    for h in bulk_handles {
        assert!(ptile.remove_synopsis(h), "bulk handles are live");
    }

    // A sliding window of live datasets: publish one per tick, withdraw the
    // oldest once the window is full.
    let window = 40;
    let mut live: VecDeque<(u64, u64, f64)> = VecDeque::new(); // (ptile h, pref h, center)
    let mut insert_total = std::time::Duration::ZERO;
    let mut remove_total = std::time::Duration::ZERO;
    let mut ticks = 0u32;

    for t in 0..200u32 {
        // New dataset clustered around a drifting center.
        let center = (t as f64 * 0.7) % 100.0;
        let box1 = Rect::interval(center, center + 5.0);
        let pts = datasets::uniform_cube(&mut rng, 60, &box1);
        let ball = datasets::unit_ball(&mut rng, 40, 2);

        let t0 = Instant::now();
        let hp = ptile.insert_synopsis(&ExactSynopsis::new(pts));
        let hq = pref.insert_synopsis(&ExactSynopsis::new(ball));
        insert_total += t0.elapsed();
        live.push_back((hp, hq, center));
        ticks += 1;

        if live.len() > window {
            let (hp, hq, _) = live.pop_front().unwrap();
            let t0 = Instant::now();
            assert!(ptile.remove_synopsis(hp));
            assert!(pref.remove_synopsis(hq));
            remove_total += t0.elapsed();
        }

        // Periodic queries against the live window.
        if t % 50 == 49 {
            let probe_center = live[live.len() / 2].2;
            let r = Rect::interval(probe_center - 2.0, probe_center + 7.0);
            let hits = ptile.query(&r, Interval::new(0.5, 1.0));
            let v = {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let y: f64 = rng.gen_range(-1.0..1.0);
                let n = (x * x + y * y).sqrt().max(1e-6);
                [x / n, y / n]
            };
            let pref_hits = pref.query(&v, 0.5);
            println!(
                "tick {:>3}: {} live datasets | ptile window hits = {:>2} | pref hits = {:>2}",
                t + 1,
                live.len(),
                hits.len(),
                pref_hits.len()
            );
            // The window datasets fully covered by the probe must be found.
            for &(hp, _, c) in &live {
                let covered = r.contains_rect(&Rect::interval(c, c + 5.0));
                if covered {
                    assert!(hits.contains(&hp), "missed fully-covered dataset");
                }
            }
        }
    }

    println!(
        "\n{} inserts ({:.1?} avg), {} removals ({:.1?} avg) — no rebuilds.",
        ticks,
        insert_total / ticks,
        ticks.saturating_sub(window as u32),
        remove_total / ticks.saturating_sub(window as u32).max(1)
    );

    // Point sanity check after heavy churn.
    let _ = ptile.query(&Rect::interval(0.0, 100.0), Interval::new(0.0, 1.0));
    println!("final live datasets: {}", ptile.len());
}
