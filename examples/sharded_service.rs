//! A sharded catalog service: the repository is split across shards (one
//! `MixedQueryEngine` each), queries scatter over every shard and gather
//! **stable global dataset ids**, and each shard's cross-call mask cache
//! keeps the read-mostly steady state cheap. A nightly data refresh
//! rebuilds one shard in place — ids survive, and only that shard's cache
//! is invalidated.
//!
//! ```sh
//! cargo run --release --example sharded_service
//! ```

use distribution_aware_search::prelude::*;
use std::time::Instant;

fn main() {
    // The catalog: 240 mixed-flavour datasets, partitioned round-robin
    // into 4 shards. Global id i names the i-th dataset of the unsharded
    // build order, forever.
    let spec = RepoSpec::mixed(240, 250, 1, 0x5EA);
    let mut svc = ShardedEngine::new(
        &[1],
        PtileBuildParams::default().with_rect_budget(400),
        PrefBuildParams::exact_centralized().with_eps(0.05),
    )
    .with_cache_capacity(256);
    let t0 = Instant::now();
    for shard in spec.shards(4) {
        svc.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
    }
    println!(
        "ingested {} datasets into {} shards in {:.1?}",
        svc.n_datasets(),
        svc.n_shards(),
        t0.elapsed()
    );

    // Morning traffic: a batch of popular filters (every query repeats a
    // handful of predicate shapes, as catalog traffic does).
    let shapes: Vec<LogicalExpr> = (0..6)
        .map(|i| {
            let lo = 12.0 * i as f64;
            LogicalExpr::Or(vec![
                LogicalExpr::And(vec![
                    LogicalExpr::Pred(Predicate::percentile_at_least(
                        Rect::interval(lo, lo + 20.0),
                        0.35,
                    )),
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, 60.0)),
                ]),
                LogicalExpr::Pred(Predicate::percentile_at_least(
                    Rect::interval(lo, lo + 8.0),
                    0.8,
                )),
            ])
        })
        .collect();
    let batch: Vec<LogicalExpr> = (0..96).map(|i| shapes[i % shapes.len()].clone()).collect();

    let t1 = Instant::now();
    let answers = svc.query_batch(&batch);
    let (hits, misses) = svc.cache_stats();
    println!(
        "cold batch: {} queries in {:.1?}, cache {}h/{}m",
        batch.len(),
        t1.elapsed(),
        hits,
        misses
    );
    let first = answers[0].as_ref().expect("rank 1 is indexed");
    println!(
        "  query 0 → {} datasets, e.g. global ids {:?}",
        first.len(),
        &first[..first.len().min(5)]
    );

    // Steady state: the same filters again — served from the cross-call
    // caches (and still bit-identical).
    let t2 = Instant::now();
    let warm = svc.query_batch(&batch);
    let (h2, m2) = svc.cache_stats();
    assert_eq!(warm, answers, "cache warmth never changes answers");
    println!(
        "warm batch: {:.1?}, cache now {}h/{}m (hit rate {:.0}%)",
        t2.elapsed(),
        h2,
        m2,
        100.0 * (h2 - hits) as f64 / ((h2 - hits) + (m2 - misses)).max(1) as f64
    );

    // Nightly refresh: shard 2's datasets re-land (same global ids, new
    // data). Only shard 2's cache generation is bumped.
    let refreshed = RepoSpec::mixed(240, 250, 1, 0x5EB).shards(4).swap_remove(2);
    let ids = refreshed.global_ids.clone();
    let t3 = Instant::now();
    svc.rebuild_shard(2, &Repository::from_point_sets(refreshed.sets), &ids);
    println!(
        "rebuilt shard 2 ({} datasets) in {:.1?}; ids {}..{} unchanged",
        ids.len(),
        t3.elapsed(),
        ids.first().unwrap(),
        ids.last().unwrap()
    );

    let t4 = Instant::now();
    let after = svc.query_batch(&batch);
    let (h4, m4) = svc.cache_stats();
    println!(
        "post-rebuild batch: {:.1?}, cache {}h/{}m (shard 2 recomputed, shards 0/1/3 stayed warm)",
        t4.elapsed(),
        h4,
        m4
    );
    // Answers may legitimately change (the data did) — but ids keep
    // meaning the same slots: any id outside shard 2 answers exactly as
    // before.
    let shard2: std::collections::HashSet<GlobalId> = ids.into_iter().collect();
    for (expr_i, (before_r, after_r)) in answers.iter().zip(&after).enumerate() {
        let stable_before: Vec<&GlobalId> = before_r
            .as_ref()
            .unwrap()
            .iter()
            .filter(|id| !shard2.contains(id))
            .collect();
        let stable_after: Vec<&GlobalId> = after_r
            .as_ref()
            .unwrap()
            .iter()
            .filter(|id| !shard2.contains(id))
            .collect();
        assert_eq!(
            stable_before, stable_after,
            "query {expr_i}: non-rebuilt shards answer identically"
        );
    }
    println!("stable-id check passed: non-rebuilt shards' answers are unchanged");
}
