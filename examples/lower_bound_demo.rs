//! The Section 3 lower-bound constructions, executed: set intersection
//! answered through a CPtile index over the Figure 4 geometry, and
//! halfspace reporting answered through a CPref index.
//!
//! ```sh
//! cargo run --release --example lower_bound_demo
//! ```

use dds_core::lowerbound::{HalfspaceReporter, SetIntersectionCPtile};
use dds_workload::{datasets, UniformSetInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Uniform set intersection -> CPtile (Theorem 3.4) ---------------
    let inst = UniformSetInstance::generate(8, 60, 3, 42);
    println!(
        "uniform set-intersection instance: g = {} sets, universe = {}, every element in {} sets, M = {}",
        inst.sets.len(),
        inst.universe,
        inst.replication,
        inst.total_size()
    );
    let red = SetIntersectionCPtile::build(&inst.sets, inst.universe);
    let mut checked = 0usize;
    for i in 0..inst.sets.len() {
        for j in (i + 1)..inst.sets.len() {
            let via_cptile = red.intersect(i, j);
            let brute = inst.intersect(i, j);
            assert_eq!(via_cptile, brute, "S_{i} ∩ S_{j}");
            checked += 1;
        }
    }
    println!(
        "  answered all {} set-intersection queries through the CPtile oracle\n  (every |S_i ∩ S_j| matched brute force — a fast CPtile structure\n   would therefore break the strong set-intersection conjecture)\n",
        checked
    );
    let sample = red.intersect(0, 1);
    println!("  example: S_0 ∩ S_1 = {sample:?}\n");

    // ---- Halfspace reporting -> CPref (Theorem 3.5) ----------------------
    let mut rng = StdRng::seed_from_u64(43);
    let pts = datasets::unit_ball(&mut rng, 200, 3);
    let rep = HalfspaceReporter::build(pts.clone(), 0.08);
    let w = [0.267, 0.535, 0.802]; // 1:2:3 direction, normalized
    let c = 0.4;
    let hits = rep.report(&w, c);
    let cands = rep.candidates(&w, c);
    println!("halfspace reporting via CPref: |U| = 200 points in R^3, H = {{x : <x, w> >= {c}}}");
    println!(
        "  CPref candidates: {} (superset within band ±{:.3}), exact answer: {}",
        cands.len(),
        rep.band(),
        hits.len()
    );
    let brute: Vec<usize> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.dot(&w) >= c)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits, brute);
    println!("  exact answer matches brute force — the reduction is faithful.");
}
