//! Quickstart: build a small repository, run percentile (Ptile) and
//! preference (Pref) queries in the centralized setting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dds_core::framework::Interval;
use distribution_aware_search::prelude::*;

fn main() {
    // Three 1-d datasets — the running example of the paper's Section 4
    // (Figure 1) plus an outlier dataset.
    let repo = Repository::new(vec![
        Dataset::from_rows("sensor-a", vec![vec![1.0], vec![7.0], vec![9.0]]),
        Dataset::from_rows(
            "sensor-b",
            vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]],
        ),
        Dataset::from_rows("sensor-c", vec![vec![100.0], vec![200.0]]),
    ]);
    println!(
        "repository: {} datasets, {} tuples\n",
        repo.len(),
        repo.total_points()
    );

    // Builds run on a scoped worker pool; the default resolves DDS_THREADS
    // and falls back to all available cores. Any thread count produces
    // bit-identical indexes, so this is purely a build-latency knob.
    let opts = BuildOptions::default();
    println!("building with {} worker thread(s)\n", opts.threads);

    // ---- Ptile: threshold predicate -------------------------------------
    // "Which datasets have at least 20% of their points in [3, 8]?"
    let synopses = repo.exact_synopses();
    let threshold =
        PtileThresholdIndex::build_opts(&synopses, PtileBuildParams::exact_centralized(), &opts);
    let region = Rect::interval(3.0, 8.0);
    let hits = threshold.query(&region, 0.2);
    println!("Ptile threshold  M_[3,8] >= 0.20:");
    for j in &hits {
        println!(
            "  {} (mass {:.3})",
            repo.get(*j).name(),
            region.mass(repo.get(*j).points())
        );
    }

    // ---- Ptile: range predicate ------------------------------------------
    // "…between 20% and 40%?" — needs the maximal-rectangle structure.
    let range =
        PtileRangeIndex::build_opts(&synopses, PtileBuildParams::exact_centralized(), &opts);
    let hits = range.query(&region, Interval::new(0.2, 0.4));
    println!("\nPtile range  M_[3,8] in [0.20, 0.40]:");
    for j in &hits {
        println!(
            "  {} (mass {:.3})",
            repo.get(*j).name(),
            region.mass(repo.get(*j).points())
        );
    }

    // ---- Pref: top-k preference threshold --------------------------------
    // "Which datasets have at least 2 points scoring >= 6.0 along v = (1)?"
    let pref = PrefIndex::build_opts(&synopses, 2, PrefBuildParams::exact_centralized(), &opts);
    let hits = pref.query(&[1.0], 6.0);
    println!("\nPref  omega_2(P, v=[1]) >= 6.0:");
    for j in &hits {
        println!("  {}", repo.get(*j).name());
    }

    // Guarantees achieved by this build:
    println!(
        "\nguarantees: ptile slack = {:.4}, pref slack = {:.4} (0 = exact)",
        range.slack(),
        pref.slack()
    );
}
