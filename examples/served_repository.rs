//! A served catalog, end to end: a `DdsServer` starts empty on a loopback
//! port; the whole repository arrives through the wire (`add_shard`), a
//! request stream of popular filter shapes queries it (single and batch,
//! cold and warm caches), a nightly refresh rebuilds one shard in place,
//! and the server drains and shuts down gracefully — while a local mirror
//! engine pins every served answer **byte-identical** to in-process
//! execution, `MissingRank` errors included.
//!
//! ```sh
//! cargo run --release --example served_repository
//! ```

use distribution_aware_search::prelude::*;
use std::time::Instant;

fn engine_shell() -> ShardedEngine {
    ShardedEngine::new(
        &[1],
        PtileBuildParams::default().with_rect_budget(400),
        PrefBuildParams::exact_centralized().with_eps(0.05),
    )
    .with_cache_capacity(256)
}

fn main() {
    // Serve an EMPTY engine: the catalog is ingested over the wire.
    let server = DdsServer::serve(engine_shell(), "127.0.0.1:0", ServerConfig::default())
        .expect("bind a loopback port");
    let addr = server.local_addr();
    println!("serving on {addr}");
    let mut client = DdsClient::connect(addr).expect("connect");
    client.ping().expect("liveness");

    // The same ingest applied to a local mirror pins served ≡ in-process.
    let mut mirror = engine_shell();

    // Ingest: 180 mixed-flavour datasets in 3 shard-sized batches.
    let spec = RepoSpec::mixed(180, 220, 1, 0x5E4);
    let t0 = Instant::now();
    for shard in spec.shards(3) {
        let repo = Repository::from_point_sets(shard.sets);
        let idx = client.add_shard(&repo, &shard.global_ids).expect("ingest");
        let local_idx = mirror.add_shard(&repo, &shard.global_ids);
        assert_eq!(idx, local_idx);
    }
    println!(
        "ingested {} datasets into {} shards over the wire in {:.1?}",
        mirror.n_datasets(),
        mirror.n_shards(),
        t0.elapsed()
    );

    // Traffic: 48 requests over 6 popular shapes; every 8th asks for an
    // unindexed preference rank, so the stream carries typed errors too.
    let exprs = RequestStreamSpec::new(48, 7)
        .with_missing_rank_every(8, 5)
        .exprs(&spec);

    let t1 = Instant::now();
    let mut errors = 0usize;
    for (i, e) in exprs.iter().enumerate() {
        let served = client.query(e).expect("transport");
        assert_eq!(served, mirror.query(e), "request {i} diverged");
        errors += usize::from(served.is_err());
    }
    println!(
        "cold singles: {} served queries in {:.1?}, {} typed MissingRank answers, all ≡ in-process",
        exprs.len(),
        t1.elapsed(),
        errors
    );

    // The same stream as one batch — input-ordered and warm-cache served.
    let t2 = Instant::now();
    let served_batch = client.query_batch(&exprs).expect("transport");
    assert_eq!(served_batch, mirror.query_batch(&exprs));
    let stats = client.stats().expect("stats");
    println!(
        "warm batch: {} exprs in {:.1?}; cache {}h/{}m, {} scatter units routed past shards",
        exprs.len(),
        t2.elapsed(),
        stats.cache_hits,
        stats.cache_misses,
        stats.shards_routed_past,
    );

    // Nightly refresh: shard 1 re-lands under the same global ids.
    let refreshed = RepoSpec::mixed(180, 220, 1, 0x5E5).shards(3).swap_remove(1);
    let repo = Repository::from_point_sets(refreshed.sets);
    let t3 = Instant::now();
    client
        .rebuild_shard(1, &repo, &refreshed.global_ids)
        .expect("rebuild");
    mirror.rebuild_shard(1, &repo, &refreshed.global_ids);
    let post = client.query_batch(&exprs).expect("transport");
    assert_eq!(post, mirror.query_batch(&exprs));
    println!(
        "rebuilt shard 1 over the wire in {:.1?}; post-rebuild answers still ≡ in-process",
        t3.elapsed()
    );

    // A rejected ingest is a typed error, not a dead server.
    match client.add_shard(&repo, &refreshed.global_ids) {
        Err(ClientError::Server(e)) => println!("rejected duplicate ingest, typed: {e}"),
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // Stats, then graceful shutdown: admitted work drains, threads reap.
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} requests, {} queries (+{} batched exprs), {} admin ops, \
         {} busy rejections, {} bytes in / {} bytes out",
        stats.requests,
        stats.queries,
        stats.batch_exprs,
        stats.admin_ops,
        stats.busy_rejections,
        stats.bytes_in,
        stats.bytes_out,
    );
    client.shutdown_server().expect("shutdown ack");
    server.wait_shutdown();
    let final_stats = server.shutdown();
    println!(
        "server drained and stopped; lifetime sessions: {}, jobs completed: {}",
        final_stats.sessions_opened, final_stats.jobs_completed
    );
}
