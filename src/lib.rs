//! # Distribution-Aware Dataset Search
//!
//! Umbrella crate re-exporting the workspace libraries that implement
//! *"A Theoretical Framework for Distribution-Aware Dataset Search"*
//! (PODS 2025): percentile-aware (**Ptile**) and preference-aware (**Pref**)
//! indexing over repositories of datasets, in both the centralized and the
//! federated (synopsis-only) setting.
//!
//! See the individual crates for the full APIs:
//!
//! * [`geom`] — geometric substrate (rectangles, coordinate grids, ε-nets).
//! * [`rangetree`] — orthogonal search structures (range trees, kd-trees,
//!   dynamic wrappers).
//! * [`synopsis`] — dataset synopses (samples, histograms, mixtures) with
//!   measured error.
//! * [`workload`] — seeded data and query generators used by tests, examples
//!   and benchmarks.
//! * [`core`] — the paper's data structures: Ptile/Pref indexes, baselines,
//!   lower-bound reductions.
//!
//! ## Quickstart
//!
//! ```
//! use distribution_aware_search::prelude::*;
//!
//! // Three tiny 1-d datasets.
//! let datasets = vec![
//!     Dataset::from_rows("a", vec![vec![1.0], vec![7.0], vec![9.0]]),
//!     Dataset::from_rows("b", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
//!     Dataset::from_rows("c", vec![vec![100.0], vec![200.0]]),
//! ];
//! let repo = Repository::new(datasets);
//!
//! // Centralized percentile search: which datasets have >= 20% of their
//! // points inside [3, 8]?
//! let index = PtileThresholdIndex::build(
//!     &repo.exact_synopses(),
//!     PtileBuildParams::exact_centralized(),
//! );
//! let mut hits = index.query(&Rect::from_bounds(&[3.0], &[8.0]), 0.2);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 1]);
//! ```
//!
//! ## Threading
//!
//! Index construction runs on a scoped std-thread worker pool. Every index
//! offers a `*_opts` constructor taking a [`prelude::BuildOptions`] (thread
//! count; the default resolves `DDS_THREADS` and falls back to all available
//! cores), and `MixedQueryEngine::build` uses the default pool implicitly.
//! The thread count **never** changes results: parallel builds are
//! bit-identical to serial ones for every index family.
//!
//! ## Sharding
//!
//! [`prelude::ShardedEngine`] scales past one index: one engine per
//! repository shard, scatter/gather queries over the same pool, answers as
//! **stable global dataset ids** in ascending order — bit-identical to a
//! single unsharded engine at every shard count × thread count (for exact
//! builds unconditionally; for sampled builds, per-dataset RNGs are seeded
//! by global id and the φ-split can be anchored with
//! `PtileBuildParams::with_phi_datasets` — see `dds_core::shard`). Each
//! shard keeps a bounded, generation-tagged cross-call predicate-mask
//! cache ([`prelude::MaskCache`]); rebuilding a shard invalidates only its
//! own cache entries. Per-shard value bounding boxes let queries route
//! past shards that provably cannot match — answer-invisible, on by
//! default.
//!
//! ## Serving
//!
//! [`server`] (`dds-server`) puts a `ShardedEngine` behind a TCP
//! boundary: a hand-rolled length-prefixed wire protocol
//! (`crates/server/PROTOCOL.md`), a fixed pool of readiness-driven I/O
//! threads (nonblocking sockets over `poll(2)` — thousands of idle
//! connections per thread, no async runtime), a size-classed session
//! buffer pool (steady-state serving allocates nothing per frame), a
//! bounded admission queue whose overflow answers a typed `Busy`
//! (backpressure with bounded memory), optional per-session token-bucket
//! rate limits ([`prelude::RateLimit`], a typed `throttled` error),
//! graceful drain-on-shutdown, and a blocking [`prelude::DdsClient`]
//! (socket timeouts via [`prelude::ClientConfig`]) whose served answers
//! are **byte-identical** to the in-process engine's — typed
//! [`prelude::EngineError`]s included.
//!
//! ## Errors
//!
//! Fallibility is typed at the core boundary: `dds_core::error` gathers
//! [`prelude::EngineError`] (query-time: unindexed ranks, schema
//! dimension mismatches — also available through the panic-free
//! `try_query*` variants on both engines) and [`prelude::IngestError`]
//! (ingest-time: duplicate or malformed shard content) in one module.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dds_core as core;
pub use dds_geom as geom;
pub use dds_rangetree as rangetree;
pub use dds_server as server;
pub use dds_synopsis as synopsis;
pub use dds_workload as workload;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use dds_core::bitset::BitSet;
    pub use dds_core::cache::MaskCache;
    pub use dds_core::engine::MixedQueryEngine;
    pub use dds_core::error::{EngineError, IngestError};
    pub use dds_core::framework::{
        Dataset, Interval, LogicalExpr, MeasureFunction, Predicate, Repository,
    };
    pub use dds_core::pool::BuildOptions;
    pub use dds_core::pref::{PrefBuildParams, PrefIndex, PrefMultiIndex};
    pub use dds_core::ptile::{
        ExactCPtile1D, PtileBuildParams, PtileMultiIndex, PtileRangeIndex, PtileThresholdIndex,
    };
    pub use dds_core::scratch::QueryScratch;
    pub use dds_core::shard::{
        GlobalId, RebalanceAction, RebalanceConfig, ShardLoad, ShardedEngine, ShardedStats,
    };
    pub use dds_core::telemetry::{HistogramSnapshot, LatencyHistogram, QueryTrace, SlowQueryLog};
    pub use dds_geom::{Point, Rect};
    pub use dds_server::{
        ChaosProxy, ClientConfig, ClientError, DdsClient, DdsServer, FaultPlan, MetricsReport,
        RateLimit, RetryPolicy, ServerConfig, ServerStats,
    };
    pub use dds_synopsis::{PercentileSynopsis, PrefSynopsis};
    pub use dds_workload::{FaultScheduleSpec, RepoShard, RepoSpec, RequestStreamSpec};
}
