//! ε-sample synopses: fixed-size uniform samples.
//!
//! By the ε-sample theorem (Section 2, [53] / [17] in the paper) a uniform
//! sample of size `O(ε⁻² log φ⁻¹)` is, with probability `1 − φ`, an
//! ε-sample for the range space of axis-parallel rectangles: every
//! rectangle's mass in the sample deviates from its mass in the dataset by
//! at most ε. [`UniformSampleSynopsis`] is that synopsis; [`eps_sample_size`]
//! and [`sample_error_bound`] expose the size/error bookkeeping used by the
//! index builders.

use crate::{PercentileSynopsis, PrefSynopsis};
use dds_geom::{Point, Rect};
use rand::{Rng, RngCore};

/// Sample size sufficient for an ε-sample over rectangles with failure
/// probability φ: `ceil(C · ε⁻² · ln(2/φ))` with the constant `C = 0.5`
/// of the additive-Hoeffding form used per canonical rectangle.
pub fn eps_sample_size(eps: f64, phi: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
    assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
    (0.5 * (2.0 / phi).ln() / (eps * eps)).ceil() as usize
}

/// Inverse of [`eps_sample_size`]: the ε guaranteed by a sample of size `m`
/// with failure probability φ.
pub fn sample_error_bound(m: usize, phi: f64) -> f64 {
    assert!(m > 0, "empty sample has no error bound");
    assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
    (0.5 * (2.0 / phi).ln() / m as f64).sqrt().min(1.0)
}

/// A uniform sample of a dataset, used as a federated synopsis.
#[derive(Clone, Debug)]
pub struct UniformSampleSynopsis {
    sample: Vec<Point>,
    dim: usize,
    /// Size of the original dataset (needed for rank-scaled top-k scores).
    original_len: usize,
    /// Failure probability used for the advertised error bound.
    phi: f64,
}

impl UniformSampleSynopsis {
    /// Draws a with-replacement uniform sample of size `m` from `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty or `m == 0`.
    pub fn from_points(points: &[Point], m: usize, phi: f64, rng: &mut dyn RngCore) -> Self {
        assert!(!points.is_empty(), "cannot sample an empty dataset");
        assert!(m > 0, "sample size must be positive");
        let dim = points[0].dim();
        let sample = (0..m)
            .map(|_| points[rng.gen_range(0..points.len())].clone())
            .collect();
        UniformSampleSynopsis {
            sample,
            dim,
            original_len: points.len(),
            phi,
        }
    }

    /// The retained sample.
    pub fn sample_points(&self) -> &[Point] {
        &self.sample
    }

    /// Size of the summarized dataset.
    pub fn original_len(&self) -> usize {
        self.original_len
    }
}

impl PercentileSynopsis for UniformSampleSynopsis {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (0..n)
            .map(|_| self.sample[rng.gen_range(0..self.sample.len())].clone())
            .collect()
    }

    fn mass(&self, r: &Rect) -> f64 {
        r.mass(&self.sample)
    }

    fn all_points(&self) -> Option<&[Point]> {
        Some(&self.sample)
    }

    fn percentile_delta(&self) -> Option<f64> {
        Some(sample_error_bound(self.sample.len(), self.phi))
    }

    fn memory_bytes(&self) -> usize {
        self.sample.len() * (self.dim * 8 + 24)
    }
}

impl PrefSynopsis for UniformSampleSynopsis {
    fn dim(&self) -> usize {
        self.dim
    }

    /// Rank-scaled estimate: the k-th largest of `n` original points sits at
    /// quantile `1 - k/n`; we read the corresponding order statistic of the
    /// sample.
    fn score(&self, v: &[f64], k: usize) -> f64 {
        if k == 0 || k > self.original_len {
            return f64::NEG_INFINITY;
        }
        let m = self.sample.len();
        let scaled = ((k as f64 / self.original_len as f64) * m as f64).round() as usize;
        let k_s = scaled.clamp(1, m);
        let mut scores: Vec<f64> = self.sample.iter().map(|p| p.dot(v)).collect();
        let (_, kth, _) = scores.select_nth_unstable_by(k_s - 1, |a, b| b.total_cmp(a));
        *kth
    }

    fn memory_bytes(&self) -> usize {
        self.sample.len() * (self.dim * 8 + 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_and_bound_are_inverse() {
        let eps = 0.1;
        let phi = 0.01;
        let m = eps_sample_size(eps, phi);
        assert!(sample_error_bound(m, phi) <= eps + 1e-9);
        // One fewer sample must not satisfy the bound (tightness).
        assert!(sample_error_bound(m.saturating_sub(2).max(1), phi) > eps - 0.05);
    }

    #[test]
    fn sample_mass_tracks_exact_mass() {
        let mut rng = StdRng::seed_from_u64(13);
        let points: Vec<Point> = (0..5000)
            .map(|_| Point::one(rng.gen_range(0.0..1.0)))
            .collect();
        let syn = UniformSampleSynopsis::from_points(&points, 2000, 0.01, &mut rng);
        let r = Rect::interval(0.25, 0.75);
        let exact = r.mass(&points);
        let approx = syn.mass(&r);
        assert!(
            (exact - approx).abs() < 0.05,
            "exact {exact} vs approx {approx}"
        );
        assert!(syn.percentile_delta().unwrap() < 0.05);
    }

    #[test]
    fn rank_scaled_score_is_close() {
        let mut rng = StdRng::seed_from_u64(29);
        let points: Vec<Point> = (0..4000)
            .map(|_| Point::one(rng.gen_range(0.0..1.0)))
            .collect();
        let syn = UniformSampleSynopsis::from_points(&points, 1500, 0.01, &mut rng);
        // k = 400 of 4000 → the 0.9 quantile ≈ 0.9 for uniform data.
        let est = PrefSynopsis::score(&syn, &[1.0], 400);
        assert!((est - 0.9).abs() < 0.05, "estimate {est}");
        // k beyond the original size can never match.
        assert_eq!(PrefSynopsis::score(&syn, &[1.0], 4001), f64::NEG_INFINITY);
    }
}
