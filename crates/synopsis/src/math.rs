//! Small numeric kernel: error function, normal CDF/quantile, Box–Muller
//! sampling. Implemented locally because the workspace intentionally avoids
//! pulling a stats dependency (DESIGN.md §4).

use rand::{Rng, RngCore};

/// Error function, Abramowitz & Stegun 7.1.26 (max absolute error 1.5e-7,
/// far below the synopsis errors we measure against it).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// CDF of `N(mu, sigma²)`; degenerates to a step function for `sigma = 0`.
pub fn normal_cdf_at(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if x >= mu { 1.0 } else { 0.0 };
    }
    normal_cdf((x - mu) / sigma)
}

/// Standard normal sample via Box–Muller.
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    // Avoid u1 = 0 exactly.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Inverts a monotone non-decreasing CDF by bisection on `[lo, hi]`.
/// Returns `x` with `cdf(x) ≈ q` up to `tol` in argument.
pub fn invert_cdf(cdf: impl Fn(f64) -> f64, q: f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..200 {
        if hi - lo <= tol {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        for (x, want) in [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
        ] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn degenerate_sigma_is_step() {
        assert_eq!(normal_cdf_at(1.0, 2.0, 0.0), 0.0);
        assert_eq!(normal_cdf_at(2.0, 2.0, 0.0), 1.0);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn cdf_inversion_recovers_quantiles() {
        let x = invert_cdf(normal_cdf, 0.975, -10.0, 10.0, 1e-9);
        assert!((x - 1.96).abs() < 1e-2);
    }
}
