//! The exact synopsis: `S_{P_i} = P_i`.
//!
//! The paper observes (Section 1.1) that taking every synopsis equal to its
//! dataset recovers the centralized setting with δ = 0. This type is
//! therefore both the centralized adapter used by `CPtile`/`CPref` and the
//! ground truth the federated synopses are measured against.

use crate::{PercentileSynopsis, PrefSynopsis};
use dds_geom::{Point, Rect};
use rand::{Rng, RngCore};

/// A synopsis holding the full dataset (δ = 0).
#[derive(Clone, Debug)]
pub struct ExactSynopsis {
    points: Vec<Point>,
    dim: usize,
}

impl ExactSynopsis {
    /// Wraps a dataset.
    ///
    /// # Panics
    /// Panics if `points` is empty or of mixed dimension — measure functions
    /// are only applied where well-defined (`|P| > 0`).
    pub fn new(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "exact synopsis of an empty dataset");
        let dim = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "mixed dimensions in dataset"
        );
        ExactSynopsis { points, dim }
    }

    /// The underlying points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points `n_i = |P_i|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true (construction rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Exact `ω_k(P, v)`: the k-th largest inner product with `v`.
    /// `-∞` if `k` exceeds the dataset size or `k == 0`.
    pub fn exact_score(&self, v: &[f64], k: usize) -> f64 {
        if k == 0 || k > self.points.len() {
            return f64::NEG_INFINITY;
        }
        let mut scores: Vec<f64> = self.points.iter().map(|p| p.dot(v)).collect();
        // k-th largest = element at index k-1 in descending order.
        let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
        *kth
    }
}

impl PercentileSynopsis for ExactSynopsis {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (0..n)
            .map(|_| self.points[rng.gen_range(0..self.points.len())].clone())
            .collect()
    }

    fn mass(&self, r: &Rect) -> f64 {
        r.mass(&self.points)
    }

    fn all_points(&self) -> Option<&[Point]> {
        Some(&self.points)
    }

    fn percentile_delta(&self) -> Option<f64> {
        Some(0.0)
    }

    fn memory_bytes(&self) -> usize {
        self.points.len() * (self.dim * 8 + 24)
    }
}

impl PrefSynopsis for ExactSynopsis {
    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, v: &[f64], k: usize) -> f64 {
        self.exact_score(v, k)
    }

    fn pref_delta(&self) -> Option<f64> {
        Some(0.0)
    }

    fn memory_bytes(&self) -> usize {
        self.points.len() * (self.dim * 8 + 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::one(x)).collect()
    }

    #[test]
    fn mass_is_exact() {
        let s = ExactSynopsis::new(pts(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(s.mass(&Rect::interval(1.5, 3.5)), 0.5);
        assert_eq!(s.percentile_delta(), Some(0.0));
    }

    #[test]
    fn samples_come_from_the_dataset() {
        let s = ExactSynopsis::new(pts(&[1.0, 2.0, 3.0]));
        let mut rng = StdRng::seed_from_u64(1);
        for p in PercentileSynopsis::sample(&s, 100, &mut rng) {
            assert!([1.0, 2.0, 3.0].contains(&p[0]));
        }
    }

    #[test]
    fn kth_largest_score() {
        let s = ExactSynopsis::new(vec![
            Point::two(1.0, 0.0),
            Point::two(0.5, 0.5),
            Point::two(0.0, 1.0),
        ]);
        let v = [1.0, 0.0];
        assert_eq!(s.exact_score(&v, 1), 1.0);
        assert_eq!(s.exact_score(&v, 2), 0.5);
        assert_eq!(s.exact_score(&v, 3), 0.0);
        assert_eq!(s.exact_score(&v, 4), f64::NEG_INFINITY);
        assert_eq!(s.exact_score(&v, 0), f64::NEG_INFINITY);
    }

    #[test]
    fn kth_score_with_ties() {
        let s = ExactSynopsis::new(pts(&[2.0, 2.0, 1.0]));
        assert_eq!(s.exact_score(&[1.0], 2), 2.0);
        assert_eq!(s.exact_score(&[1.0], 3), 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let _ = ExactSynopsis::new(vec![]);
    }
}
