//! Dataset synopses for federated distribution-aware search.
//!
//! In the paper's federated setting (Section 1.1) the index never sees the
//! raw datasets — only a synopsis `S_{P_i}` per dataset, with error
//! `Err_{S_{P_i}}(F) ≤ δ` with respect to a class of measure functions `F`.
//! Two synopsis capabilities are assumed:
//!
//! * for the percentile class `F_□^d` (Section 4): random sampling with
//!   replacement (`S_P.Sample(κ)`) and mass evaluation `M_R(S_P)` —
//!   captured by [`PercentileSynopsis`];
//! * for the top-k preference class `F_k^d` (Section 5): score estimation
//!   `S_P.Score(v, k) ≈ ω_k(P, v)` — captured by [`PrefSynopsis`].
//!
//! The paper lists histograms, mixture models, ε-samples and kernels as the
//! synopses used in practice; this crate implements that family:
//!
//! | Type | Percentile | Pref | Centralized? |
//! |------|-----------|------|--------------|
//! | [`ExactSynopsis`] | ✓ (δ = 0) | ✓ (δ = 0) | yes — realizes `S_{P_i} = P_i` |
//! | [`UniformSampleSynopsis`] | ✓ (ε-sample) | ✓ (rank-scaled) | no |
//! | [`GridHistogram`] | ✓ | ✓ (cell centers) | no |
//! | [`EquiDepthHistogram`] (d=1) | ✓ | ✓ | no — the synopsis of the Fainder baseline \[8\] |
//! | [`GaussianMixtureSynopsis`] | ✓ | ✓ (mixture quantiles) | no |
//! | [`NetCachePref`] | — | ✓ (direction cache, the "kernel" of [5, 37, 55]) | no |
//!
//! The error δ of a synopsis is a *measured* quantity here: [`error`]
//! estimates `Err_{S_P}(F_□^d)` and `Err_{S_P}(F_k^d)` empirically against
//! the raw data, which is what experiment E11 sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
mod exact;
mod histogram;
pub mod math;
mod mixture;
mod prefcache;
mod sample;

pub use exact::ExactSynopsis;
pub use histogram::{EquiDepthHistogram, GridHistogram};
pub use mixture::GaussianMixtureSynopsis;
pub use prefcache::NetCachePref;
pub use sample::{eps_sample_size, sample_error_bound, UniformSampleSynopsis};

use dds_geom::{Point, Rect};
use rand::RngCore;

/// A synopsis usable for the percentile class `F_□^d` (Ptile problems).
pub trait PercentileSynopsis {
    /// Dimension `d` of the summarized dataset.
    fn dim(&self) -> usize;

    /// Draws `n` random samples *with replacement* from the synopsis
    /// distribution — the paper's `S_P.Sample(κ)` (Section 4).
    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point>;

    /// Evaluates `M_R(S_P) = Pr_{p ~ S_P}[p ∈ R]`.
    fn mass(&self, r: &Rect) -> f64;

    /// For synopses backed by an explicit finite point set (the exact
    /// synopsis, retained ε-samples): the full support. Index builders use
    /// this to take *all* points instead of re-sampling when the support is
    /// small, eliminating the sampling error ε for that dataset (this is
    /// what makes the paper's toy examples exact). `None` for continuous
    /// synopses such as histograms or mixtures.
    fn all_points(&self) -> Option<&[Point]> {
        None
    }

    /// A priori error bound δ with `Err_{S_P}(F_□^d) ≤ δ`, when known.
    /// `Some(0.0)` for exact synopses (centralized setting).
    fn percentile_delta(&self) -> Option<f64> {
        None
    }

    /// Approximate heap footprint in bytes (space experiments).
    fn memory_bytes(&self) -> usize;
}

/// A synopsis usable for the top-k preference class `F_k^d` (Pref problems).
pub trait PrefSynopsis {
    /// Dimension `d` of the summarized dataset.
    fn dim(&self) -> usize;

    /// Estimates `ω_k(P, v)`, the k-th largest inner product with the unit
    /// vector `v` — the paper's `S_P.Score(v, k)` (Section 5). Returns
    /// `-∞` when the summarized dataset has fewer than `k` points (such a
    /// dataset can never satisfy a threshold predicate).
    fn score(&self, v: &[f64], k: usize) -> f64;

    /// A priori error bound δ with `Err_{S_P}(F_k^d) ≤ δ`, when known.
    fn pref_delta(&self) -> Option<f64> {
        None
    }

    /// Approximate heap footprint in bytes.
    fn memory_bytes(&self) -> usize;
}

impl<T: PercentileSynopsis + ?Sized> PercentileSynopsis for Box<T> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (**self).sample(n, rng)
    }
    fn mass(&self, r: &Rect) -> f64 {
        (**self).mass(r)
    }
    fn all_points(&self) -> Option<&[Point]> {
        (**self).all_points()
    }
    fn percentile_delta(&self) -> Option<f64> {
        (**self).percentile_delta()
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

impl<T: PrefSynopsis + ?Sized> PrefSynopsis for Box<T> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn score(&self, v: &[f64], k: usize) -> f64 {
        (**self).score(v, k)
    }
    fn pref_delta(&self) -> Option<f64> {
        (**self).pref_delta()
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}
