//! Gaussian mixture synopses (axis-aligned covariance), fitted by a short
//! seeded k-means pass. Mixture models are one of the synopsis families the
//! paper lists for the percentile class (Section 1.2).

use crate::math::{invert_cdf, normal_cdf_at, standard_normal};
use crate::{PercentileSynopsis, PrefSynopsis};
use dds_geom::{Point, Rect};
use rand::{Rng, RngCore};

/// One mixture component with diagonal covariance.
#[derive(Clone, Debug)]
pub struct Component {
    /// Mixing weight (weights sum to 1).
    pub weight: f64,
    /// Per-dimension mean.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviation (may be 0 for point masses).
    pub std: Vec<f64>,
}

/// A Gaussian mixture model synopsis.
#[derive(Clone, Debug)]
pub struct GaussianMixtureSynopsis {
    dim: usize,
    components: Vec<Component>,
    original_len: usize,
}

impl GaussianMixtureSynopsis {
    /// Fits `k` components to `points` with `iters` k-means iterations.
    ///
    /// # Panics
    /// Panics if `points` is empty or `k == 0`.
    pub fn fit(points: &[Point], k: usize, iters: usize, rng: &mut dyn RngCore) -> Self {
        assert!(!points.is_empty(), "mixture of an empty dataset");
        assert!(k >= 1, "need at least one component");
        let dim = points[0].dim();
        let k = k.min(points.len());
        // Initialize centers on random points.
        let mut centers: Vec<Vec<f64>> = (0..k)
            .map(|_| points[rng.gen_range(0..points.len())].as_slice().to_vec())
            .collect();
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..iters {
            // Assign.
            for (i, p) in points.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let d: f64 = p.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assignment[i] = best;
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for h in 0..dim {
                    sums[assignment[i]][h] += p[h];
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for h in 0..dim {
                        centers[c][h] = sums[c][h] / counts[c] as f64;
                    }
                } else {
                    // Re-seed empty clusters.
                    centers[c] = points[rng.gen_range(0..points.len())].as_slice().to_vec();
                }
            }
        }
        // Final statistics per component.
        let mut counts = vec![0usize; k];
        let mut var = vec![vec![0.0f64; dim]; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for h in 0..dim {
                let d = p[h] - centers[c][h];
                var[c][h] += d * d;
            }
        }
        let components: Vec<Component> = (0..k)
            .filter(|&c| counts[c] > 0)
            .map(|c| Component {
                weight: counts[c] as f64 / points.len() as f64,
                mean: centers[c].clone(),
                std: (0..dim)
                    .map(|h| (var[c][h] / counts[c] as f64).sqrt())
                    .collect(),
            })
            .collect();
        GaussianMixtureSynopsis {
            dim,
            components,
            original_len: points.len(),
        }
    }

    /// The fitted components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Size of the summarized dataset.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// CDF of the mixture projected onto the unit vector `v`, evaluated
    /// at `t`. The projection of an axis-aligned Gaussian is
    /// `N(⟨μ, v⟩, Σ_h v_h² σ_h²)`.
    fn projected_cdf(&self, v: &[f64], t: f64) -> f64 {
        self.components
            .iter()
            .map(|c| {
                let mu: f64 = c.mean.iter().zip(v).map(|(m, x)| m * x).sum();
                let var: f64 = c.std.iter().zip(v).map(|(s, x)| (s * x) * (s * x)).sum();
                c.weight * normal_cdf_at(t, mu, var.sqrt())
            })
            .sum()
    }
}

impl PercentileSynopsis for GaussianMixtureSynopsis {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (0..n)
            .map(|_| {
                let u: f64 = {
                    let r = &mut *rng;
                    r.gen()
                };
                // Pick a component by cumulative weight.
                let mut acc = 0.0;
                let mut chosen = self.components.len() - 1;
                for (c, comp) in self.components.iter().enumerate() {
                    acc += comp.weight;
                    if u <= acc {
                        chosen = c;
                        break;
                    }
                }
                let comp = &self.components[chosen];
                Point::new(
                    (0..self.dim)
                        .map(|h| comp.mean[h] + comp.std[h] * standard_normal(rng))
                        .collect(),
                )
            })
            .collect()
    }

    fn mass(&self, r: &Rect) -> f64 {
        self.components
            .iter()
            .map(|c| {
                let cell: f64 = (0..self.dim)
                    .map(|h| {
                        normal_cdf_at(r.hi_at(h), c.mean[h], c.std[h])
                            - normal_cdf_at(r.lo_at(h), c.mean[h], c.std[h])
                    })
                    .product();
                c.weight * cell.max(0.0)
            })
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    fn memory_bytes(&self) -> usize {
        self.components.len() * (2 * self.dim * 8 + 32) + 48
    }
}

impl PrefSynopsis for GaussianMixtureSynopsis {
    fn dim(&self) -> usize {
        self.dim
    }

    /// `ω_k` estimate: the `1 − (k−½)/n` quantile of the projected mixture,
    /// found by bisection over the projected support.
    fn score(&self, v: &[f64], k: usize) -> f64 {
        if k == 0 || k > self.original_len {
            return f64::NEG_INFINITY;
        }
        let q = 1.0 - (k as f64 - 0.5) / self.original_len as f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            let mu: f64 = c.mean.iter().zip(v).map(|(m, x)| m * x).sum();
            let sd: f64 = c
                .std
                .iter()
                .zip(v)
                .map(|(s, x)| (s * x) * (s * x))
                .sum::<f64>()
                .sqrt();
            lo = lo.min(mu - 10.0 * sd - 1e-9);
            hi = hi.max(mu + 10.0 * sd + 1e-9);
        }
        invert_cdf(
            |t| self.projected_cdf(v, t),
            q,
            lo,
            hi,
            1e-9 * (hi - lo).abs().max(1.0),
        )
    }

    fn memory_bytes(&self) -> usize {
        self.components.len() * (2 * self.dim * 8 + 32) + 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 10.0 };
                Point::two(
                    c + standard_normal(&mut rng) * 0.5,
                    c + standard_normal(&mut rng) * 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn fits_two_visible_clusters() {
        let pts = two_cluster_points(4000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let gmm = GaussianMixtureSynopsis::fit(&pts, 2, 10, &mut rng);
        assert_eq!(gmm.components().len(), 2);
        let mut means: Vec<f64> = gmm.components().iter().map(|c| c.mean[0]).collect();
        means.sort_by(|a, b| a.total_cmp(b));
        assert!((means[0] - 0.0).abs() < 0.5, "low cluster at {}", means[0]);
        assert!(
            (means[1] - 10.0).abs() < 0.5,
            "high cluster at {}",
            means[1]
        );
    }

    #[test]
    fn mass_of_cluster_region() {
        let pts = two_cluster_points(4000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let gmm = GaussianMixtureSynopsis::fit(&pts, 2, 10, &mut rng);
        let low = Rect::from_bounds(&[-3.0, -3.0], &[3.0, 3.0]);
        let m = PercentileSynopsis::mass(&gmm, &low);
        assert!((m - 0.5).abs() < 0.05, "mass {m}");
    }

    #[test]
    fn samples_follow_the_mixture() {
        let pts = two_cluster_points(4000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let gmm = GaussianMixtureSynopsis::fit(&pts, 2, 10, &mut rng);
        let sample = PercentileSynopsis::sample(&gmm, 2000, &mut rng);
        let low = Rect::from_bounds(&[-3.0, -3.0], &[3.0, 3.0]);
        let frac = low.mass(&sample);
        assert!((frac - 0.5).abs() < 0.06, "sampled mass {frac}");
    }

    #[test]
    fn projected_quantile_score() {
        // Single Gaussian at 0 with sd 1 projected on [1, 0]:
        // k-th largest of n=1000 at k=100 → 0.9 quantile ≈ 1.2816.
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> = (0..1000)
            .map(|_| Point::two(standard_normal(&mut rng), standard_normal(&mut rng)))
            .collect();
        let gmm = GaussianMixtureSynopsis::fit(&pts, 1, 5, &mut rng);
        let s = PrefSynopsis::score(&gmm, &[1.0, 0.0], 100);
        assert!((s - 1.2816).abs() < 0.15, "score {s}");
    }
}
