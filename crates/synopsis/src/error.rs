//! Empirical synopsis-error estimation.
//!
//! The paper treats the synopsis error δ as given (`Err_{S_{P_i}}(F) ≤ δ`).
//! For real synopses we *measure* it: probe random measure functions from
//! the class and take the worst observed deviation against the raw data.
//! Experiment E11 sweeps histogram resolution and shows the end-to-end
//! ε + 2δ band tracking this measured δ.

use crate::exact::ExactSynopsis;
use crate::{PercentileSynopsis, PrefSynopsis};
use dds_geom::{Point, Rect};
use dds_pool::{mix_seed, par_map, BuildOptions};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Draws a random axis-parallel rectangle whose corners are data points
/// (plus jitter), a standard adversarial family for percentile probes.
fn random_rect(points: &[Point], rng: &mut dyn RngCore) -> Rect {
    let d = points[0].dim();
    let a = &points[rng.gen_range(0..points.len())];
    let b = &points[rng.gen_range(0..points.len())];
    let mut lo = Vec::with_capacity(d);
    let mut hi = Vec::with_capacity(d);
    for h in 0..d {
        let (l, u) = if a[h] <= b[h] {
            (a[h], b[h])
        } else {
            (b[h], a[h])
        };
        let jitter = (u - l).abs() * 0.01 + 1e-9;
        lo.push(l - rng.gen_range(0.0..jitter));
        hi.push(u + rng.gen_range(0.0..jitter));
    }
    Rect::from_bounds(&lo, &hi)
}

/// Estimates `Err_{S_P}(F_□^d) = max_R |M_R(P) − M_R(S_P)|` by probing
/// `trials` random rectangles. A lower bound on the true sup-error; grows
/// towards it with more trials.
pub fn estimate_percentile_error<S: PercentileSynopsis + ?Sized>(
    synopsis: &S,
    data: &[Point],
    trials: usize,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(!data.is_empty(), "need raw data to measure against");
    let mut worst: f64 = 0.0;
    for _ in 0..trials {
        let r = random_rect(data, rng);
        let exact = r.mass(data);
        let approx = synopsis.mass(&r);
        worst = worst.max((exact - approx).abs());
    }
    worst
}

/// Measures every synopsis of a federation against its raw dataset — the
/// per-dataset `δ_i` sweep of the federated setting — on a worker pool.
///
/// Dataset `i` probes `trials` rectangles drawn from its own RNG stream
/// (seeded `mix_seed(seed, i)`), so the result is independent of the thread
/// count and of the order in which workers claim datasets; `opts.threads`
/// controls the pool ([`BuildOptions::default`] uses every core, honoring
/// `DDS_THREADS`).
///
/// # Panics
/// Panics if `synopses` and `datas` have different lengths or any dataset
/// is empty.
pub fn estimate_percentile_errors<S: PercentileSynopsis + Sync>(
    synopses: &[S],
    datas: &[Vec<Point>],
    trials: usize,
    seed: u64,
    opts: &BuildOptions,
) -> Vec<f64> {
    assert_eq!(synopses.len(), datas.len(), "one raw dataset per synopsis");
    par_map(opts, synopses, |i, syn| {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, i as u64));
        estimate_percentile_error(syn, &datas[i], trials, &mut rng)
    })
}

/// Estimates `Err_{S_P}(F_k^d) = max_v |ω_k(P, v) − Score(v, k)|` by probing
/// `trials` random unit directions.
pub fn estimate_pref_error<S: PrefSynopsis + ?Sized>(
    synopsis: &S,
    data: &[Point],
    k: usize,
    trials: usize,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(!data.is_empty(), "need raw data to measure against");
    let exact = ExactSynopsis::new(data.to_vec());
    let d = data[0].dim();
    let mut worst: f64 = 0.0;
    for _ in 0..trials {
        // Random unit direction via normalized Gaussian-ish rejection.
        let v: Vec<f64> = loop {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if n > 1e-3 {
                break v.iter().map(|x| x / n).collect();
            }
        };
        let truth = exact.exact_score(&v, k);
        let est = synopsis.score(&v, k);
        if truth.is_finite() && est.is_finite() {
            worst = worst.max((truth - est).abs());
        } else if truth.is_finite() != est.is_finite() {
            worst = f64::INFINITY;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridHistogram, UniformSampleSynopsis};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_square(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::two(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn exact_synopsis_has_zero_error() {
        let data = uniform_square(500, 1);
        let syn = ExactSynopsis::new(data.clone());
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(estimate_percentile_error(&syn, &data, 50, &mut rng), 0.0);
        assert_eq!(estimate_pref_error(&syn, &data, 5, 20, &mut rng), 0.0);
    }

    #[test]
    fn finer_histograms_have_smaller_error() {
        let data = uniform_square(20_000, 3);
        let coarse = GridHistogram::from_points(&data, 4);
        let fine = GridHistogram::from_points(&data, 32);
        let mut rng = StdRng::seed_from_u64(4);
        let e_coarse = estimate_percentile_error(&coarse, &data, 100, &mut rng);
        let e_fine = estimate_percentile_error(&fine, &data, 100, &mut rng);
        assert!(
            e_fine < e_coarse,
            "fine {e_fine} should beat coarse {e_coarse}"
        );
    }

    #[test]
    fn batch_sweep_is_thread_count_independent() {
        let datas: Vec<Vec<Point>> = (0..6).map(|i| uniform_square(400, 10 + i)).collect();
        let synopses: Vec<GridHistogram> = datas
            .iter()
            .map(|d| GridHistogram::from_points(d, 8))
            .collect();
        let serial =
            estimate_percentile_errors(&synopses, &datas, 40, 0xD5, &BuildOptions::serial());
        assert_eq!(serial.len(), 6);
        assert!(serial.iter().all(|&d| d > 0.0));
        for threads in [2, 3, 8] {
            let par = estimate_percentile_errors(
                &synopses,
                &datas,
                40,
                0xD5,
                &BuildOptions::with_threads(threads),
            );
            assert_eq!(
                par.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn sample_synopsis_error_within_advertised_bound() {
        let data = uniform_square(10_000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let syn = UniformSampleSynopsis::from_points(&data, 4000, 0.01, &mut rng);
        let measured = estimate_percentile_error(&syn, &data, 200, &mut rng);
        let advertised = syn.percentile_delta().unwrap();
        assert!(
            measured <= advertised * 2.0,
            "measured {measured} advertised {advertised}"
        );
    }
}
