//! Histogram synopses.
//!
//! Histograms are the synopsis family the paper calls out for both problem
//! classes (Section 1.2) and the one used by the Fainder baseline \[8\].
//! [`GridHistogram`] is a d-dimensional equi-width grid; the 1-dimensional
//! [`EquiDepthHistogram`] stores quantile boundaries (each bucket holds equal
//! mass), which matches the per-column percentile sketches of [8].

use crate::{PercentileSynopsis, PrefSynopsis};
use dds_geom::{Point, Rect};
use rand::{Rng, RngCore};

/// d-dimensional equi-width histogram over the data bounding box, with mass
/// spread uniformly inside each cell.
#[derive(Clone, Debug)]
pub struct GridHistogram {
    dim: usize,
    bins: usize,
    bbox: Rect,
    /// Normalized cell weights, row-major over the `bins^dim` grid.
    weights: Vec<f64>,
    /// Cumulative weights for sampling.
    cdf: Vec<f64>,
    original_len: usize,
}

impl GridHistogram {
    /// Builds a histogram with `bins` buckets per dimension.
    ///
    /// # Panics
    /// Panics if `points` is empty, `bins == 0`, or `bins^dim` overflows
    /// a reasonable cell budget (16M cells).
    pub fn from_points(points: &[Point], bins: usize) -> Self {
        assert!(!points.is_empty(), "histogram of an empty dataset");
        assert!(bins >= 1, "need at least one bin per dimension");
        let dim = points[0].dim();
        let cells = bins
            .checked_pow(dim as u32)
            .filter(|&c| c <= 16_000_000)
            .expect("bins^dim too large");
        let bbox = Rect::bounding(points);
        let mut counts = vec![0.0f64; cells];
        for p in points {
            counts[Self::cell_index(&bbox, bins, dim, p)] += 1.0;
        }
        let total = points.len() as f64;
        let weights: Vec<f64> = counts.iter().map(|c| c / total).collect();
        let mut cdf = Vec::with_capacity(cells);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cdf.push(acc);
        }
        GridHistogram {
            dim,
            bins,
            bbox,
            weights,
            cdf,
            original_len: points.len(),
        }
    }

    fn cell_index(bbox: &Rect, bins: usize, dim: usize, p: &Point) -> usize {
        let mut idx = 0usize;
        for h in 0..dim {
            let lo = bbox.lo_at(h);
            let hi = bbox.hi_at(h);
            let width = hi - lo;
            let b = if width <= 0.0 {
                0
            } else {
                (((p[h] - lo) / width * bins as f64) as usize).min(bins - 1)
            };
            idx = idx * bins + b;
        }
        idx
    }

    /// The rectangle covered by a (multi-)cell index.
    fn cell_rect(&self, mut idx: usize) -> Rect {
        let mut lo = vec![0.0; self.dim];
        let mut hi = vec![0.0; self.dim];
        for h in (0..self.dim).rev() {
            let b = idx % self.bins;
            idx /= self.bins;
            let blo = self.bbox.lo_at(h);
            let bhi = self.bbox.hi_at(h);
            let width = (bhi - blo) / self.bins as f64;
            lo[h] = blo + b as f64 * width;
            hi[h] = blo + (b + 1) as f64 * width;
        }
        Rect::from_bounds(&lo, &hi)
    }

    /// Number of bins per dimension.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Size of the summarized dataset.
    pub fn original_len(&self) -> usize {
        self.original_len
    }
}

impl PercentileSynopsis for GridHistogram {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let cell = self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1);
                let r = self.cell_rect(cell);
                Point::new(
                    (0..self.dim)
                        .map(|h| rng.gen_range(r.lo_at(h)..=r.hi_at(h)))
                        .collect(),
                )
            })
            .collect()
    }

    fn mass(&self, r: &Rect) -> f64 {
        let mut total = 0.0;
        for (idx, &w) in self.weights.iter().enumerate() {
            if w > 0.0 {
                total += w * self.cell_rect(idx).overlap_fraction(r);
            }
        }
        total.clamp(0.0, 1.0)
    }

    fn memory_bytes(&self) -> usize {
        self.weights.len() * 16 + self.dim * 16 + 64
    }
}

impl PrefSynopsis for GridHistogram {
    fn dim(&self) -> usize {
        self.dim
    }

    /// Walks cells in decreasing center-score order, accumulating expected
    /// counts until rank `k`. Error is bounded by half the cell diagonal.
    fn score(&self, v: &[f64], k: usize) -> f64 {
        if k == 0 || k > self.original_len {
            return f64::NEG_INFINITY;
        }
        let mut scored: Vec<(f64, f64)> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(idx, &w)| {
                let c = self.cell_rect(idx).center();
                (c.dot(v), w * self.original_len as f64)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        let mut acc = 0.0;
        for (score, cnt) in scored {
            acc += cnt;
            if acc + 1e-9 >= k as f64 {
                return score;
            }
        }
        f64::NEG_INFINITY
    }

    fn memory_bytes(&self) -> usize {
        self.weights.len() * 16 + self.dim * 16 + 64
    }
}

/// 1-dimensional equi-depth (quantile) histogram: `b` buckets of equal mass.
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram {
    /// `b + 1` non-decreasing boundaries.
    boundaries: Vec<f64>,
    original_len: usize,
}

impl EquiDepthHistogram {
    /// Builds a `b`-bucket equi-depth histogram of a 1-dimensional dataset.
    ///
    /// # Panics
    /// Panics if `points` is empty, not 1-dimensional, or `b == 0`.
    pub fn from_points(points: &[Point], b: usize) -> Self {
        assert!(!points.is_empty(), "histogram of an empty dataset");
        assert!(b >= 1, "need at least one bucket");
        assert!(
            points.iter().all(|p| p.dim() == 1),
            "equi-depth histograms are 1-dimensional"
        );
        let mut xs: Vec<f64> = points.iter().map(|p| p[0]).collect();
        xs.sort_unstable_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        let mut boundaries = Vec::with_capacity(b + 1);
        for i in 0..=b {
            let rank = ((i as f64 / b as f64) * (n - 1) as f64).round() as usize;
            boundaries.push(xs[rank.min(n - 1)]);
        }
        EquiDepthHistogram {
            boundaries,
            original_len: n,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Size of the summarized dataset.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// CDF of the histogram distribution at `x` (linear within buckets,
    /// jumps across zero-width buckets).
    pub fn cdf(&self, x: f64) -> f64 {
        let b = self.buckets();
        let bd = &self.boundaries;
        if x < bd[0] {
            return 0.0;
        }
        if x >= bd[b] {
            return 1.0;
        }
        // Last bucket start <= x.
        let i = bd.partition_point(|v| *v <= x).saturating_sub(1).min(b - 1);
        let lo = bd[i];
        let hi = bd[i + 1];
        let frac = if hi > lo { (x - lo) / (hi - lo) } else { 1.0 };
        ((i as f64 + frac) / b as f64).clamp(0.0, 1.0)
    }

    /// Inverse CDF (quantile function).
    pub fn quantile(&self, q: f64) -> f64 {
        let b = self.buckets();
        let q = q.clamp(0.0, 1.0);
        let scaled = q * b as f64;
        let i = (scaled as usize).min(b - 1);
        let frac = scaled - i as f64;
        let lo = self.boundaries[i];
        let hi = self.boundaries[i + 1];
        lo + frac * (hi - lo)
    }
}

impl PercentileSynopsis for EquiDepthHistogram {
    fn dim(&self) -> usize {
        1
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (0..n)
            .map(|_| Point::one(self.quantile(rng.gen())))
            .collect()
    }

    fn mass(&self, r: &Rect) -> f64 {
        assert_eq!(r.dim(), 1, "dimension mismatch");
        (self.cdf(r.hi_at(0)) - self.cdf(r.lo_at(0))).max(0.0)
    }

    fn memory_bytes(&self) -> usize {
        self.boundaries.len() * 8 + 32
    }
}

impl PrefSynopsis for EquiDepthHistogram {
    fn dim(&self) -> usize {
        1
    }

    /// For `v = [a]`, `ω_k(P, v) = a · x_q` where `x_q` is the appropriate
    /// order statistic: the k-th largest of `a·x` is the `1 − (k−½)/n`
    /// quantile of `x` when `a ≥ 0` and the `(k−½)/n` quantile when `a < 0`.
    fn score(&self, v: &[f64], k: usize) -> f64 {
        assert_eq!(v.len(), 1, "dimension mismatch");
        if k == 0 || k > self.original_len {
            return f64::NEG_INFINITY;
        }
        let a = v[0];
        let n = self.original_len as f64;
        let q = if a >= 0.0 {
            1.0 - (k as f64 - 0.5) / n
        } else {
            (k as f64 - 0.5) / n
        };
        a * self.quantile(q)
    }

    fn memory_bytes(&self) -> usize {
        self.boundaries.len() * 8 + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::one(rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn grid_mass_approximates_uniform() {
        let pts = uniform_points(20_000, 3);
        let h = GridHistogram::from_points(&pts, 32);
        let r = Rect::interval(0.2, 0.7);
        assert!((PercentileSynopsis::mass(&h, &r) - 0.5).abs() < 0.03);
    }

    #[test]
    fn grid_mass_2d_cluster() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Point> = (0..10_000)
            .map(|i| {
                if i % 2 == 0 {
                    Point::two(rng.gen_range(0.0..0.1), rng.gen_range(0.0..0.1))
                } else {
                    Point::two(rng.gen_range(0.9..1.0), rng.gen_range(0.9..1.0))
                }
            })
            .collect();
        let h = GridHistogram::from_points(&pts, 16);
        let left = Rect::from_bounds(&[0.0, 0.0], &[0.2, 0.2]);
        assert!((PercentileSynopsis::mass(&h, &left) - 0.5).abs() < 0.05);
        let middle = Rect::from_bounds(&[0.4, 0.4], &[0.6, 0.6]);
        assert!(PercentileSynopsis::mass(&h, &middle) < 0.02);
    }

    #[test]
    fn grid_sampling_matches_weights() {
        let pts = uniform_points(5000, 11);
        let h = GridHistogram::from_points(&pts, 8);
        let mut rng = StdRng::seed_from_u64(17);
        let sample = PercentileSynopsis::sample(&h, 4000, &mut rng);
        let r = Rect::interval(0.0, 0.5);
        let frac = r.mass(&sample);
        assert!((frac - 0.5).abs() < 0.05, "sampled mass {frac}");
    }

    #[test]
    fn grid_pref_score_on_uniform() {
        let pts = uniform_points(10_000, 23);
        let h = GridHistogram::from_points(&pts, 64);
        // k = 1000 of 10k → 0.9 quantile.
        let s = PrefSynopsis::score(&h, &[1.0], 1000);
        assert!((s - 0.9).abs() < 0.05, "score {s}");
    }

    #[test]
    fn equidepth_cdf_quantile_roundtrip() {
        let pts = uniform_points(8000, 31);
        let h = EquiDepthHistogram::from_points(&pts, 32);
        for q in [0.1, 0.33, 0.5, 0.9] {
            let x = h.quantile(q);
            assert!((h.cdf(x) - q).abs() < 0.05, "roundtrip at {q}");
        }
        assert_eq!(h.cdf(f64::NEG_INFINITY), 0.0);
        assert_eq!(h.cdf(f64::INFINITY), 1.0);
    }

    #[test]
    fn equidepth_mass_close_to_exact() {
        let pts = uniform_points(8000, 37);
        let h = EquiDepthHistogram::from_points(&pts, 64);
        let r = Rect::interval(0.25, 0.5);
        let exact = r.mass(&pts);
        assert!((PercentileSynopsis::mass(&h, &r) - exact).abs() < 0.03);
    }

    #[test]
    fn equidepth_negative_direction_score() {
        let pts = uniform_points(8000, 41);
        let h = EquiDepthHistogram::from_points(&pts, 64);
        // For v = [-1], the k-th largest of -x corresponds to small x:
        // k = 800 of 8000 → 0.1 quantile ≈ 0.1, score ≈ -0.1.
        let s = PrefSynopsis::score(&h, &[-1.0], 800);
        assert!((s + 0.1).abs() < 0.05, "score {s}");
    }

    #[test]
    fn degenerate_single_value_dataset() {
        let pts: Vec<Point> = (0..100).map(|_| Point::one(5.0)).collect();
        let h = EquiDepthHistogram::from_points(&pts, 8);
        assert_eq!(PercentileSynopsis::mass(&h, &Rect::interval(4.0, 6.0)), 1.0);
        assert_eq!(PercentileSynopsis::mass(&h, &Rect::interval(6.0, 7.0)), 0.0);
        let g = GridHistogram::from_points(&pts, 8);
        assert!((PercentileSynopsis::mass(&g, &Rect::interval(4.0, 6.0)) - 1.0).abs() < 1e-9);
    }
}
