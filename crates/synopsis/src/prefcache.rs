//! Direction-cache Pref synopsis — the "kernel" synopsis of [5, 37, 55].
//!
//! Precomputes, for every vector of an internal ε-net, the exact top-`k_max`
//! scores of the dataset. `Score(v, k)` snaps `v` to the nearest cached
//! direction and reads the k-th entry; by Lemma 5.1 the additive error is at
//! most the net parameter ε (points are assumed inside the unit ball).

use crate::PrefSynopsis;
use dds_geom::{EpsNet, Point};

/// Cached top-k scores along an ε-net of directions.
#[derive(Clone, Debug)]
pub struct NetCachePref {
    net: EpsNet,
    /// `topk[i]` = descending top-`k_max` scores along net vector `i`.
    topk: Vec<Vec<f64>>,
    dim: usize,
    k_max: usize,
    original_len: usize,
}

impl NetCachePref {
    /// Builds the cache with net parameter `eps` and rank budget `k_max`.
    /// Queries with `k > k_max` fall back to the deepest cached rank; keep
    /// `k ≤ k_max` for the advertised error bound.
    ///
    /// # Panics
    /// Panics if `points` is empty or `k_max == 0`.
    pub fn build(points: &[Point], eps: f64, k_max: usize) -> Self {
        assert!(!points.is_empty(), "cache of an empty dataset");
        assert!(k_max >= 1, "k_max must be positive");
        let dim = points[0].dim();
        let net = EpsNet::new(dim, eps);
        let keep = k_max.min(points.len());
        let topk = net
            .vectors()
            .iter()
            .map(|v| {
                let mut scores: Vec<f64> = points.iter().map(|p| p.dot(v)).collect();
                scores.sort_unstable_by(|a, b| b.total_cmp(a));
                scores.truncate(keep);
                scores
            })
            .collect();
        NetCachePref {
            net,
            topk,
            dim,
            k_max: keep,
            original_len: points.len(),
        }
    }

    /// The rank budget.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Size of the summarized dataset.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Number of cached directions.
    pub fn directions(&self) -> usize {
        self.net.len()
    }
}

impl PrefSynopsis for NetCachePref {
    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, v: &[f64], k: usize) -> f64 {
        if k == 0 || k > self.original_len {
            return f64::NEG_INFINITY;
        }
        let (i, _) = self.net.nearest(v);
        let cached = &self.topk[i];
        // Fall back to the deepest rank when k exceeds the budget.
        cached[(k - 1).min(cached.len() - 1)]
    }

    fn pref_delta(&self) -> Option<f64> {
        Some(self.net.eps())
    }

    fn memory_bytes(&self) -> usize {
        self.topk.iter().map(|t| t.len() * 8 + 24).sum::<usize>()
            + self.net.len() * (self.dim * 8 + 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_score_matches_exact_on_net_directions() {
        let pts = vec![
            Point::two(1.0, 0.0),
            Point::two(0.0, 1.0),
            Point::two(0.6, 0.6),
        ];
        let cache = NetCachePref::build(&pts, 0.1, 3);
        // Query along an exact net direction: error only from the cache rank.
        let s1 = cache.score(&[1.0, 0.0], 1);
        assert!((s1 - 1.0).abs() < 0.02, "top score {s1}");
        let s2 = cache.score(&[1.0, 0.0], 2);
        assert!((s2 - 0.6).abs() < 0.12, "second score {s2}");
    }

    #[test]
    fn error_is_within_net_parameter() {
        // Points in the unit ball; arbitrary query vector.
        let pts: Vec<Point> = (0..200)
            .map(|i| {
                let a = i as f64 * 0.0314;
                Point::two(0.9 * a.cos(), 0.9 * a.sin())
            })
            .collect();
        let eps = 0.05;
        let cache = NetCachePref::build(&pts, eps, 10);
        for (vx, vy) in [(0.3, 0.95), (-0.7, 0.7), (0.99, -0.1)] {
            let n = f64::sqrt(vx * vx + vy * vy);
            let v = [vx / n, vy / n];
            for k in [1usize, 5, 10] {
                let mut scores: Vec<f64> = pts.iter().map(|p| p.dot(&v)).collect();
                scores.sort_unstable_by(|a, b| b.total_cmp(a));
                let exact = scores[k - 1];
                let est = cache.score(&v, k);
                assert!(
                    (est - exact).abs() <= eps + 1e-9,
                    "k={k} exact={exact} est={est}"
                );
            }
        }
        assert_eq!(cache.pref_delta(), Some(eps));
    }

    #[test]
    fn oversized_k_is_rejected() {
        let pts = vec![Point::one(0.5), Point::one(0.7)];
        let cache = NetCachePref::build(&pts, 0.2, 5);
        assert_eq!(cache.k_max(), 2);
        assert_eq!(cache.score(&[1.0], 3), f64::NEG_INFINITY);
    }
}
