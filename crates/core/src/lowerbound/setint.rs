//! Uniform set intersection → CPtile reduction (Appendix B.1, Figure 4).
//!
//! Every occurrence of universe element `u` as the `t`-th item overall of
//! set `S_i` (global position `t = k + m_{i-1}`) contributes two points to
//! the dataset `P_u`: `(−t, −t + M)` on the line `y = x + M` and
//! `(t, t − M)` on `y = x − M`, where `M = Σ|S_i|`. For a query pair
//! `(i, j)` there is a rectangle `ρ_{i,j}` whose intersection with the
//! construction is exactly `G_i ∪ G'_j` (set `i`'s upper-line points and
//! set `j`'s lower-line points), so
//! `u ∈ S_i ∩ S_j ⟺ |P_u ∩ ρ_{i,j}| = 2`. Because the instance is
//! uniform, every dataset has the same size `t = 2r`, and the CPtile query
//! `θ = [1.5/t, 1]` reports exactly the datasets with two points in the
//! rectangle.
//!
//! The CPtile oracle here is [`crate::ptile::PtileThresholdIndex`]: with
//! exact synopses and tiny per-dataset supports the builder indexes every
//! dataset exactly (ε = δ = 0), so the reduction answers are exact.

use crate::ptile::{PtileBuildParams, PtileThresholdIndex};
use dds_geom::{Point, Rect};
use dds_synopsis::ExactSynopsis;

/// A set-intersection oracle backed by a CPtile index over the Figure 4
/// construction.
#[derive(Clone, Debug)]
pub struct SetIntersectionCPtile {
    index: PtileThresholdIndex,
    /// Prefix sizes `m_0 = 0, m_i = m_{i-1} + |S_i|`.
    prefix: Vec<usize>,
    /// Points per dataset (`2 · replication`, uniform).
    points_per_dataset: usize,
    /// Total size `M`.
    total: usize,
    /// Number of sets `g`.
    g: usize,
}

impl SetIntersectionCPtile {
    /// Builds the reduction instance from a *uniform* collection of sets
    /// over the universe `{0, …, universe−1}`.
    ///
    /// # Panics
    /// Panics if the collection is empty or not uniform (unequal dataset
    /// sizes would break the single-θ trick).
    pub fn build(sets: &[Vec<u64>], universe: u64) -> Self {
        assert!(!sets.is_empty(), "need at least one set");
        let total: usize = sets.iter().map(Vec::len).sum();
        let m = total as f64;
        let mut prefix = Vec::with_capacity(sets.len() + 1);
        prefix.push(0usize);
        for s in sets {
            prefix.push(prefix.last().unwrap() + s.len());
        }
        // P_u per universe element.
        let mut datasets: Vec<Vec<Point>> = vec![Vec::new(); universe as usize];
        for (i, s) in sets.iter().enumerate() {
            for (k, &u) in s.iter().enumerate() {
                let t = (k + 1 + prefix[i]) as f64;
                datasets[u as usize].push(Point::two(-t, -t + m));
                datasets[u as usize].push(Point::two(t, t - m));
            }
        }
        let sizes: Vec<usize> = datasets.iter().map(Vec::len).collect();
        let points_per_dataset = sizes[0];
        assert!(
            sizes.iter().all(|&s| s == points_per_dataset && s > 0),
            "collection must be uniform (every element in equally many sets)"
        );
        let synopses: Vec<ExactSynopsis> = datasets.into_iter().map(ExactSynopsis::new).collect();
        // Generous rectangle budget: datasets have 2r points each.
        let params = PtileBuildParams::exact_centralized()
            .with_rect_budget((points_per_dataset * (points_per_dataset + 1)).pow(2));
        let index = PtileThresholdIndex::build(&synopses, params);
        assert_eq!(
            index.eps(),
            0.0,
            "reduction datasets must be indexed exactly"
        );
        SetIntersectionCPtile {
            index,
            prefix,
            points_per_dataset,
            total,
            g: sets.len(),
        }
    }

    /// The query rectangle `ρ_{i,j}` of Figure 4: contains exactly `G_i`
    /// (upper line) and `G'_j` (lower line).
    pub fn query_rect(&self, i: usize, j: usize) -> Rect {
        let m = self.total as f64;
        let xlo = -(self.prefix[i + 1] as f64);
        let xhi = self.prefix[j + 1] as f64;
        let ylo = (self.prefix[j] + 1) as f64 - m;
        let yhi = m - (self.prefix[i] + 1) as f64;
        Rect::from_bounds(&[xlo, ylo], &[xhi, yhi])
    }

    /// Answers `S_i ∩ S_j` through the CPtile oracle: queries `ρ_{i,j}`
    /// with `θ = [1.5/t, 1]` and maps reported dataset indexes back to
    /// universe elements.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn intersect(&self, i: usize, j: usize) -> Vec<u64> {
        assert!(i < self.g && j < self.g, "set index out of range");
        let rect = self.query_rect(i, j);
        let a_theta = 1.5 / self.points_per_dataset as f64;
        let mut out: Vec<u64> = self
            .index
            .query(&rect, a_theta)
            .into_iter()
            .map(|u| u as u64)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of sets `g`.
    pub fn num_sets(&self) -> usize {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_geometry_isolates_gi_and_gpj() {
        // Two sets over a uniform universe: every element in both sets.
        let sets = vec![vec![0u64, 1, 2], vec![2u64, 0, 1]];
        let red = SetIntersectionCPtile::build(&sets, 3);
        let rect = red.query_rect(0, 1);
        // G_0 = upper-line points of set 0 (t = 1..3), G'_1 = lower-line
        // points of set 1 (t = 4..6).
        let m = 6.0;
        for t in [1.0, 2.0, 3.0] {
            assert!(rect.contains_point(&[-t, -t + m]), "G_0 point t={t}");
            assert!(
                !rect.contains_point(&[t, t - m]),
                "G'_0 point t={t} excluded"
            );
        }
        for t in [4.0, 5.0, 6.0] {
            assert!(rect.contains_point(&[t, t - m]), "G'_1 point t={t}");
            assert!(
                !rect.contains_point(&[-t, -t + m]),
                "G_1 point t={t} excluded"
            );
        }
    }

    #[test]
    fn intersections_match_bruteforce() {
        let sets = vec![
            vec![0u64, 2, 4],
            vec![1u64, 2, 3],
            vec![0u64, 3, 4],
            vec![1u64, 0, 2],
            vec![3u64, 1, 4],
        ];
        // Uniformity: every element 0..5 appears exactly 3 times.
        let mut counts = [0usize; 5];
        for s in &sets {
            for &u in s {
                counts[u as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 3));
        let red = SetIntersectionCPtile::build(&sets, 5);
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                let got = red.intersect(i, j);
                let mut want: Vec<u64> = sets[i]
                    .iter()
                    .filter(|u| sets[j].contains(u))
                    .copied()
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "sets {i} ∩ {j}");
            }
        }
    }
}
