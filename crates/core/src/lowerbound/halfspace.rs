//! Halfspace reporting → CPref reduction (Appendix B.2, Theorem 3.5).
//!
//! Each input point `u_i` becomes a singleton dataset `P_i = {u_i}`; a
//! query halfspace `H = {x : ⟨x, w⟩ ≥ c}` becomes the Pref predicate
//! `Pred_{M_{w,1}, [c, ∞)}`, since `ω_1({u}, w) = ⟨u, w⟩`. (The paper's
//! appendix additionally normalizes so that `c ≥ 0` via a rotation; our
//! Pref structures accept arbitrary thresholds, so the reduction is
//! direct.)
//!
//! The CPref oracle is approximate (ε-net snapping), so the reporter
//! returns a *superset* of `U ∩ H` whose extras violate the halfspace by at
//! most `2ε` in score — exactly the approximation band of Theorem 5.4. The
//! exact answer is recovered by filtering the candidates, which costs
//! `O(OUT + extras)`; the lower bound says the extras cannot be avoided by
//! any near-linear exact structure in `d ≥ 5`.

use crate::pref::{PrefBuildParams, PrefIndex};
use dds_geom::Point;
use dds_synopsis::ExactSynopsis;

/// Halfspace reporting through a CPref index over singleton datasets.
#[derive(Clone, Debug)]
pub struct HalfspaceReporter {
    index: PrefIndex,
    points: Vec<Point>,
}

impl HalfspaceReporter {
    /// Builds the reduction over `points` (assumed in the unit ball, as in
    /// Section 5), with Pref net parameter `eps`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn build(points: Vec<Point>, eps: f64) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        let synopses: Vec<ExactSynopsis> = points
            .iter()
            .map(|p| ExactSynopsis::new(vec![p.clone()]))
            .collect();
        let params = PrefBuildParams::exact_centralized().with_eps(eps);
        let index = PrefIndex::build(&synopses, 1, params);
        HalfspaceReporter { index, points }
    }

    /// Superset of `{i : ⟨u_i, w⟩ ≥ c}`; every extra index satisfies
    /// `⟨u_i, w⟩ ≥ c − 2ε` (the CPref band).
    pub fn candidates(&self, w: &[f64], c: f64) -> Vec<usize> {
        self.index.query(w, c)
    }

    /// Exact `U ∩ H`, obtained by filtering the CPref candidates.
    pub fn report(&self, w: &[f64], c: f64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .candidates(w, c)
            .into_iter()
            .filter(|&i| self.points[i].dot(w) >= c)
            .collect();
        out.sort_unstable();
        out
    }

    /// The approximation band `2ε` of the candidates.
    pub fn band(&self) -> f64 {
        self.index.slack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::two(0.9 * a.cos(), 0.9 * a.sin())
            })
            .collect()
    }

    #[test]
    fn reports_exactly_the_halfspace() {
        let pts = circle_points(60);
        let rep = HalfspaceReporter::build(pts.clone(), 0.05);
        for (w, c) in [
            ([1.0, 0.0], 0.5),
            ([0.0, 1.0], 0.0),
            ([0.707, 0.707], -0.3),
            ([-1.0, 0.0], 0.8),
        ] {
            let got = rep.report(&w, c);
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dot(&w) >= c)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "w={w:?} c={c}");
        }
    }

    #[test]
    fn candidates_are_supersets_within_band() {
        let pts = circle_points(40);
        let rep = HalfspaceReporter::build(pts.clone(), 0.1);
        let (w, c) = ([0.6, 0.8], 0.2);
        let cands = rep.candidates(&w, c);
        for (i, p) in pts.iter().enumerate() {
            if p.dot(&w) >= c {
                assert!(cands.contains(&i), "missed in-halfspace point {i}");
            }
        }
        for &i in &cands {
            assert!(
                pts[i].dot(&w) >= c - rep.band() - 1e-9,
                "candidate {i} outside the band"
            );
        }
    }
}
