//! Executable lower-bound reductions (Section 3, Appendix B).
//!
//! The paper's lower bounds are proofs, but both rest on *constructive*
//! reductions; running them end-to-end validates the constructions:
//!
//! * [`setint`] — uniform set intersection → CPtile in `R²` (Figure 4,
//!   Appendix B.1): answering CPtile queries fast would answer set
//!   intersection fast, contradicting the strong set-intersection
//!   conjecture (Theorem 3.4).
//! * [`halfspace`] — halfspace reporting → CPref (Appendix B.2): the
//!   unconditional Theorem 3.5 via the simplex-reporting lower bound.

pub mod halfspace;
pub mod setint;

pub use halfspace::HalfspaceReporter;
pub use setint::SetIntersectionCPtile;
