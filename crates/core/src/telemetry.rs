//! Lock-free latency telemetry: log₂ histograms, request-lifecycle stage
//! timing sets, and a bounded slow-query ring log.
//!
//! The server's stats frame counts *how many* things happened; this module
//! measures *how long* they took and *where* the time went. Three pieces:
//!
//! * [`LatencyHistogram`] — fixed log₂-bucketed nanosecond histogram with
//!   atomic counts. Recording is one relaxed `fetch_add` (no locks, no
//!   allocation), so it is safe on zero-alloc hot paths and from `&self`
//!   on shared-read query paths. [`HistogramSnapshot`] is the plain-data
//!   view: mergeable across histograms and machines, with quantiles.
//! * [`StageTimings`] / [`EngineTelemetry`] — named histogram sets for the
//!   server request lifecycle (decode → admission-queue wait → execute →
//!   response encode+write) and the engine's scatter path (routing
//!   decisions, per-scatter-unit execution).
//! * [`SlowQueryLog`] — a bounded ring buffer of structured [`QueryTrace`]
//!   records for requests whose end-to-end time exceeded a threshold.
//!
//! Timings are wall-clock and therefore nondeterministic; nothing here may
//! influence an answer. Telemetry is recorded strictly *beside* the
//! byte-identical answer path, and the histogram math itself (bucketing,
//! merge, quantiles) is deterministic and pinned by the tests below with
//! synthetic counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of buckets in a [`LatencyHistogram`].
///
/// Bucket `0` holds exactly-zero durations; bucket `i` (for `1 ≤ i ≤ 62`)
/// holds durations in `[2^(i-1), 2^i - 1]` nanoseconds; bucket `63` is the
/// overflow bucket `[2^62, u64::MAX]`. 62 powers of two cover ~4.6 seconds
/// at nanosecond granularity — far beyond any request deadline — so the
/// overflow bucket only fills on pathological stalls.
pub const BUCKETS: usize = 64;

/// Map a duration in nanoseconds to its histogram bucket index.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        ((64 - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `[lower, upper]` nanosecond bounds of bucket `i`.
///
/// Every duration recorded into bucket `i` lies inside these bounds; this
/// is the contract [`HistogramSnapshot::quantile`]'s error bound rests on.
///
/// # Panics
/// Panics if `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    match i {
        0 => (0, 0),
        63 => (1u64 << 62, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A lock-free fixed-bucket log₂ latency histogram over nanoseconds.
///
/// [`record`](Self::record) is a single relaxed atomic increment: no locks,
/// no allocation, shared-read safe (`&self`). Counts are monotonically
/// increasing; concurrent recorders never lose increments, and a
/// [`snapshot`](Self::snapshot) taken while recorders are active is a
/// consistent-enough view for monitoring (each bucket read atomically,
/// buckets read at slightly different instants).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one duration, in nanoseconds. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] (saturating at `u64::MAX` nanos).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// A plain-data copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data view of a [`LatencyHistogram`]: mergeable, serializable,
/// and the carrier for quantile queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`BUCKETS`] for the bucket scheme.
    pub counts: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with zero samples.
    pub const fn empty() -> Self {
        Self {
            counts: [0; BUCKETS],
        }
    }

    /// Build a snapshot directly from bucket counts (tests, wire decode).
    pub const fn from_counts(counts: [u64; BUCKETS]) -> Self {
        Self { counts }
    }

    /// Merge another snapshot into this one (per-bucket saturating sum).
    ///
    /// Merging is commutative and associative — snapshots from many
    /// histograms (or many servers) combine in any order to the same
    /// result, which the proptests in `protocol_robustness` pin.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Total number of samples across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) in nanoseconds, or `None` if the
    /// snapshot holds no samples.
    ///
    /// Returns the **upper bound** of the bucket containing the sample of
    /// rank `ceil(q · total)` (clamped to `[1, total]`). The error is
    /// bounded by the bucket width: the true quantile lies within the
    /// bucket's `[lower, upper]` bounds, so the returned value
    /// overestimates by strictly less than 2× (except in the overflow
    /// bucket, whose upper bound is `u64::MAX`). `q` outside `[0, 1]` is
    /// clamped.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_bounds(i).1);
            }
        }
        // Unreachable: seen == total >= rank by the loop's end.
        Some(bucket_bounds(BUCKETS - 1).1)
    }
}

/// Histograms covering the server request lifecycle, one per stage.
///
/// Stage boundaries (recorded by `dds-server`):
/// * `decode` — parsing a complete frame into a typed `Request`.
/// * `queue` — admission-queue wait, from successful enqueue to the
///   moment an executor dequeues the job.
/// * `execute` — engine execution inside the executor pool.
/// * `write` — response encode plus socket write, from the response being
///   staged on the session to the final byte leaving the kernel copy.
#[derive(Debug, Default)]
pub struct StageTimings {
    /// Frame → typed `Request` decode time.
    pub decode: LatencyHistogram,
    /// Admission-queue wait (enqueue → executor dequeue).
    pub queue: LatencyHistogram,
    /// Engine execution time in the executor pool.
    pub execute: LatencyHistogram,
    /// Response encode + socket write time.
    pub write: LatencyHistogram,
}

impl StageTimings {
    /// An empty stage set.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Engine-side timers recorded by `ShardedEngine` on its scatter path.
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// Per-(expression × shard) routing decision time (`routing_skip`).
    pub routing: LatencyHistogram,
    /// Per-scatter-unit execution time (one expression on one shard);
    /// its sample count doubles as "scatter units actually evaluated".
    pub scatter: LatencyHistogram,
}

impl EngineTelemetry {
    /// An empty engine-telemetry set.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One structured record of a slow request: where its time went and what
/// the engine did for it. All scalars; `Copy` so ring storage never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryTrace {
    /// Monotonic sequence number assigned by the [`SlowQueryLog`].
    pub seq: u64,
    /// Wire opcode of the request.
    pub opcode: u8,
    /// Frame decode time, nanoseconds.
    pub decode_ns: u64,
    /// Admission-queue wait, nanoseconds (0 for control ops).
    pub queue_ns: u64,
    /// Engine execution time, nanoseconds (0 for control ops).
    pub execute_ns: u64,
    /// Response encode + socket write time, nanoseconds.
    pub write_ns: u64,
    /// End-to-end time the threshold is compared against, nanoseconds.
    pub total_ns: u64,
    /// Scatter units the engine actually evaluated for this request.
    pub shards_scattered: u32,
    /// Scatter units skipped by the bounding-box routing tier.
    pub shards_skipped_box: u32,
    /// Scatter units skipped by the synopsis mass-bound routing tier.
    pub shards_skipped_synopsis: u32,
    /// Request frame payload bytes read.
    pub bytes_in: u64,
    /// Response frame bytes written.
    pub bytes_out: u64,
}

/// Fixed-capacity ring of traces; overwrites oldest. Storage is allocated
/// once up front so recording never allocates.
#[derive(Debug)]
struct Ring {
    buf: Vec<QueryTrace>,
    /// Index the next trace is written at.
    next: usize,
}

/// A bounded ring-buffer log of [`QueryTrace`] records for requests whose
/// `total_ns` met the threshold.
///
/// Recording takes a short mutex on the ring (never on the answer path —
/// only after the response bytes are already on the wire) and never
/// allocates after construction. A threshold of zero traces every
/// eligible request, which tests and the E19 harness use.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: u64,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<Ring>,
}

impl SlowQueryLog {
    /// A log keeping the most recent `capacity` traces of requests at or
    /// above `threshold_ns`. `capacity == 0` disables tracing entirely.
    pub fn new(threshold_ns: u64, capacity: usize) -> Self {
        Self {
            threshold_ns,
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                next: 0,
            }),
        }
    }

    /// The nanosecond threshold a trace's `total_ns` must meet.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Record `trace` if it is slow enough; returns whether it was kept.
    /// The log assigns `trace.seq`.
    pub fn offer(&self, mut trace: QueryTrace) -> bool {
        if self.capacity == 0 || trace.total_ns < self.threshold_ns {
            return false;
        }
        trace.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("slow-query log poisoned");
        let next = ring.next;
        if ring.buf.len() < self.capacity {
            ring.buf.push(trace);
        } else {
            ring.buf[next] = trace;
        }
        ring.next = (next + 1) % self.capacity;
        true
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        let ring = self.ring.lock().expect("slow-query log poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(ring.buf.len());
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_documented_scheme() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        // Every value lands inside its bucket's bounds.
        for nanos in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(nanos);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= nanos && nanos <= hi, "{nanos} outside bucket {i}");
        }
    }

    #[test]
    fn overflow_bucket_captures_the_extremes() {
        assert_eq!(bucket_index((1u64 << 62) - 1), 62);
        assert_eq!(bucket_index(1u64 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_bounds(63), (1u64 << 62, u64::MAX));
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        let s = h.snapshot();
        assert_eq!(s.counts[63], 2);
        assert_eq!(s.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let h = LatencyHistogram::new();
        for nanos in [0u64, 1, 1, 5, 100, 100, 100] {
            h.record(nanos);
        }
        assert_eq!(h.count(), 7);
        let s = h.snapshot();
        assert_eq!(s.total(), 7);
        assert_eq!(s.counts[0], 1); // the single 0
        assert_eq!(s.counts[1], 2); // the two 1s
        assert_eq!(s.counts[3], 1); // 5 ∈ [4,7]
        assert_eq!(s.counts[7], 3); // 100 ∈ [64,127]
    }

    #[test]
    fn quantile_brackets_the_true_value_deterministically() {
        // Synthetic exact samples: quantile() must return the upper bound
        // of the bucket that truly contains the ranked sample.
        let samples: Vec<u64> = (1..=1000u64).map(|i| i * 3).collect();
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = snap.quantile(q).unwrap();
            let (lo, hi) = bucket_bounds(bucket_index(truth));
            assert_eq!(est, hi, "q={q}: estimate must be the bucket upper bound");
            assert!(lo <= truth && truth <= hi);
            // Documented bound: overestimate by strictly less than 2x.
            assert!(est < truth.saturating_mul(2), "q={q}: {est} vs {truth}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = LatencyHistogram::new();
        for i in 0..500u64 {
            h.record(i * i);
        }
        let s = h.snapshot();
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| s.quantile(q).unwrap()).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
        }
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.total(), 0);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn merge_is_commutative_and_adds_counts() {
        let mut a = HistogramSnapshot::empty();
        a.counts[3] = 5;
        a.counts[63] = u64::MAX;
        let mut b = HistogramSnapshot::empty();
        b.counts[3] = 7;
        b.counts[10] = 1;
        b.counts[63] = 2;
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counts[3], 12);
        assert_eq!(ab.counts[10], 1);
        assert_eq!(ab.counts[63], u64::MAX, "merge saturates, never wraps");
    }

    #[test]
    fn slow_log_keeps_most_recent_in_order() {
        let log = SlowQueryLog::new(0, 3);
        for i in 0..5u64 {
            let kept = log.offer(QueryTrace {
                total_ns: i + 1,
                ..QueryTrace::default()
            });
            assert!(kept);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest-first, last capacity entries"
        );
        assert_eq!(
            recent.iter().map(|t| t.total_ns).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn slow_log_respects_threshold_and_zero_capacity() {
        let log = SlowQueryLog::new(1000, 4);
        assert!(!log.offer(QueryTrace {
            total_ns: 999,
            ..QueryTrace::default()
        }));
        assert!(log.offer(QueryTrace {
            total_ns: 1000,
            ..QueryTrace::default()
        }));
        assert_eq!(log.recent().len(), 1);

        let disabled = SlowQueryLog::new(0, 0);
        assert!(!disabled.offer(QueryTrace {
            total_ns: u64::MAX,
            ..QueryTrace::default()
        }));
        assert!(disabled.recent().is_empty());
    }

    #[test]
    fn stage_timings_and_engine_telemetry_record_independently() {
        let stages = StageTimings::new();
        stages.decode.record(10);
        stages.queue.record(20);
        stages.execute.record(30);
        stages.write.record(40);
        assert_eq!(stages.decode.count(), 1);
        assert_eq!(stages.queue.count(), 1);
        assert_eq!(stages.execute.count(), 1);
        assert_eq!(stages.write.count(), 1);

        let eng = EngineTelemetry::new();
        eng.routing.record(5);
        eng.scatter.record(6);
        assert_eq!(eng.routing.count(), 1);
        assert_eq!(eng.scatter.count(), 1);
    }
}
