//! Packed `u64` bitsets for dataset hit masks.
//!
//! The DNF query loops intersect and union per-predicate answer sets many
//! times per expression. With `Vec<bool>` those are byte-wise loops; packing
//! the masks into `u64` words turns clause intersection (`AND`) and
//! cross-clause dedup (`OR`/membership) into word-wise operations — 64
//! datasets per instruction. [`MixedQueryEngine`](crate::engine::MixedQueryEngine)
//! memoizes one [`BitSet`] per distinct predicate and
//! [`PtileMultiIndex`](crate::ptile::PtileMultiIndex) accumulates DNF
//! clauses through one.

/// A fixed-capacity set of dataset indexes packed into `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size this set was created with.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no index is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit, keeping the universe and the word buffer.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-targets the set to the universe `0..len` and clears it, reusing
    /// the word buffer (no allocation once it has grown to `len` words).
    /// Query scratch resets its bitsets with this per query.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Sets every index of the universe (tail bits of the last word stay
    /// clear, so [`iter_ones`](Self::iter_ones) and
    /// [`count_ones`](Self::count_ones) remain exact). Used to seed clause
    /// intersection accumulators.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Inserts `i`, returning `true` iff it was not already present.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} outside universe {}", self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Word-wise intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn and_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Word-wise union: `self |= other`.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn or_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set indexes.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set indexes in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    return None;
                }
                let b = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "re-insert reports already-present");
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(!s.contains(500), "out of universe is just absent");
        assert_eq!(s.count_ones(), 4);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn and_or_are_word_wise() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in (0..100).step_by(2) {
            a.insert(i);
        }
        for i in (0..100).step_by(3) {
            b.insert(i);
        }
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(
            and.iter_ones().collect::<Vec<_>>(),
            (0..100).filter(|i| i % 6 == 0).collect::<Vec<_>>()
        );
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.iter_ones().collect::<Vec<_>>(),
            (0..100)
                .filter(|i| i % 2 == 0 || i % 3 == 0)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn reset_and_set_all_respect_the_universe() {
        let mut s = BitSet::new(130);
        s.insert(129);
        s.reset(70);
        assert_eq!(s.len(), 70);
        assert!(s.is_empty(), "reset clears old bits");
        s.set_all();
        assert_eq!(s.count_ones(), 70);
        assert_eq!(s.iter_ones().last(), Some(69), "tail bits stay clear");
        // Word-aligned universe: set_all fills whole words.
        s.reset(128);
        s.set_all();
        assert_eq!(s.count_ones(), 128);
        // Growing again reuses / extends the buffer without stale bits.
        s.reset(200);
        assert!(s.is_empty());
        assert!(s.insert(199));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let mut a = BitSet::new(64);
        a.and_assign(&BitSet::new(65));
    }
}
