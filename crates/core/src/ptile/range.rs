//! Approximate Ptile index for general range predicates — Algorithms 3
//! and 4, Theorem 4.11 (with the per-dataset error budgets of Remark 2).
//!
//! Unlike the threshold structure, a range predicate `θ = [a_θ, b_θ]` must
//! be decided against the **maximal** canonical rectangle inside the query
//! `R` (Figure 2 of the paper shows why any-rectangle matching
//! over-reports). Algorithm 3 therefore stores *pairs* `(ρ, ρ̂)` with no
//! canonical rectangle strictly between them, and Algorithm 4 searches for
//! pairs with `ρ ⊆ R ⊂⊂ ρ̂` — which forces `ρ` to be maximal (Lemma 4.5).
//!
//! Implementation notes (argued in DESIGN.md §3):
//!
//! * Only pairs where `ρ̂` strictly contains `ρ` on every facet are ever
//!   matchable, and for grid rectangles the unique such canonical partner is
//!   the **one-step expansion** `ρ̂ = ∏_h [prev(ρ⁻_h), next(ρ⁺_h)]` — exactly
//!   the `ρ̂_R` built in Lemma 4.6. We therefore store one pair per
//!   rectangle (`|Q_i| = |R_i|`); `dds_geom::CoordGrid::is_canonical_pair`
//!   validates the equivalence against the paper's literal definition in
//!   tests. ±∞ expansion facets play the role of the paper's bounding-box
//!   projections `S̄_i`.
//! * Per-dataset error budgets `c_i = ε_i + δ_i` are folded into two weight
//!   coordinates, `w⁺ = w + c_i` (checked against `a_θ`) and `w⁻ = w − c_i`
//!   (checked against `b_θ`) — Remark 2 with known budgets; lifted points
//!   live in `R^{4d+2}`.
//! * When `a_θ ≤ c_i`, a dataset whose sample has no point in `R` (no
//!   canonical rectangle inside `R`) also qualifies. Per dimension `h` an
//!   auxiliary structure keeps *empty slabs* — triples
//!   `(c, next(c), c_i)` of consecutive coordinates plus the budget — and
//!   reports datasets with a slab strictly covering `R`'s `h`-extent and
//!   budget reaching `a_θ`. A dataset matches the auxiliary structures iff
//!   it has no canonical rectangle inside `R`, so main and auxiliary
//!   answers never overlap.

use super::coreset::{build_coreset, rect_weights};
use super::routing::{sorted_sample_axes, RoutingSynopsis};
use super::PtileBuildParams;
use crate::framework::Interval;
use crate::pool::{par_map, BuildOptions};
use crate::scratch::QueryScratch;
use dds_geom::Rect;
use dds_rangetree::{KdTree, OrthoIndex, Region};
use dds_synopsis::PercentileSynopsis;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-dataset build output: the lifted pair points, the per-dimension
/// empty-slab triples and the achieved budget. Computed independently per
/// dataset (own RNG stream), so datasets can build on worker threads in any
/// order and merge back deterministically.
struct RangePart {
    lifted: Vec<Vec<f64>>,
    /// `slabs[h]` = `(lo, hi, ε_i + δ_i)` triples for dimension `h`.
    slabs: Vec<Vec<Vec<f64>>>,
    eps_i: f64,
    delta_i: f64,
    /// Per-axis sorted weight-sample coordinates, feeding the build-wide
    /// [`RoutingSynopsis`]; `None` when the sample carries a `NaN`.
    axes: Option<Vec<Vec<f64>>>,
}

/// Approximate percentile-range index (Theorem 4.11).
///
/// ```
/// use dds_core::ptile::{PtileBuildParams, PtileRangeIndex};
/// use dds_core::framework::Interval;
/// use dds_geom::{Point, Rect};
/// use dds_synopsis::ExactSynopsis;
///
/// // The paper's Section-4.3 running example.
/// let synopses = vec![
///     ExactSynopsis::new(vec![Point::one(1.0), Point::one(7.0), Point::one(9.0)]),
///     ExactSynopsis::new(vec![
///         Point::one(2.0), Point::one(4.0), Point::one(6.0), Point::one(10.0),
///     ]),
/// ];
/// let index = PtileRangeIndex::build(&synopses, PtileBuildParams::exact_centralized());
/// // Between 20% and 40% of the points in [3, 8]: only the first dataset
/// // (mass 1/3); the second (mass 1/2) exceeds the upper bound.
/// let hits = index.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4));
/// assert_eq!(hits, vec![0]);
/// ```
#[derive(Clone, Debug)]
pub struct PtileRangeIndex {
    dim: usize,
    n_datasets: usize,
    eps_max: f64,
    delta_max: f64,
    /// Per-dataset combined budget `ε_i + δ_i`.
    combined: Vec<f64>,
    max_combined: f64,
    /// Lifted pairs in `R^{4d+2}`: `(ρ⁻, ρ̂⁻, ρ⁺, ρ̂⁺, w⁺, w⁻)`.
    tree: KdTree,
    groups: Vec<Vec<usize>>,
    owner: Vec<u32>,
    /// Per dimension: empty-slab triples `(c_j, c_{j+1}, ε_i + δ_i)`.
    aux: Vec<KdTree>,
    aux_owner: Vec<Vec<u32>>,
    /// Mass-bound synopsis over the weight samples, for the shard routing
    /// fast path; `None` when a sample coordinate was `NaN`.
    routing: Option<RoutingSynopsis>,
}

impl PtileRangeIndex {
    /// Builds the index (Algorithm 3 with one-step-expansion pairs) with a
    /// uniform synopsis error bound `params.delta`, serially.
    ///
    /// # Panics
    /// Panics if `synopses` is empty or dimensions are inconsistent.
    pub fn build<S: PercentileSynopsis>(synopses: &[S], params: PtileBuildParams) -> Self {
        Self::build_with_deltas(synopses, None, params)
    }

    /// Worker-pool variant of [`build`](Self::build): per-dataset work units
    /// run on `opts.threads` scoped threads. Bit-identical results for every
    /// thread count.
    pub fn build_opts<S: PercentileSynopsis + Sync>(
        synopses: &[S],
        params: PtileBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        Self::build_with_deltas_opts(synopses, None, params, opts)
    }

    /// Builds the index with per-dataset synopsis error bounds
    /// (`deltas[i] = δ_i`, Remark 2 with known budgets), serially.
    ///
    /// # Panics
    /// Panics if `synopses` is empty, dimensions are inconsistent, or
    /// `deltas` has the wrong arity.
    pub fn build_with_deltas<S: PercentileSynopsis>(
        synopses: &[S],
        deltas: Option<&[f64]>,
        params: PtileBuildParams,
    ) -> Self {
        Self::check_build_inputs(synopses, deltas);
        let n = synopses.len();
        let parts: Vec<RangePart> = synopses
            .iter()
            .enumerate()
            .map(|(i, syn)| Self::dataset_part(i, syn, deltas, &params, n))
            .collect();
        Self::from_parts(synopses[0].dim(), parts, 1)
    }

    /// Worker-pool variant of [`build_with_deltas`](Self::build_with_deltas).
    pub fn build_with_deltas_opts<S: PercentileSynopsis + Sync>(
        synopses: &[S],
        deltas: Option<&[f64]>,
        params: PtileBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        Self::check_build_inputs(synopses, deltas);
        let n = synopses.len();
        let params = &params;
        let parts = par_map(opts, synopses, |i, syn| {
            Self::dataset_part(i, syn, deltas, params, n)
        });
        Self::from_parts(synopses[0].dim(), parts, opts.threads)
    }

    fn check_build_inputs<S: PercentileSynopsis>(synopses: &[S], deltas: Option<&[f64]>) {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        let dim = synopses[0].dim();
        assert!(
            synopses.iter().all(|s| s.dim() == dim),
            "synopses must share the schema dimension"
        );
        if let Some(d) = deltas {
            assert_eq!(d.len(), synopses.len(), "one delta per synopsis");
        }
    }

    /// One dataset's build work unit (Algorithm 3 lines 3–7): pure function
    /// of `(i, synopsis, params)` — its RNG is seeded per dataset, so the
    /// unit computes the same part on any thread in any order.
    fn dataset_part<S: PercentileSynopsis>(
        i: usize,
        syn: &S,
        deltas: Option<&[f64]>,
        params: &PtileBuildParams,
        n: usize,
    ) -> RangePart {
        let dim = syn.dim();
        let mut rng = StdRng::seed_from_u64(params.dataset_seed(i));
        let cs = build_coreset(syn, params, n, &mut rng);
        let eps_i = super::params::effective_eps(cs.eps_i, params.eps_override);
        let delta_i = deltas.map_or(params.delta, |d| d[i]);
        let c_i = eps_i + delta_i;
        let rects = cs.grid.enumerate_rects();
        let weights = rect_weights(&cs.sample, &rects);
        let mut lifted = Vec::with_capacity(rects.len());
        for (rect, w) in rects.iter().zip(weights) {
            let hat = cs.grid.one_step_expansion(rect);
            let mut coords = Vec::with_capacity(4 * dim + 2);
            coords.extend_from_slice(rect.lo());
            coords.extend_from_slice(hat.lo());
            coords.extend_from_slice(rect.hi());
            coords.extend_from_slice(hat.hi());
            coords.push(w + c_i);
            coords.push(w - c_i);
            lifted.push(coords);
        }
        let mut slabs = vec![Vec::new(); dim];
        for (h, slabs_h) in slabs.iter_mut().enumerate() {
            for (lo, hi) in cs.grid.empty_slabs(h) {
                slabs_h.push(vec![lo, hi, c_i]);
            }
        }
        let axes = sorted_sample_axes(dim, &cs.sample);
        RangePart {
            lifted,
            slabs,
            eps_i,
            delta_i,
            axes,
        }
    }

    /// Deterministic merge: parts are concatenated in dataset order, so the
    /// lifted array, owner table and aux structures match the serial build
    /// exactly regardless of which worker produced which part.
    fn from_parts(dim: usize, parts: Vec<RangePart>, threads: usize) -> Self {
        let n = parts.len();
        let mut lifted: Vec<Vec<f64>> = Vec::new();
        let mut owner: Vec<u32> = Vec::new();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut aux_points: Vec<Vec<Vec<f64>>> = vec![Vec::new(); dim];
        let mut aux_owner: Vec<Vec<u32>> = vec![Vec::new(); dim];
        let mut combined: Vec<f64> = Vec::with_capacity(n);
        let mut eps_max: f64 = 0.0;
        let mut delta_max: f64 = 0.0;
        let mut sample_axes: Vec<Option<Vec<Vec<f64>>>> = Vec::with_capacity(n);
        for (i, mut part) in parts.into_iter().enumerate() {
            sample_axes.push(part.axes.take());
            eps_max = eps_max.max(part.eps_i);
            delta_max = delta_max.max(part.delta_i);
            combined.push(part.eps_i + part.delta_i);
            groups[i].extend(lifted.len()..lifted.len() + part.lifted.len());
            owner.extend(std::iter::repeat_n(i as u32, part.lifted.len()));
            lifted.append(&mut part.lifted);
            for (h, mut slabs_h) in part.slabs.drain(..).enumerate() {
                aux_owner[h].extend(std::iter::repeat_n(i as u32, slabs_h.len()));
                aux_points[h].append(&mut slabs_h);
            }
        }
        let tree = KdTree::build_par(4 * dim + 2, lifted, threads);
        let aux = aux_points
            .into_iter()
            .map(|pts| KdTree::build_par(3, pts, threads))
            .collect();
        let max_combined = combined.iter().fold(0.0f64, |a, &b| a.max(b));
        let routing = RoutingSynopsis::from_sorted_samples(dim, &sample_axes);
        PtileRangeIndex {
            dim,
            n_datasets: n,
            eps_max,
            delta_max,
            combined,
            max_combined,
            tree,
            groups,
            owner,
            aux,
            aux_owner,
            routing,
        }
    }

    /// Schema dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed datasets `N`.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// Achieved sampling error ε (maximum over datasets).
    pub fn eps(&self) -> f64 {
        self.eps_max
    }

    /// Synopsis error bound δ (maximum over datasets).
    pub fn delta(&self) -> f64 {
        self.delta_max
    }

    /// Worst-case query margin `max_i (ε_i + δ_i)`.
    pub fn margin(&self) -> f64 {
        self.max_combined
    }

    /// The build's [`RoutingSynopsis`] — a sound upper bound on the
    /// fraction of any one dataset's weight sample inside a rectangle,
    /// consumed by the shard routing fast path. `None` when a sample
    /// coordinate was `NaN` (interval reasoning would be unsound).
    pub fn routing_synopsis(&self) -> Option<&RoutingSynopsis> {
        self.routing.as_ref()
    }

    /// Global guarantee band (Lemma 4.8 / Remark 2): every reported `j` has
    /// `a_θ − slack_for(j) ≤ M_R(P_j) ≤ b_θ + slack_for(j)` and
    /// `slack_for(j) ≤ slack()`.
    pub fn slack(&self) -> f64 {
        2.0 * self.max_combined
    }

    /// Per-dataset guarantee band `2(ε_j + δ_j)`.
    pub fn slack_for(&self, j: usize) -> f64 {
        2.0 * self.combined[j]
    }

    /// Number of lifted pair points.
    pub fn lifted_points(&self) -> usize {
        self.owner.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
            + self.aux.iter().map(KdTree::memory_bytes).sum::<usize>()
            + self.owner.len() * 4
            + self.combined.len() * 8
            + self.groups.iter().map(|g| g.len() * 8 + 24).sum::<usize>()
    }

    /// Answers `Π = Pred_{M_R, θ}` for a general interval θ (Algorithm 4).
    ///
    /// Read-only: the index can be shared (`&self`, e.g. behind an `Arc`)
    /// across query threads. Allocates a fresh [`QueryScratch`] per call;
    /// query loops should prefer [`query_with`](Self::query_with).
    pub fn query(&self, r: &Rect, theta: Interval) -> Vec<usize> {
        self.query_with(r, theta, &mut QueryScratch::new())
    }

    /// [`query`](Self::query) with caller-provided scratch: identical
    /// answers, no per-query buffer allocations.
    pub fn query_with(&self, r: &Rect, theta: Interval, scratch: &mut QueryScratch) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_cb_with(r, theta, scratch, &mut |j| out.push(j));
        out
    }

    /// Callback variant of [`query`](Self::query) (delay instrumentation).
    pub fn query_cb(&self, r: &Rect, theta: Interval, f: &mut dyn FnMut(usize)) {
        self.query_cb_with(r, theta, &mut QueryScratch::new(), f)
    }

    /// [`query_cb`](Self::query_cb) with caller-provided scratch.
    pub fn query_cb_with(
        &self,
        r: &Rect,
        theta: Interval,
        scratch: &mut QueryScratch,
        f: &mut dyn FnMut(usize),
    ) {
        assert_eq!(r.dim(), self.dim, "query rectangle dimension mismatch");
        scratch.reset_reported(self.n_datasets);
        let QueryScratch {
            reported,
            hits,
            region,
            ..
        } = scratch;
        self.orthant_into(r, theta, region);
        let owner = &self.owner;
        self.tree.report_while(region, &mut |q| {
            let j = owner[q] as usize;
            if reported.insert(j) {
                f(j);
            }
            true
        });
        // Zero-mass corner case: datasets with no canonical rectangle inside
        // R qualify iff their personal band reaches 0, i.e. a_θ ≤ ε_i + δ_i.
        if theta.lo <= self.max_combined {
            for h in 0..self.dim {
                region.reset(3);
                region.set_hi(0, r.lo_at(h), true);
                region.set_lo(1, r.hi_at(h), true);
                region.set_lo(2, theta.lo, false);
                hits.clear();
                self.aux[h].report(region, hits);
                for &id in hits.iter() {
                    let j = self.aux_owner[h][id] as usize;
                    if reported.insert(j) {
                        f(j);
                    }
                }
            }
        }
    }

    /// The `R^{4d}` orthant of Algorithm 4 line 1 plus the weight bands:
    /// `ρ⁻ ≥ R⁻`, `ρ̂⁻ < R⁻`, `ρ⁺ ≤ R⁺`, `ρ̂⁺ > R⁺`, `w⁺ ≥ a_θ`,
    /// `w⁻ ≤ b_θ` (per-dataset margins pre-folded into `w±`), written into
    /// a reused region buffer.
    fn orthant_into(&self, r: &Rect, theta: Interval, region: &mut Region) {
        let d = self.dim;
        region.reset(4 * d + 2);
        for h in 0..d {
            region.set_lo(h, r.lo_at(h), false);
            region.set_hi(d + h, r.lo_at(h), true);
            region.set_hi(2 * d + h, r.hi_at(h), false);
            region.set_lo(3 * d + h, r.hi_at(h), true);
        }
        region.set_lo(4 * d, theta.lo, false);
        region.set_hi(4 * d + 1, theta.hi, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    fn figure1_synopses() -> Vec<ExactSynopsis> {
        vec![
            ExactSynopsis::new(vec![Point::one(1.0), Point::one(7.0), Point::one(9.0)]),
            ExactSynopsis::new(vec![
                Point::one(2.0),
                Point::one(4.0),
                Point::one(6.0),
                Point::one(10.0),
            ]),
        ]
    }

    fn exact_index() -> PtileRangeIndex {
        let idx =
            PtileRangeIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        assert_eq!(idx.eps(), 0.0);
        idx
    }

    #[test]
    fn figure3_running_example() {
        // Section 4.3 running example: R = [3, 8], θ = [0.2, 0.4].
        // S1's maximal interval is [7, 7] with weight 1/3 ∈ θ → report 0.
        // S2's maximal interval is [4, 6] with weight 2/4 > 0.4 → do not
        // report 1 (the threshold structure would, via [4, 4]).
        let idx = exact_index();
        let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4));
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn figure2_maximality_guard() {
        // Figure 2 scenario: a dataset with a small-weight sub-rectangle
        // inside R must NOT be reported when its true mass exceeds b_θ.
        // Dataset: 10 points, 9 clustered in [5, 6], 1 at 2.0. R = [1, 7],
        // true mass = 1.0; θ = [0.0, 0.2]. The interval [2, 2] has weight
        // 0.1 ∈ θ but is not maximal.
        let mut pts = vec![Point::one(2.0)];
        pts.extend((0..9).map(|i| Point::one(5.0 + i as f64 * 0.1)));
        let syn = vec![ExactSynopsis::new(pts)];
        let idx = PtileRangeIndex::build(&syn, PtileBuildParams::exact_centralized());
        assert_eq!(idx.eps(), 0.0);
        let hits = idx.query(&Rect::interval(1.0, 7.0), Interval::new(0.0, 0.2));
        assert!(hits.is_empty(), "non-maximal rectangle must not fire");
    }

    #[test]
    fn two_sided_band_excludes_high_mass() {
        let idx = exact_index();
        // θ = [0.4, 0.6]: only dataset 1 (mass 0.5).
        let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.4, 0.6));
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn zero_band_reports_empty_datasets() {
        let idx = exact_index();
        // R = [2.5, 3.5] contains no point of S1 (mass 0) and none of S2
        // (mass 0). θ = [0, 0.1] must report both via the empty-slab path.
        let mut hits = idx.query(&Rect::interval(2.5, 3.5), Interval::new(0.0, 0.1));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        // Same R with θ = [0.2, 0.4]: nobody qualifies.
        assert!(idx
            .query(&Rect::interval(2.5, 3.5), Interval::new(0.2, 0.4))
            .is_empty());
    }

    #[test]
    fn zero_band_does_not_double_report() {
        let idx = exact_index();
        // R = [3, 8] with θ = [0, 1]: both datasets have mass > 0 and must
        // appear exactly once (main structure), not again via aux.
        let mut hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.0, 1.0));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn repeated_queries_are_stable() {
        let idx = exact_index();
        for _ in 0..5 {
            let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4));
            assert_eq!(hits, vec![0]);
        }
    }

    #[test]
    fn threshold_queries_work_via_range_structure() {
        let idx = exact_index();
        let mut hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 1.0));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn query_boundary_on_sample_coordinates() {
        // Query facets exactly on data coordinates: the strict bounds on
        // ρ̂ keep maximality decisions exact.
        let idx = exact_index();
        // R = [4, 6] over S2: maximal interval [4, 6], weight 0.5.
        let hits = idx.query(&Rect::interval(4.0, 6.0), Interval::new(0.45, 0.55));
        assert_eq!(hits, vec![1]);
        // S1 has no point in [4, 6] → only reported when 0 is in the band.
        let mut zero = idx.query(&Rect::interval(4.0, 6.0), Interval::new(0.0, 0.1));
        zero.sort_unstable();
        assert_eq!(zero, vec![0]);
    }

    #[test]
    fn per_dataset_deltas_two_sided() {
        // Coarse synopsis for dataset 0 (δ = 0.2), sharp for dataset 1.
        // θ = [0.5, 0.52] over R = [3, 8]: masses are 1/3 and 1/2.
        //  - dataset 0: band [0.3, 0.72] ∋ 1/3 → reported;
        //  - dataset 1: band [0.5, 0.52] ∋ 1/2 → reported.
        let idx = PtileRangeIndex::build_with_deltas(
            &figure1_synopses(),
            Some(&[0.2, 0.0]),
            PtileBuildParams::exact_centralized(),
        );
        let mut hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.5, 0.52));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        // θ = [0.52, 0.6]: dataset 1's sharp weight (0.5) misses the bar;
        // dataset 0's budget-lifted weight (1/3 + 0.2 ≈ 0.533) clears it.
        let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.52, 0.6));
        assert_eq!(hits, vec![0]);
        assert_eq!(idx.slack_for(1), 0.0);
    }
}
