//! Percentile-aware indexing (the Ptile problem, Sections 4 and Appendix C).
//!
//! | Type | Paper result | Predicate shape |
//! |------|--------------|-----------------|
//! | [`PtileThresholdIndex`] | Theorem 4.4 (Algorithms 1–2) | one `M_R(P) ≥ a_θ` |
//! | [`PtileRangeIndex`] | Theorem 4.11 (Algorithms 3–4) | one `M_R(P) ∈ [a_θ, b_θ]` |
//! | [`PtileMultiIndex`] | Theorem C.8 | conjunctions (and, via DNF, any logical expression) of `m` range predicates |
//! | [`ExactCPtile1D`] | Theorem C.5 | exact answers in `R¹` for a θ fixed at build time |
//! | [`DynamicPtileIndex`] | Remark 1 after Theorem 4.11 | range predicates with synopsis insertion/deletion |
//!
//! All approximate structures share the guarantee shape: no false negatives
//! (with probability `1 − φ`), and every reported dataset satisfies the
//! predicate up to the additive [`slack`](PtileThresholdIndex::slack)
//! `2(ε + δ)`, where ε is the (per-build, measured) sampling error and δ
//! the synopsis error.

mod coreset;
mod dynamic;
mod exact1d;
mod multi;
mod params;
mod range;
mod routing;
mod threshold;

pub use dynamic::DynamicPtileIndex;
pub use exact1d::ExactCPtile1D;
pub use multi::{MultiQueryError, PtileMultiIndex};
pub use params::PtileBuildParams;
pub use range::PtileRangeIndex;
pub use routing::RoutingSynopsis;
pub use threshold::PtileThresholdIndex;
