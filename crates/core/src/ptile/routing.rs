//! Per-build routing synopsis: a compact, **sound** upper bound on how
//! much of any single dataset's weight sample can fall inside a query
//! rectangle.
//!
//! The shard routing layer (`dds_core::shard`) wants to answer "might this
//! shard report anything for this percentile predicate?" without touching
//! the shard's indexes. The range index reports dataset `j` through its
//! main structure only when some canonical rectangle `ρ ⊆ R` has sample
//! weight `w(ρ) = |ρ ∩ S_j| / |S_j|` with `w(ρ) + (ε_j + δ_j) ≥ a_θ`, and
//! through the zero-mass path only when `a_θ ≤ ε_j + δ_j`. So an upper
//! bound `U` on `max_j |R ∩ S_j| / |S_j|` proves a shard silent whenever
//! `U + max_j (ε_j + δ_j) < a_θ` — the quantity this synopsis bounds.
//!
//! Two deliberate conservatisms keep the bound sound by construction:
//!
//! * **Partial bins count fully.** Per axis the synopsis keeps shared bin
//!   edges (equi-depth over pooled per-dataset sample quantiles) and a
//!   per-bin *envelope* `env[b] = max_j |bin_b ∩ S_j| / |S_j|` with bins
//!   closed on both ends. A query interval sums the envelope over every
//!   bin it touches, even partially, so the axis total can only
//!   over-state the slab mass — and a value sitting exactly on a shared
//!   edge counts in both neighbouring bins, which again only loosens.
//! * **Axes combine by `min`, not product.** For any rectangle,
//!   `|R ∩ S_j| ≤ min_h |slab_h(R) ∩ S_j|` (the rectangle is contained in
//!   each of its axis slabs). A product of per-axis fractions would
//!   *under*-state correlated data — two points at `(0,0)` and `(1,1)`
//!   give the rectangle `[0, ½]²` true mass ½ but axis masses ½ each,
//!   product ¼ — so the product is **not** a bound; the min is.
//!
//! The envelope is built over the **weight samples** `S_j` (the same
//! samples the lifted pairs are weighted against), not the raw points: a
//! sampled build can place a larger *fraction* of `S_j` inside `R` than
//! the raw fraction, so a raw-point bound would not dominate the quantity
//! the reporting rule actually tests. Exact builds take the support as
//! their sample, so the two notions coincide there.
//!
//! A `NaN` sample coordinate makes interval reasoning unsound, so the
//! builder returns `None` and routing falls back to scatter-everywhere,
//! exactly like the raw-point bounding box.

use dds_geom::Point;

/// Bin budget per axis. 48 bins keep the synopsis a few hundred bytes per
/// axis while resolving selective interior predicates well below typical
/// thresholds.
pub(crate) const ROUTING_BINS: usize = 48;

/// Per-dataset quantile points pooled to place the shared bin edges. The
/// edges only steer pruning *power*, never soundness, so a small fixed
/// count per dataset keeps edge placement O(n) instead of sorting the
/// pooled samples.
const EDGE_QUANTILES_PER_DATASET: usize = 9;

/// A per-build mass-bound synopsis: shared per-axis bin edges plus the
/// per-bin max-mass envelope over the member datasets' weight samples.
///
/// Constructed by [`PtileRangeIndex`](super::PtileRangeIndex) builds and
/// consumed by the shard routing fast path via
/// [`MixedQueryEngine::routing_synopsis`](crate::engine::MixedQueryEngine::routing_synopsis).
#[derive(Clone, Debug)]
pub struct RoutingSynopsis {
    /// `edges[h]` — sorted, deduplicated bin edges of axis `h`
    /// (`len >= 1`; a single edge means every sample value coincides).
    edges: Vec<Vec<f64>>,
    /// `env[h][b]` — the largest fraction of any one dataset's weight
    /// sample inside bin `b = [edges[h][b], edges[h][b+1]]` (closed on
    /// both ends; a single-edge axis has one degenerate `[v, v]` bin).
    env: Vec<Vec<f64>>,
}

impl RoutingSynopsis {
    /// Builds the synopsis from per-dataset, per-axis **sorted** weight
    /// sample coordinates (`samples[j][h]`). Returns `None` when any
    /// dataset's axes are `None` (a `NaN` coordinate was seen) or when no
    /// dataset contributed a sample value.
    pub(crate) fn from_sorted_samples(
        dim: usize,
        samples: &[Option<Vec<Vec<f64>>>],
    ) -> Option<Self> {
        if samples.iter().any(Option::is_none) {
            return None;
        }
        let mut edges = Vec::with_capacity(dim);
        let mut env = Vec::with_capacity(dim);
        for h in 0..dim {
            // Edge placement: a few quantiles per dataset, pooled and
            // re-quantiled into the bin budget. Equi-depth over the pool
            // puts resolution where the data mass is.
            let mut pool: Vec<f64> = Vec::new();
            for s in samples.iter().flatten() {
                let xs = &s[h];
                if xs.is_empty() {
                    continue;
                }
                for q in 0..EDGE_QUANTILES_PER_DATASET {
                    let rank = q * (xs.len() - 1) / (EDGE_QUANTILES_PER_DATASET - 1).max(1);
                    pool.push(xs[rank]);
                }
            }
            if pool.is_empty() {
                return None;
            }
            pool.sort_unstable_by(f64::total_cmp);
            let mut e: Vec<f64> = (0..=ROUTING_BINS)
                .map(|b| pool[b * (pool.len() - 1) / ROUTING_BINS])
                .collect();
            e.dedup();
            // Envelope: per bin, the worst single-dataset closed-interval
            // mass fraction. An empty sample contributes nothing (its
            // mass is zero everywhere; its zero-mass reports are covered
            // by the margin term, not by this bound).
            let bins: Vec<(f64, f64)> = if e.len() == 1 {
                vec![(e[0], e[0])]
            } else {
                e.windows(2).map(|w| (w[0], w[1])).collect()
            };
            let mut env_h = vec![0.0f64; bins.len()];
            for s in samples.iter().flatten() {
                let xs = &s[h];
                if xs.is_empty() {
                    continue;
                }
                let m = xs.len() as f64;
                for (b, &(lo, hi)) in bins.iter().enumerate() {
                    let i0 = xs.partition_point(|&x| x < lo);
                    let i1 = xs.partition_point(|&x| x <= hi);
                    let frac = (i1 - i0) as f64 / m;
                    if frac > env_h[b] {
                        env_h[b] = frac;
                    }
                }
            }
            edges.push(e);
            env.push(env_h);
        }
        Some(RoutingSynopsis { edges, env })
    }

    /// Schema dimension the synopsis covers.
    pub fn dim(&self) -> usize {
        self.edges.len()
    }

    /// Bin count of axis `h` (at most [`ROUTING_BINS`]; fewer after edge
    /// deduplication).
    pub fn bins(&self, h: usize) -> usize {
        self.env[h].len()
    }

    /// An upper bound on `max_j |R ∩ S_j| / |S_j|` for the axis-aligned
    /// rectangle `R` given as per-axis closed intervals: per axis the
    /// envelope sums over every touched bin (partial bins counted fully),
    /// the rectangle takes the `min` over axes, and the result is nudged
    /// up a hair for float safety before clamping to 1. An interval
    /// disjoint from an axis's sample range yields exactly `0.0`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `rect.len() != self.dim()`.
    pub fn mass_bound(&self, rect: &[(f64, f64)]) -> f64 {
        debug_assert_eq!(rect.len(), self.dim());
        let mut best = 1.0f64;
        for (h, &(a, b)) in rect.iter().enumerate() {
            let e = &self.edges[h];
            let degenerate = e.len() == 1;
            if b < e[0] || a > *e.last().unwrap() || a > b {
                return 0.0;
            }
            let mut sum = 0.0f64;
            if degenerate {
                sum = self.env[h][0];
            } else {
                for (k, env) in self.env[h].iter().enumerate() {
                    // Bin k spans [e[k], e[k+1]]; it is touched when the
                    // closed intervals intersect.
                    if e[k + 1] >= a && e[k] <= b {
                        sum += env;
                    }
                }
            }
            // All-positive summation keeps the relative error tiny; the
            // nudge makes the bound safe against it. Clamping to 1 stays
            // sound because a sample fraction never exceeds 1.
            let bound = (sum * (1.0 + 1e-12)).min(1.0);
            if bound < best {
                best = bound;
            }
        }
        best
    }
}

/// Per-axis sorted coordinates of one dataset's weight sample, or `None`
/// when a `NaN` coordinate was seen (interval reasoning over the sample
/// would then be unsound, so the build disables the synopsis).
pub(crate) fn sorted_sample_axes(dim: usize, sample: &[Point]) -> Option<Vec<Vec<f64>>> {
    let mut axes = vec![Vec::with_capacity(sample.len()); dim];
    for p in sample {
        for (h, axis) in axes.iter_mut().enumerate() {
            let x = p[h];
            if x.is_nan() {
                return None;
            }
            axis.push(x);
        }
    }
    for axis in &mut axes {
        axis.sort_unstable_by(f64::total_cmp);
    }
    Some(axes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;

    fn axes_of(xs: &[f64]) -> Option<Vec<Vec<f64>>> {
        sorted_sample_axes(1, &xs.iter().map(|&x| Point::one(x)).collect::<Vec<_>>())
    }

    #[test]
    fn bound_dominates_every_single_dataset_mass() {
        // Two 1-d datasets with different concentrations.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 40.0 + i as f64 * 0.2).collect();
        let samples = vec![axes_of(&a), axes_of(&b)];
        let syn = RoutingSynopsis::from_sorted_samples(1, &samples).unwrap();
        for (lo, hi) in [(0.0, 10.0), (40.0, 50.0), (42.0, 43.5), (-5.0, 200.0)] {
            let truth = |xs: &[f64]| {
                xs.iter().filter(|&&x| x >= lo && x <= hi).count() as f64 / xs.len() as f64
            };
            let worst = truth(&a).max(truth(&b));
            let bound = syn.mass_bound(&[(lo, hi)]);
            assert!(
                bound >= worst,
                "bound {bound} must dominate true worst mass {worst} on [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn disjoint_interval_bounds_zero() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let syn = RoutingSynopsis::from_sorted_samples(1, &[axes_of(&a)]).unwrap();
        assert_eq!(syn.mass_bound(&[(50.0, 60.0)]), 0.0);
        assert_eq!(syn.mass_bound(&[(-10.0, -1.0)]), 0.0);
        // Touching the range endpoint is not disjoint.
        assert!(syn.mass_bound(&[(19.0, 60.0)]) > 0.0);
    }

    #[test]
    fn min_over_axes_not_product() {
        // Perfectly correlated 2-d data: the product-of-axes "bound"
        // would understate the diagonal rectangle's true mass.
        let pts: Vec<Point> = (0..10).map(|i| Point::two(i as f64, i as f64)).collect();
        let samples = vec![sorted_sample_axes(2, &pts)];
        let syn = RoutingSynopsis::from_sorted_samples(2, &samples).unwrap();
        // True mass of [0, 4.5]² is 0.5 (points 0..=4).
        let bound = syn.mass_bound(&[(0.0, 4.5), (0.0, 4.5)]);
        assert!(bound >= 0.5, "min-over-axes bound {bound} must cover 0.5");
    }

    #[test]
    fn nan_disables_the_synopsis() {
        assert!(axes_of(&[1.0, f64::NAN]).is_none());
        let samples = vec![axes_of(&[1.0, 2.0]), None];
        assert!(RoutingSynopsis::from_sorted_samples(1, &samples).is_none());
    }

    #[test]
    fn all_equal_values_make_a_degenerate_bin() {
        let syn = RoutingSynopsis::from_sorted_samples(1, &[axes_of(&[5.0, 5.0, 5.0])]).unwrap();
        assert_eq!(syn.bins(0), 1);
        assert_eq!(syn.mass_bound(&[(4.0, 6.0)]), 1.0);
        assert_eq!(syn.mass_bound(&[(6.0, 7.0)]), 0.0);
    }

    #[test]
    fn empty_samples_contribute_zero_mass() {
        let samples = vec![axes_of(&[1.0, 2.0, 3.0]), Some(vec![Vec::new()])];
        let syn = RoutingSynopsis::from_sorted_samples(1, &samples).unwrap();
        assert!(syn.mass_bound(&[(1.0, 3.0)]) >= 1.0 - 1e-9);
    }
}
