//! Exact CPtile in `R¹` for a θ fixed at build time — Appendix C.1,
//! Theorem C.5.
//!
//! Every point `p_j` of a sorted dataset is lifted to
//! `(q_j, r_j, p_j, s_j) ∈ R^4`, where `s_j` is the successor point and
//! `q_j` / `r_j` are the points `cb` and `ca − 1` positions to the left
//! (`ca = ⌈a_θ·n_i⌉`, `cb = ⌊b_θ·n_i⌋`). For a query interval
//! `R = [R⁻, R⁺]` the orthant
//! `q < R⁻ ∧ r ≥ R⁻ ∧ p ≤ R⁺ ∧ s > R⁺` matches **at most one lifted point
//! per dataset** — the one whose `p_j` is the largest point `≤ R⁺` — and it
//! matches iff `a_θ·n_i ≤ |P_i ∩ R| ≤ b_θ·n_i` exactly (Lemmas C.1/C.2).
//! Because matches are unique, a plain `report` is duplicate-free and
//! output-sensitive, and the structure needs no deletions.
//!
//! Sentinels: when `ca = 0`, a dataset with **no** point in `R` also
//! qualifies, represented by a `j = 0` lifted point
//! `(−∞, +∞, −∞, p_1)`.

use crate::framework::{Interval, Repository};
use dds_rangetree::{BuildableIndex, KdTree, OrthoIndex, Region};

/// Exact 1-d percentile index with fixed θ (Theorem C.5).
///
/// ```
/// use dds_core::framework::{Dataset, Interval, Repository};
/// use dds_core::ptile::ExactCPtile1D;
///
/// let repo = Repository::new(vec![
///     Dataset::from_rows("a", vec![vec![1.0], vec![7.0], vec![9.0]]),
///     Dataset::from_rows("b", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
/// ]);
/// // theta fixed at build time; queries are exact, no approximation band.
/// let index = ExactCPtile1D::build(&repo, Interval::new(0.2, 0.4));
/// assert_eq!(index.query(3.0, 8.0), vec![0]); // 1/3 in band, 1/2 not
/// ```
#[derive(Clone, Debug)]
pub struct ExactCPtile1D {
    theta: Interval,
    tree: KdTree,
    owner: Vec<u32>,
    n_datasets: usize,
}

impl ExactCPtile1D {
    /// Builds the structure over a 1-dimensional repository.
    ///
    /// # Panics
    /// Panics if the repository is not 1-dimensional or θ ⊄ [0, 1].
    pub fn build(repo: &Repository, theta: Interval) -> Self {
        assert_eq!(repo.dim(), 1, "the exact structure is for R^1");
        assert!(
            (0.0..=1.0).contains(&theta.lo) && theta.hi >= theta.lo,
            "theta must satisfy 0 <= a <= b"
        );
        let b_hi = theta.hi.min(1.0);
        let mut lifted: Vec<Vec<f64>> = Vec::new();
        let mut owner: Vec<u32> = Vec::new();
        for (i, ds) in repo.datasets().iter().enumerate() {
            let mut xs: Vec<f64> = ds.points().iter().map(|p| p[0]).collect();
            xs.sort_unstable_by(|a, b| a.total_cmp(b));
            let n = xs.len();
            // Integer count bounds: a·n ≤ |P ∩ R| ⟺ |P ∩ R| ≥ ⌈a·n⌉ and
            // |P ∩ R| ≤ b·n ⟺ |P ∩ R| ≤ ⌊b·n⌋ (with float-safety nudges).
            let ca = ((theta.lo * n as f64) - 1e-9).ceil().max(0.0) as usize;
            let cb = ((b_hi * n as f64) + 1e-9).floor() as usize;
            if ca > n || ca > cb {
                // ca > n can never be met; ca > cb means no integer count
                // lies in [a·n, b·n] — the dataset can never qualify.
                continue;
            }
            if ca == 0 {
                // Sentinel for "no point ≤ R⁺" (count 0 qualifies).
                let s0 = xs[0];
                lifted.push(vec![
                    f64::NEG_INFINITY,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    s0,
                ]);
                owner.push(i as u32);
            }
            for j in 1..=n {
                // One-based index j over sorted points.
                let p = xs[j - 1];
                let s = if j < n { xs[j] } else { f64::INFINITY };
                // r encodes "at least ca points in [R⁻, p_j]":
                // p_{j-ca+1} ≥ R⁻. If fewer than ca points exist, never.
                let r = if ca == 0 {
                    f64::INFINITY
                } else if j >= ca {
                    xs[j - ca]
                } else {
                    f64::NEG_INFINITY
                };
                // q encodes "at most cb points in [R⁻, p_j]":
                // p_{j-cb} < R⁻. If j ≤ cb, always.
                let q = if j > cb {
                    xs[j - cb - 1]
                } else {
                    f64::NEG_INFINITY
                };
                lifted.push(vec![q, r, p, s]);
                owner.push(i as u32);
            }
        }
        ExactCPtile1D {
            theta,
            tree: KdTree::build(4, lifted),
            owner,
            n_datasets: repo.len(),
        }
    }

    /// The fixed interval θ.
    pub fn theta(&self) -> Interval {
        self.theta
    }

    /// Number of indexed datasets.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// Number of lifted points (`𝒩` plus sentinels).
    pub fn lifted_points(&self) -> usize {
        self.owner.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes() + self.owner.len() * 4
    }

    /// Exact `q_Π(P)` for `Π = Pred_{M_[lo,hi]}, θ` — every returned index
    /// satisfies the predicate exactly, none is missed (Lemma C.2).
    ///
    /// # Panics
    /// Panics on non-finite query bounds (lift sentinels use ±∞).
    pub fn query(&self, lo: f64, hi: f64) -> Vec<usize> {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "query bounds must be finite"
        );
        assert!(lo <= hi, "invalid query interval");
        let region = Region::all(4)
            .with_hi(0, lo, true) // q < R⁻
            .with_lo(1, lo, false) // r ≥ R⁻
            .with_hi(2, hi, false) // p ≤ R⁺
            .with_lo(3, hi, true); // s > R⁺
        let mut ids = Vec::new();
        self.tree.report(&region, &mut ids);
        ids.into_iter().map(|id| self.owner[id] as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Dataset;

    fn repo() -> Repository {
        Repository::new(vec![
            Dataset::from_rows("a", vec![vec![1.0], vec![7.0], vec![9.0]]),
            Dataset::from_rows("b", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
            Dataset::from_rows("c", vec![vec![100.0], vec![200.0]]),
        ])
    }

    fn brute(repo: &Repository, theta: Interval, lo: f64, hi: f64) -> Vec<usize> {
        repo.point_sets()
            .enumerate()
            .filter(|(_, pts)| {
                let cnt = pts.iter().filter(|p| lo <= p[0] && p[0] <= hi).count();
                theta.contains(cnt as f64 / pts.len() as f64)
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn matches_bruteforce_on_running_example() {
        let repo = repo();
        for (a, b) in [(0.2, 1.0), (0.2, 0.4), (0.0, 0.5), (0.5, 1.0), (0.0, 0.0)] {
            let theta = Interval::new(a, b);
            let idx = ExactCPtile1D::build(&repo, theta);
            for (lo, hi) in [
                (3.0, 8.0),
                (0.0, 20.0),
                (2.5, 3.5),
                (1.0, 1.0),
                (9.0, 100.0),
                (150.0, 300.0),
            ] {
                let mut got = idx.query(lo, hi);
                got.sort_unstable();
                let want = brute(&repo, theta, lo, hi);
                assert_eq!(got, want, "theta=[{a},{b}] R=[{lo},{hi}]");
            }
        }
    }

    #[test]
    fn no_duplicates_reported() {
        let repo = repo();
        let idx = ExactCPtile1D::build(&repo, Interval::new(0.0, 1.0));
        let got = idx.query(-1000.0, 1000.0);
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(got.len(), dedup.len());
        assert_eq!(dedup.len(), 3, "theta [0,1] matches everything");
    }

    #[test]
    fn boundary_ties_are_exact() {
        // Query bounds exactly on data points.
        let repo = repo();
        let theta = Interval::new(0.5, 1.0);
        let idx = ExactCPtile1D::build(&repo, theta);
        let mut got = idx.query(4.0, 10.0);
        got.sort_unstable();
        assert_eq!(got, brute(&repo, theta, 4.0, 10.0));
    }

    #[test]
    fn duplicate_coordinates_in_dataset() {
        let repo = Repository::new(vec![Dataset::from_rows(
            "dups",
            vec![vec![5.0], vec![5.0], vec![5.0], vec![8.0]],
        )]);
        for (a, b) in [(0.5, 1.0), (0.75, 1.0), (0.0, 0.5)] {
            let theta = Interval::new(a, b);
            let idx = ExactCPtile1D::build(&repo, theta);
            for (lo, hi) in [(5.0, 5.0), (4.0, 6.0), (6.0, 9.0), (0.0, 4.0)] {
                let mut got = idx.query(lo, hi);
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute(&repo, theta, lo, hi),
                    "θ=[{a},{b}] R=[{lo},{hi}]"
                );
            }
        }
    }
}
