//! Dynamic Ptile index: synopsis insertion and deletion — Remark 1 after
//! Theorem 4.11.
//!
//! The range structure of Algorithm 3 is decomposable, so the classic
//! logarithmic method applies: lifted points live in Bentley–Saxe buckets
//! (`dds_rangetree::LogStructured`), synopsis insertion adds one batch of
//! lifted points, deletion tombstones them (physically dropped at the next
//! merge). Queries are Algorithm 4 over the bucket set, including the
//! zero-mass auxiliary structures. Datasets are identified by stable
//! `u64` handles issued at insertion.

use super::coreset::{build_coreset, rect_weights};
use super::PtileBuildParams;
use crate::framework::Interval;
use crate::pool::{mix_seed, par_map, BuildOptions};
use dds_geom::Rect;
use dds_rangetree::{GlobalId, KdTree, LogStructured, Region};
use dds_synopsis::PercentileSynopsis;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Stable handle of an inserted synopsis.
pub type SynopsisHandle = u64;

/// Dynamic percentile-range index over an evolving set of synopses.
///
/// ```
/// use dds_core::framework::Interval;
/// use dds_core::ptile::{DynamicPtileIndex, PtileBuildParams};
/// use dds_geom::{Point, Rect};
/// use dds_synopsis::ExactSynopsis;
///
/// let mut index = DynamicPtileIndex::new(1, PtileBuildParams::exact_centralized());
/// let a = index.insert_synopsis(&ExactSynopsis::new(vec![
///     Point::one(1.0), Point::one(7.0), Point::one(9.0),
/// ]));
/// let _b = index.insert_synopsis(&ExactSynopsis::new(vec![
///     Point::one(2.0), Point::one(4.0), Point::one(6.0), Point::one(10.0),
/// ]));
/// let hits = index.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4));
/// assert_eq!(hits, vec![a]);
/// index.remove_synopsis(a);
/// assert!(index.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4)).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct DynamicPtileIndex {
    dim: usize,
    params: PtileBuildParams,
    /// Lifted pair points in `R^{4d+2}` (`w±` budgets pre-folded).
    main: LogStructured<KdTree>,
    /// Per dimension: empty-slab triples `(c_j, c_{j+1}, ε_i + δ_i)`.
    aux: Vec<LogStructured<KdTree>>,
    owner_main: HashMap<GlobalId, SynopsisHandle>,
    groups_main: HashMap<SynopsisHandle, Vec<GlobalId>>,
    owner_aux: Vec<HashMap<GlobalId, SynopsisHandle>>,
    groups_aux: Vec<HashMap<SynopsisHandle, Vec<GlobalId>>>,
    /// Worst sampling error among synopses ever inserted (monotone, so
    /// guarantees quoted to callers never weaken retroactively).
    eps_max: f64,
    next_handle: SynopsisHandle,
    n_alive: usize,
}

/// One synopsis' insertion payload: the lifted pair points, the empty-slab
/// triples per dimension and the achieved sampling error. A pure function
/// of `(handle, budget_n, synopsis, params)` — per-handle RNG streams via
/// [`mix_seed`]`(seed, handle)` — so batches can be computed on worker
/// threads in any order and applied in handle order, bit-identical to
/// serial one-at-a-time insertion.
struct DynPart {
    batch: Vec<Vec<f64>>,
    slabs: Vec<Vec<Vec<f64>>>,
    eps_i: f64,
}

impl DynamicPtileIndex {
    /// Creates an empty dynamic index for `dim`-dimensional datasets.
    pub fn new(dim: usize, params: PtileBuildParams) -> Self {
        assert!(dim >= 1);
        DynamicPtileIndex {
            dim,
            main: LogStructured::new(4 * dim + 2),
            aux: (0..dim).map(|_| LogStructured::new(3)).collect(),
            owner_main: HashMap::new(),
            groups_main: HashMap::new(),
            owner_aux: vec![HashMap::new(); dim],
            groups_aux: vec![HashMap::new(); dim],
            eps_max: 0.0,
            next_handle: 0,
            n_alive: 0,
            params,
        }
    }

    /// Number of currently indexed synopses.
    pub fn len(&self) -> usize {
        self.n_alive
    }

    /// True if no synopsis is indexed.
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    /// Achieved sampling error ε (monotone maximum over insertions).
    pub fn eps(&self) -> f64 {
        self.eps_max
    }

    /// Query margin `ε + δ`.
    pub fn margin(&self) -> f64 {
        self.eps_max + self.params.delta
    }

    /// Guarantee band `2(ε + δ)` (as in the static range index).
    pub fn slack(&self) -> f64 {
        2.0 * self.margin()
    }

    /// Inserts a synopsis; `Õ(1)` amortized per lifted point. The sampling
    /// budget is split as if the repository held `max(N, 16)` datasets.
    ///
    /// Sampling draws from a per-handle RNG stream
    /// ([`mix_seed`]`(params.seed, handle)`), not a shared sequential
    /// generator, so an insertion's content depends only on `(handle, N)` —
    /// the property that lets [`insert_batch`](Self::insert_batch) compute
    /// payloads on worker threads and stay bit-identical to serial inserts.
    pub fn insert_synopsis<S: PercentileSynopsis>(&mut self, synopsis: &S) -> SynopsisHandle {
        let handle = self.next_handle;
        let budget_n = (self.n_alive + 1).max(16);
        let part = Self::dataset_part(&self.params, self.dim, handle, budget_n, synopsis);
        self.apply_part(part)
    }

    /// Bulk insertion on the worker pool: the per-synopsis payloads
    /// (coreset sampling, canonical-rectangle pair enumeration, empty
    /// slabs) are computed on `opts.threads` scoped threads and applied in
    /// handle order. The resulting structure — handles, bucket contents,
    /// query answers, quoted `eps()` — is **bit-identical** to calling
    /// [`insert_synopsis`](Self::insert_synopsis) once per synopsis in
    /// order, for every thread count.
    pub fn insert_batch<S: PercentileSynopsis + Sync>(
        &mut self,
        synopses: &[S],
        opts: &BuildOptions,
    ) -> Vec<SynopsisHandle> {
        let base_handle = self.next_handle;
        let base_alive = self.n_alive;
        let params = &self.params;
        let dim = self.dim;
        let parts = par_map(opts, synopses, |j, syn| {
            // The j-th unit sees the budget the serial loop would have used
            // at its turn: N grows by one per preceding insertion.
            let budget_n = (base_alive + j + 1).max(16);
            Self::dataset_part(params, dim, base_handle + j as u64, budget_n, syn)
        });
        parts.into_iter().map(|p| self.apply_part(p)).collect()
    }

    /// One synopsis' insertion payload (pure; runs on any worker thread).
    fn dataset_part<S: PercentileSynopsis>(
        params: &PtileBuildParams,
        dim: usize,
        handle: SynopsisHandle,
        budget_n: usize,
        synopsis: &S,
    ) -> DynPart {
        assert_eq!(synopsis.dim(), dim, "synopsis dimension mismatch");
        let mut rng = StdRng::seed_from_u64(mix_seed(params.seed, handle));
        let cs = build_coreset(synopsis, params, budget_n, &mut rng);
        let eps_i = super::params::effective_eps(cs.eps_i, params.eps_override);
        let c_i = eps_i + params.delta;
        let rects = cs.grid.enumerate_rects();
        let weights = rect_weights(&cs.sample, &rects);
        let mut batch: Vec<Vec<f64>> = Vec::with_capacity(rects.len());
        for (rect, w) in rects.iter().zip(weights) {
            let hat = cs.grid.one_step_expansion(rect);
            let mut coords = Vec::with_capacity(4 * dim + 2);
            coords.extend_from_slice(rect.lo());
            coords.extend_from_slice(hat.lo());
            coords.extend_from_slice(rect.hi());
            coords.extend_from_slice(hat.hi());
            coords.push(w + c_i);
            coords.push(w - c_i);
            batch.push(coords);
        }
        let slabs = (0..dim)
            .map(|h| {
                cs.grid
                    .empty_slabs(h)
                    .into_iter()
                    .map(|(lo, hi)| vec![lo, hi, c_i])
                    .collect()
            })
            .collect();
        DynPart {
            batch,
            slabs,
            eps_i,
        }
    }

    /// Applies one payload to the log-structured buckets (serial, in handle
    /// order — this is where the structure actually mutates).
    fn apply_part(&mut self, part: DynPart) -> SynopsisHandle {
        let handle = self.next_handle;
        self.next_handle += 1;
        self.eps_max = self.eps_max.max(part.eps_i);
        let gids = self.main.insert_batch(part.batch);
        for &g in &gids {
            self.owner_main.insert(g, handle);
        }
        self.groups_main.insert(handle, gids);
        for (h, slabs) in part.slabs.into_iter().enumerate() {
            let gids = self.aux[h].insert_batch(slabs);
            for &g in &gids {
                self.owner_aux[h].insert(g, handle);
            }
            self.groups_aux[h].insert(handle, gids);
        }
        self.n_alive += 1;
        handle
    }

    /// Removes a synopsis. Returns `false` for unknown handles.
    pub fn remove_synopsis(&mut self, handle: SynopsisHandle) -> bool {
        let Some(gids) = self.groups_main.remove(&handle) else {
            return false;
        };
        for g in gids {
            self.main.delete(g);
            self.owner_main.remove(&g);
        }
        for h in 0..self.dim {
            if let Some(gids) = self.groups_aux[h].remove(&handle) {
                for g in gids {
                    self.aux[h].delete(g);
                    self.owner_aux[h].remove(&g);
                }
            }
        }
        self.n_alive -= 1;
        true
    }

    /// Answers `Π = Pred_{M_R, θ}` over the live synopses; same guarantees
    /// as the static range index. Read-only (`&self`): concurrent queries
    /// may run against one index between mutations.
    pub fn query(&self, r: &Rect, theta: Interval) -> Vec<SynopsisHandle> {
        assert_eq!(r.dim(), self.dim, "query rectangle dimension mismatch");
        let d = self.dim;
        let mut region = Region::all(4 * d + 2);
        for h in 0..d {
            region = region.with_lo(h, r.lo_at(h), false);
            region = region.with_hi(d + h, r.lo_at(h), true);
            region = region.with_hi(2 * d + h, r.hi_at(h), false);
            region = region.with_lo(3 * d + h, r.hi_at(h), true);
        }
        region = region
            .with_lo(4 * d, theta.lo, false)
            .with_hi(4 * d + 1, theta.hi, false);

        let mut out = Vec::new();
        let mut reported: std::collections::HashSet<SynopsisHandle> =
            std::collections::HashSet::new();
        let owner_main = &self.owner_main;
        self.main.report_while(&region, &mut |g| {
            let handle = owner_main[&g];
            if reported.insert(handle) {
                out.push(handle);
            }
            true
        });
        if theta.lo <= self.margin() {
            let mut seen = reported;
            for h in 0..d {
                let slab_region = Region::all(3)
                    .with_hi(0, r.lo_at(h), true)
                    .with_lo(1, r.hi_at(h), true)
                    .with_lo(2, theta.lo, false);
                let mut hits = Vec::new();
                self.aux[h].report(&slab_region, &mut hits);
                for g in hits {
                    let handle = self.owner_aux[h][&g];
                    if seen.insert(handle) {
                        out.push(handle);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    fn syn(xs: &[f64]) -> ExactSynopsis {
        ExactSynopsis::new(xs.iter().map(|&x| Point::one(x)).collect())
    }

    #[test]
    fn insert_query_remove_cycle() {
        let mut idx = DynamicPtileIndex::new(1, PtileBuildParams::exact_centralized());
        let h1 = idx.insert_synopsis(&syn(&[1.0, 7.0, 9.0]));
        let h2 = idx.insert_synopsis(&syn(&[2.0, 4.0, 6.0, 10.0]));
        assert_eq!(idx.eps(), 0.0);
        // Running example: θ = [0.2, 0.4] over R = [3, 8] → only h1.
        let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4));
        assert_eq!(hits, vec![h1]);
        // Remove h1: nothing left in the band.
        assert!(idx.remove_synopsis(h1));
        assert!(!idx.remove_synopsis(h1));
        let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4));
        assert!(hits.is_empty());
        // h2 still answers a wider band.
        let hits = idx.query(&Rect::interval(3.0, 8.0), Interval::new(0.4, 0.6));
        assert_eq!(hits, vec![h2]);
    }

    #[test]
    fn many_inserts_trigger_merges_and_stay_correct() {
        let mut idx = DynamicPtileIndex::new(1, PtileBuildParams::exact_centralized());
        let mut handles = Vec::new();
        // Dataset i concentrates at [i, i+0.5] (mass 1 inside its slot).
        for i in 0..40 {
            let base = 10.0 * i as f64;
            handles.push(idx.insert_synopsis(&syn(&[base, base + 0.2, base + 0.4])));
        }
        for i in (0..40).step_by(7) {
            let base = 10.0 * i as f64;
            let hits = idx.query(
                &Rect::interval(base - 1.0, base + 1.0),
                Interval::new(0.9, 1.0),
            );
            assert_eq!(hits, vec![handles[i]], "query around dataset {i}");
        }
        // Remove half, re-check.
        for i in (0..40).step_by(2) {
            assert!(idx.remove_synopsis(handles[i]));
        }
        assert_eq!(idx.len(), 20);
        let hits = idx.query(&Rect::interval(-1.0, 1.0), Interval::new(0.9, 1.0));
        assert!(hits.is_empty(), "removed dataset must not report");
        let hits = idx.query(&Rect::interval(9.0, 11.0), Interval::new(0.9, 1.0));
        assert_eq!(hits, vec![handles[1]]);
    }

    #[test]
    fn zero_band_aux_path_is_dynamic_too() {
        let mut idx = DynamicPtileIndex::new(1, PtileBuildParams::exact_centralized());
        let h1 = idx.insert_synopsis(&syn(&[1.0, 9.0]));
        let h2 = idx.insert_synopsis(&syn(&[4.0, 5.0]));
        // R = [3, 6] has no mass from h1, full mass from h2.
        let mut hits = idx.query(&Rect::interval(3.0, 6.0), Interval::new(0.0, 0.2));
        hits.sort_unstable();
        assert_eq!(hits, vec![h1]);
        assert!(idx.remove_synopsis(h1));
        assert!(idx
            .query(&Rect::interval(3.0, 6.0), Interval::new(0.0, 0.2))
            .is_empty());
        let _ = h2;
    }
}
