//! Ptile with logical expressions over `m` predicates — Appendix C.4,
//! Theorem C.8.
//!
//! Conjunctions: every dataset contributes one lifted point per `m`-tuple of
//! canonical-rectangle pairs, in `R^{4md+m}` (the last `m` coordinates are
//! the per-slot weights); the query is the product of the per-predicate
//! orthants of Algorithm 4 plus the `m`-dimensional weight box. Disjunctions
//! are unions over DNF clauses with de-duplication, as the appendix notes.
//!
//! Clauses with fewer than `m` predicates are padded by repeating the first
//! predicate with the trivial interval `[0, 1]`. Queries where some
//! predicate's widened lower bound reaches 0 fall back to intersecting the
//! single-predicate range-index answers (still a correct superset with the
//! same per-predicate bands — the lifted structure cannot represent the
//! "no rectangle inside R" corner case across slots).

use super::coreset::{build_coreset, rect_weights};
use super::{PtileBuildParams, PtileRangeIndex};
use crate::bitset::BitSet;
use crate::framework::{Interval, LogicalExpr, MeasureFunction, Predicate};
use crate::pool::{par_map, par_map_with, BuildOptions};
use crate::scratch::QueryScratch;
use dds_geom::Rect;
use dds_rangetree::{KdTree, OrthoIndex, Region};
use dds_synopsis::PercentileSynopsis;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-dataset build output: the lifted `m`-tuples and the achieved budget.
struct TuplePart {
    lifted: Vec<Vec<f64>>,
    eps_i: f64,
    c_i: f64,
}

/// Errors answering logical expressions with the multi-predicate structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiQueryError {
    /// A DNF clause holds more predicates than the structure's arity `m`.
    TooManyPredicates {
        /// Predicates in the offending clause.
        got: usize,
        /// Structure arity.
        max: usize,
    },
    /// The expression contains a non-percentile predicate.
    NonPercentile,
}

impl std::fmt::Display for MultiQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiQueryError::TooManyPredicates { got, max } => {
                write!(f, "clause has {got} predicates, structure supports {max}")
            }
            MultiQueryError::NonPercentile => {
                write!(f, "expression contains a non-percentile predicate")
            }
        }
    }
}

impl std::error::Error for MultiQueryError {}

/// Approximate Ptile index for conjunctions (and DNF expressions) of up to
/// `m` range predicates (Theorem C.8).
#[derive(Clone, Debug)]
pub struct PtileMultiIndex {
    dim: usize,
    m: usize,
    n_datasets: usize,
    eps_max: f64,
    delta: f64,
    /// `max_i (ε_i + δ_i)` over the tuple structure's coresets.
    max_combined: f64,
    /// Lifted tuples in `R^{4md+2m}` (per-slot weights `w±`).
    tree: KdTree,
    owner: Vec<u32>,
    /// Single-predicate fallback for degenerate bands.
    fallback: PtileRangeIndex,
}

impl PtileMultiIndex {
    /// Builds the structure for conjunctions of up to `m` predicates.
    ///
    /// The per-dataset rectangle budget is re-split as `budget^(1/m)` so the
    /// `|R_i|^m` tuple blow-up stays within `params.max_rects_per_dataset`.
    ///
    /// # Panics
    /// Panics if `synopses` is empty or `m == 0`.
    pub fn build<S: PercentileSynopsis>(
        synopses: &[S],
        m: usize,
        params: PtileBuildParams,
    ) -> Self {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        assert!(m >= 1, "need at least one predicate slot");
        let inner = Self::per_slot_params(&params, m);
        let n = synopses.len();
        let parts: Vec<TuplePart> = synopses
            .iter()
            .enumerate()
            .map(|(i, syn)| Self::dataset_part(i, syn, m, &params, &inner, n))
            .collect();
        let fallback = PtileRangeIndex::build(synopses, params.clone());
        Self::from_parts(synopses[0].dim(), m, params.delta, parts, fallback, 1)
    }

    /// Worker-pool variant of [`build`](Self::build): datasets × canonical
    /// rectangle tuples are enumerated on `opts.threads` scoped threads.
    /// Bit-identical results for every thread count.
    ///
    /// # Panics
    /// Panics if `synopses` is empty or `m == 0`.
    pub fn build_opts<S: PercentileSynopsis + Sync>(
        synopses: &[S],
        m: usize,
        params: PtileBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        assert!(m >= 1, "need at least one predicate slot");
        let inner = Self::per_slot_params(&params, m);
        let n = synopses.len();
        let params_ref = &params;
        let inner_ref = &inner;
        let parts = par_map(opts, synopses, |i, syn| {
            Self::dataset_part(i, syn, m, params_ref, inner_ref, n)
        });
        let fallback = PtileRangeIndex::build_opts(synopses, params.clone(), opts);
        Self::from_parts(
            synopses[0].dim(),
            m,
            params.delta,
            parts,
            fallback,
            opts.threads,
        )
    }

    /// The per-dataset rectangle budget re-split as `budget^(1/m)` so the
    /// `|R_i|^m` tuple blow-up stays within `params.max_rects_per_dataset`.
    fn per_slot_params(params: &PtileBuildParams, m: usize) -> PtileBuildParams {
        let tuple_budget = params.max_rects_per_dataset.max(1);
        let per_slot_budget = (tuple_budget as f64).powf(1.0 / m as f64).floor().max(1.0) as usize;
        PtileBuildParams {
            max_rects_per_dataset: per_slot_budget,
            ..params.clone()
        }
    }

    /// One dataset's tuple enumeration (Theorem C.8 preprocessing); pure
    /// function of `(i, synopsis, params)` with a per-dataset RNG stream.
    fn dataset_part<S: PercentileSynopsis>(
        i: usize,
        syn: &S,
        m: usize,
        params: &PtileBuildParams,
        inner: &PtileBuildParams,
        n: usize,
    ) -> TuplePart {
        let dim = syn.dim();
        let mut rng = StdRng::seed_from_u64(params.dataset_seed(i));
        let cs = build_coreset(syn, inner, n, &mut rng);
        let eps_i = super::params::effective_eps(cs.eps_i, params.eps_override);
        let c_i = eps_i + params.delta;
        let rects = cs.grid.enumerate_rects();
        let weights = rect_weights(&cs.sample, &rects);
        // Per-slot building block: (ρ⁻, ρ̂⁻, ρ⁺, ρ̂⁺).
        let blocks: Vec<(Vec<f64>, f64)> = rects
            .iter()
            .zip(&weights)
            .map(|(rect, &w)| {
                let hat = cs.grid.one_step_expansion(rect);
                let mut b = Vec::with_capacity(4 * dim);
                b.extend_from_slice(rect.lo());
                b.extend_from_slice(hat.lo());
                b.extend_from_slice(rect.hi());
                b.extend_from_slice(hat.hi());
                (b, w)
            })
            .collect();
        // Odometer over m slots.
        let mut lifted = Vec::with_capacity(blocks.len().pow(m as u32));
        let mut idx = vec![0usize; m];
        loop {
            let mut coords = Vec::with_capacity(4 * m * dim + 2 * m);
            for &s in &idx {
                coords.extend_from_slice(&blocks[s].0);
            }
            for &s in &idx {
                coords.push(blocks[s].1 + c_i);
                coords.push(blocks[s].1 - c_i);
            }
            lifted.push(coords);
            let mut slot = 0;
            loop {
                if slot == m {
                    break;
                }
                idx[slot] += 1;
                if idx[slot] < blocks.len() {
                    break;
                }
                idx[slot] = 0;
                slot += 1;
            }
            if slot == m {
                break;
            }
        }
        TuplePart { lifted, eps_i, c_i }
    }

    /// Deterministic dataset-order merge of the tuple parts.
    fn from_parts(
        dim: usize,
        m: usize,
        delta: f64,
        parts: Vec<TuplePart>,
        fallback: PtileRangeIndex,
        threads: usize,
    ) -> Self {
        let n = parts.len();
        let mut lifted: Vec<Vec<f64>> = Vec::new();
        let mut owner: Vec<u32> = Vec::new();
        let mut eps_max: f64 = 0.0;
        let mut max_combined: f64 = 0.0;
        for (i, mut part) in parts.into_iter().enumerate() {
            eps_max = eps_max.max(part.eps_i);
            max_combined = max_combined.max(part.c_i);
            owner.extend(std::iter::repeat_n(i as u32, part.lifted.len()));
            lifted.append(&mut part.lifted);
        }
        let tree = KdTree::build_par(4 * m * dim + 2 * m, lifted, threads);
        PtileMultiIndex {
            dim,
            m,
            n_datasets: n,
            eps_max,
            delta,
            max_combined,
            tree,
            owner,
            fallback,
        }
    }

    /// Predicate arity `m`.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// Number of indexed datasets.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// Achieved sampling error of the tuple structure (the fallback index
    /// typically achieves a smaller ε; guarantees quote the worse one).
    pub fn eps(&self) -> f64 {
        self.eps_max.max(self.fallback.eps())
    }

    /// Synopsis error bound δ used at build time.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Worst-case query margin `max_i (ε_i + δ_i)` across the tuple
    /// structure and the fallback.
    pub fn margin(&self) -> f64 {
        self.max_combined.max(self.fallback.margin())
    }

    /// Guarantee band per predicate: `a_ℓ − slack ≤ M_{R_ℓ} ≤ b_ℓ + slack`.
    pub fn slack(&self) -> f64 {
        2.0 * self.margin()
    }

    /// Number of lifted tuple points.
    pub fn lifted_points(&self) -> usize {
        self.owner.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes() + self.owner.len() * 4 + self.fallback.memory_bytes()
    }

    /// Answers a conjunction of up to `m` percentile range predicates.
    ///
    /// Read-only: the index can be shared (`&self`, e.g. behind an `Arc`)
    /// across query threads. Allocates a fresh [`QueryScratch`] per call;
    /// query loops should prefer [`query_with`](Self::query_with).
    ///
    /// # Panics
    /// Panics if `preds` is empty or longer than `m`.
    pub fn query(&self, preds: &[(Rect, Interval)]) -> Vec<usize> {
        self.query_with(preds, &mut QueryScratch::new())
    }

    /// [`query`](Self::query) with caller-provided scratch: identical
    /// answers, no per-query buffer allocations on the tuple path.
    ///
    /// # Panics
    /// Panics if `preds` is empty or longer than `m`.
    pub fn query_with(&self, preds: &[(Rect, Interval)], scratch: &mut QueryScratch) -> Vec<usize> {
        assert!(
            !preds.is_empty() && preds.len() <= self.m,
            "conjunction arity must be in 1..={}",
            self.m
        );
        // Degenerate bands (a_θ within some dataset's budget) cannot be
        // decided by the tuple structure: it has no zero-mass auxiliary.
        if preds.iter().any(|(_, t)| t.lo <= self.max_combined) {
            return self.query_by_intersection(preds, scratch);
        }
        scratch.reset_reported(self.n_datasets);
        let QueryScratch {
            reported, region, ..
        } = scratch;
        self.orthant_into(preds, region);
        let mut out = Vec::new();
        let owner = &self.owner;
        self.tree.report_while(region, &mut |q| {
            let j = owner[q] as usize;
            if reported.insert(j) {
                out.push(j);
            }
            true
        });
        out
    }

    /// Fallback: intersect single-predicate answers (correct superset with
    /// the same per-predicate bands; used when a widened band reaches 0).
    /// The clause accumulator is a packed bitset — word-wise AND per
    /// predicate instead of a byte-wise `Vec<bool>` zip.
    fn query_by_intersection(
        &self,
        preds: &[(Rect, Interval)],
        scratch: &mut QueryScratch,
    ) -> Vec<usize> {
        let mut acc: Option<BitSet> = None;
        for (r, theta) in preds {
            let mut mask = BitSet::new(self.n_datasets);
            // The fallback query borrows the scratch; collect its hits into
            // a local mask (the mask itself is per-predicate state, not
            // reusable scratch).
            self.fallback.query_cb_with(r, *theta, scratch, &mut |j| {
                mask.insert(j);
            });
            acc = Some(match acc {
                None => mask,
                Some(mut prev) => {
                    prev.and_assign(&mask);
                    prev
                }
            });
        }
        acc.map(|mask| mask.iter_ones().collect())
            .unwrap_or_default()
    }

    /// Answers an arbitrary logical expression over percentile predicates:
    /// DNF expansion, one conjunction query per clause, union of results
    /// (cross-clause dedup through a packed bitset).
    pub fn query_expr(&self, expr: &LogicalExpr) -> Result<Vec<usize>, MultiQueryError> {
        self.query_expr_with(expr, &mut QueryScratch::new())
    }

    /// [`query_expr`](Self::query_expr) with caller-provided scratch.
    pub fn query_expr_with(
        &self,
        expr: &LogicalExpr,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<usize>, MultiQueryError> {
        let dnf = expr.to_dnf();
        // `seen` lives outside the scratch while per-clause queries use it.
        let mut seen = std::mem::take(&mut scratch.seen);
        seen.reset(self.n_datasets);
        let mut out = Vec::new();
        let mut result = Ok(());
        for clause in dnf {
            // Degenerate empty clauses (e.g. `And([])`) contribute nothing,
            // matching `MixedQueryEngine`; `query_with` would panic on an
            // empty conjunction.
            if clause.is_empty() {
                continue;
            }
            if clause.len() > self.m {
                result = Err(MultiQueryError::TooManyPredicates {
                    got: clause.len(),
                    max: self.m,
                });
                break;
            }
            let preds: Result<Vec<(Rect, Interval)>, MultiQueryError> = clause
                .iter()
                .map(|p: &Predicate| match &p.measure {
                    MeasureFunction::Percentile(r) => {
                        // Clamp percentile thresholds into [0, 1].
                        let theta = Interval::new(
                            p.theta.lo.max(0.0),
                            p.theta.hi.min(1.0).max(p.theta.lo.max(0.0)),
                        );
                        Ok((r.clone(), theta))
                    }
                    MeasureFunction::TopK { .. } => Err(MultiQueryError::NonPercentile),
                })
                .collect();
            let preds = match preds {
                Ok(p) => p,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            for j in self.query_with(&preds, scratch) {
                if seen.insert(j) {
                    out.push(j);
                }
            }
        }
        scratch.seen = seen;
        result.map(|()| out)
    }

    /// Batch variant of [`query_expr`](Self::query_expr): answers every
    /// expression with the default worker pool ([`BuildOptions::default`]:
    /// all available cores, `DDS_THREADS` override), one reusable scratch
    /// per worker thread. Results come back in input order and are
    /// **bit-identical** to calling [`query_expr`](Self::query_expr) on
    /// each expression sequentially, for every thread count.
    pub fn query_expr_batch(
        &self,
        exprs: &[LogicalExpr],
    ) -> Vec<Result<Vec<usize>, MultiQueryError>> {
        self.query_expr_batch_opts(exprs, &BuildOptions::default())
    }

    /// [`query_expr_batch`](Self::query_expr_batch) with an explicit
    /// worker-pool configuration.
    pub fn query_expr_batch_opts(
        &self,
        exprs: &[LogicalExpr],
        opts: &BuildOptions,
    ) -> Vec<Result<Vec<usize>, MultiQueryError>> {
        par_map_with(opts, exprs, QueryScratch::new, |scratch, _, expr| {
            self.query_expr_with(expr, scratch)
        })
    }

    /// The query orthant over all `m` slots, written into a reused region
    /// buffer. Conjunctions shorter than `m` are padded with the trivial
    /// predicate (`θ = [0, 1]`) on the first rectangle.
    fn orthant_into(&self, preds: &[(Rect, Interval)], region: &mut Region) {
        let d = self.dim;
        let m = self.m;
        let trivial = Interval::new(0.0, 1.0);
        region.reset(4 * m * d + 2 * m);
        for l in 0..m {
            let (r, theta) = match preds.get(l) {
                Some((r, theta)) => (r, *theta),
                None => (&preds[0].0, trivial),
            };
            assert_eq!(r.dim(), d, "query rectangle dimension mismatch");
            let base = l * 4 * d;
            for h in 0..d {
                region.set_lo(base + h, r.lo_at(h), false);
                region.set_hi(base + d + h, r.lo_at(h), true);
                region.set_hi(base + 2 * d + h, r.hi_at(h), false);
                region.set_lo(base + 3 * d + h, r.hi_at(h), true);
            }
            region.set_lo(4 * m * d + 2 * l, theta.lo, false);
            region.set_hi(4 * m * d + 2 * l + 1, theta.hi, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    /// Three datasets with controlled masses in two disjoint regions
    /// A = [0, 10] and B = [20, 30]:
    ///  - ds0: 50% in A, 50% in B
    ///  - ds1: 100% in A
    ///  - ds2: 20% in A, 80% in B
    fn synopses() -> Vec<ExactSynopsis> {
        let spread = |lo: f64, n: usize| -> Vec<Point> {
            (0..n)
                .map(|i| Point::one(lo + 10.0 * (i as f64 + 0.5) / n as f64))
                .collect()
        };
        let mut ds0 = spread(0.0, 5);
        ds0.extend(spread(20.0, 5));
        let ds1 = spread(0.0, 10);
        let mut ds2 = spread(0.0, 2);
        ds2.extend(spread(20.0, 8));
        vec![
            ExactSynopsis::new(ds0),
            ExactSynopsis::new(ds1),
            ExactSynopsis::new(ds2),
        ]
    }

    fn region_a() -> Rect {
        Rect::interval(-1.0, 11.0)
    }

    fn region_b() -> Rect {
        Rect::interval(19.0, 31.0)
    }

    #[test]
    fn conjunction_of_two_predicates() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        assert_eq!(idx.eps(), 0.0);
        // ≥ 40% in A and ≥ 40% in B: only ds0.
        let hits = idx.query(&[
            (region_a(), Interval::new(0.4, 1.0)),
            (region_b(), Interval::new(0.4, 1.0)),
        ]);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn conjunction_with_two_sided_bands() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        // Mass in A within [0.1, 0.3] and mass in B within [0.7, 0.9]: ds2.
        let hits = idx.query(&[
            (region_a(), Interval::new(0.1, 0.3)),
            (region_b(), Interval::new(0.7, 0.9)),
        ]);
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn single_predicate_clause_is_padded() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        let mut hits = idx.query(&[(region_a(), Interval::new(0.4, 1.0))]);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn degenerate_band_falls_back_to_intersection() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        // Mass in B within [0, 0.1] (degenerate lower bound) and ≥ 0.9 in A:
        // ds1 (0 in B, 1.0 in A).
        let hits = idx.query(&[
            (region_b(), Interval::new(0.0, 0.1)),
            (region_a(), Interval::new(0.9, 1.0)),
        ]);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn dnf_expression_union() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        // (≥ 0.9 in A) OR (≥ 0.7 in B): ds1 ∪ ds2.
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(region_a(), 0.9)),
            LogicalExpr::Pred(Predicate::percentile_at_least(region_b(), 0.7)),
        ]);
        let mut hits = idx.query_expr(&expr).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn oversized_clause_is_rejected() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        let p = Predicate::percentile_at_least(region_a(), 0.5);
        let expr = LogicalExpr::And(vec![
            LogicalExpr::Pred(p.clone()),
            LogicalExpr::Pred(p.clone()),
            LogicalExpr::Pred(p),
        ]);
        assert_eq!(
            idx.query_expr(&expr),
            Err(MultiQueryError::TooManyPredicates { got: 3, max: 2 })
        );
    }

    #[test]
    fn non_percentile_predicate_is_rejected() {
        let idx = PtileMultiIndex::build(&synopses(), 2, PtileBuildParams::exact_centralized());
        let expr = LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, 0.5));
        assert_eq!(idx.query_expr(&expr), Err(MultiQueryError::NonPercentile));
    }
}
