//! Per-dataset coreset construction shared by the Ptile builders.
//!
//! For each dataset the builders draw an ε-sample from its synopsis
//! (Algorithm 1 line 4 / Algorithm 3 line 4), build the coordinate grid of
//! canonical rectangles and compute rectangle weights `|ρ ∩ S_i| / |S_i|`
//! with a small orthogonal-counting structure (as in the paper's analysis,
//! Appendix C.2, which uses "an additional static range tree on `S_i` for
//! counting queries").
//!
//! ### Decoupling weights from the grid
//!
//! The paper uses one sample for both purposes; its size is forced down by
//! the `O(s^{2d})` canonical-rectangle blow-up, which makes the sampling
//! error ε the binding cost. We instead draw a *large* weight sample `S_i`
//! (error `ε_i^samp` from the ε-sample theorem) and build the grid from `s`
//! per-dimension **quantile coordinates** of that sample. Rectangle weights
//! stay exact w.r.t. the large sample; the only new error is grid
//! coarsening — the mass that fits between consecutive grid coordinates —
//! which is **measured exactly** on the sample and added to the dataset's
//! budget:
//!
//! `ε_i = ε_i^samp + Σ_h 2·(max mass strictly between adjacent grid
//! coordinates of dimension h)`.
//!
//! For any query `R`, the maximal grid rectangle `ρ ⊆ R` misses at most the
//! two boundary gaps per dimension, so `|w(ρ) − M_R(P_i)| ≤ ε_i`; all the
//! index guarantees go through with the per-dataset budget `ε_i + δ_i`
//! exactly as in the paper (DESIGN.md §3).

use super::PtileBuildParams;
use dds_geom::{CoordGrid, Point, Rect};
use dds_rangetree::{BuildableIndex, KdTree, OrthoIndex, Region};
use dds_synopsis::{eps_sample_size, sample_error_bound, PercentileSynopsis};
use rand::rngs::StdRng;

/// Cap on the weight-sample size (keeps per-dataset build cost bounded).
const MAX_WEIGHT_SAMPLE: usize = 512;

/// The sampled coreset of one dataset.
pub(crate) struct DatasetCoreset {
    /// The (multi)sample `S_i` (kept for weight counting).
    pub sample: Vec<Point>,
    /// Quantile-coordinate grid of the sample.
    pub grid: CoordGrid,
    /// Achieved error bound ε_i = sampling + measured grid coarsening
    /// (0 when the synopsis support was taken exactly and fits the grid).
    pub eps_i: f64,
}

/// Largest per-dimension coordinate count `s` with
/// `(s(s+1)/2)^d ≤ budget` — the grid resolution allowed by the rectangle
/// budget.
pub(crate) fn max_coords_for_budget(budget: usize, dim: usize) -> usize {
    debug_assert!(dim >= 1);
    let per_dim = (budget as f64).powf(1.0 / dim as f64).max(1.0);
    // Solve s(s+1)/2 <= per_dim.
    let s = ((8.0 * per_dim + 1.0).sqrt() - 1.0) / 2.0;
    (s.floor() as usize).max(1)
}

/// Per-dimension quantile coordinates: `s` evenly spaced order statistics
/// (always including min and max). Returns the selected coordinates and the
/// maximum sample mass strictly between two adjacent selected coordinates.
fn quantile_coords(sorted: &[f64], s: usize) -> (Vec<f64>, f64) {
    let m = sorted.len();
    debug_assert!(m >= 1);
    if m <= s {
        let mut coords = sorted.to_vec();
        coords.dedup();
        return (coords, 0.0);
    }
    let mut coords = Vec::with_capacity(s);
    for i in 0..s {
        let rank = (i as f64 * (m - 1) as f64 / (s - 1).max(1) as f64).round() as usize;
        coords.push(sorted[rank.min(m - 1)]);
    }
    coords.dedup();
    // Measured max gap: the largest count of sample values strictly between
    // adjacent selected coordinates.
    let mut max_gap = 0usize;
    for w in coords.windows(2) {
        let lo = sorted.partition_point(|x| *x <= w[0]);
        let hi = sorted.partition_point(|x| *x < w[1]);
        max_gap = max_gap.max(hi.saturating_sub(lo));
    }
    (coords, max_gap as f64 / m as f64)
}

/// Builds the coreset of one dataset.
pub(crate) fn build_coreset<S: PercentileSynopsis>(
    synopsis: &S,
    params: &PtileBuildParams,
    n_datasets: usize,
    rng: &mut StdRng,
) -> DatasetCoreset {
    let dim = synopsis.dim();
    let phi_i = (params.phi / params.phi_denominator(n_datasets) as f64).clamp(1e-12, 0.5);
    let m_desired = eps_sample_size(params.eps, phi_i).min(MAX_WEIGHT_SAMPLE);
    // Exact-support shortcut: taking all points of a small finite support
    // incurs zero sampling error (and makes the paper's toy examples exact).
    let (sample, eps_samp) = match synopsis.all_points() {
        Some(all) if all.len() <= m_desired => (all.to_vec(), 0.0),
        _ => (
            synopsis.sample(m_desired, rng),
            sample_error_bound(m_desired, phi_i),
        ),
    };
    // Grid resolution from the rectangle budget; coordinates are sample
    // quantiles, coarsening error measured exactly.
    let s_cap = max_coords_for_budget(params.max_rects_per_dataset, dim);
    let mut coords = Vec::with_capacity(dim);
    let mut gap_total = 0.0;
    for h in 0..dim {
        let mut xs: Vec<f64> = sample.iter().map(|p| p[h]).collect();
        xs.sort_unstable_by(|a, b| a.total_cmp(b));
        let (c, gap) = quantile_coords(&xs, s_cap);
        coords.push(c);
        gap_total += 2.0 * gap;
    }
    DatasetCoreset {
        grid: CoordGrid::from_coords(coords),
        sample,
        eps_i: eps_samp + gap_total,
    }
}

/// Weights `|ρ ∩ S_i| / |S_i|` for a batch of rectangles, via an
/// orthogonal-counting structure over the sample.
pub(crate) fn rect_weights(sample: &[Point], rects: &[Rect]) -> Vec<f64> {
    debug_assert!(!sample.is_empty());
    let dim = sample[0].dim();
    let n = sample.len() as f64;
    if dim == 1 {
        // Fast path: two binary searches per interval.
        let mut xs: Vec<f64> = sample.iter().map(|p| p[0]).collect();
        xs.sort_unstable_by(|a, b| a.total_cmp(b));
        return rects
            .iter()
            .map(|r| {
                let lo = xs.partition_point(|x| *x < r.lo_at(0));
                let hi = xs.partition_point(|x| *x <= r.hi_at(0));
                (hi - lo) as f64 / n
            })
            .collect();
    }
    let counter = KdTree::build(dim, sample.iter().map(|p| p.as_slice().to_vec()).collect());
    rects
        .iter()
        .map(|r| {
            let region = Region::closed(r.lo().to_vec(), r.hi().to_vec());
            counter.count(&region) as f64 / n
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_synopsis::ExactSynopsis;
    use rand::{Rng, SeedableRng};

    #[test]
    fn budget_cap_formula() {
        // d=1: s(s+1)/2 <= 4096 -> s = 90.
        assert_eq!(max_coords_for_budget(4096, 1), 90);
        // d=2: per-dim budget 64 -> s(s+1)/2 <= 64 -> s = 10.
        assert_eq!(max_coords_for_budget(4096, 2), 10);
        assert!(max_coords_for_budget(1, 3) >= 1);
        // The cap really bounds the rectangle count.
        for (budget, d) in [(100usize, 1usize), (1000, 2), (5000, 3)] {
            let s = max_coords_for_budget(budget, d);
            let count = (s * (s + 1) / 2).pow(d as u32);
            assert!(count <= budget, "budget {budget} d={d}: count {count}");
        }
    }

    #[test]
    fn quantile_coords_cover_extremes_and_measure_gaps() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (coords, gap) = quantile_coords(&xs, 11);
        assert_eq!(coords.first(), Some(&0.0));
        assert_eq!(coords.last(), Some(&99.0));
        assert_eq!(coords.len(), 11);
        // 10 windows over 100 points: ~9 strictly-between points each.
        assert!((gap - 0.09).abs() < 0.02, "gap {gap}");
        // Small inputs are taken whole.
        let (coords, gap) = quantile_coords(&[1.0, 2.0, 3.0], 10);
        assert_eq!(coords, vec![1.0, 2.0, 3.0]);
        assert_eq!(gap, 0.0);
    }

    #[test]
    fn small_supports_are_taken_exactly() {
        let syn = ExactSynopsis::new(vec![Point::one(1.0), Point::one(7.0), Point::one(9.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let params = PtileBuildParams::exact_centralized();
        let cs = build_coreset(&syn, &params, 10, &mut rng);
        assert_eq!(cs.eps_i, 0.0);
        assert_eq!(cs.sample.len(), 3);
        assert_eq!(cs.grid.coords(0), &[1.0, 7.0, 9.0]);
    }

    #[test]
    fn large_supports_get_measured_budgets() {
        let pts: Vec<Point> = (0..100_000).map(|i| Point::one(i as f64)).collect();
        let syn = ExactSynopsis::new(pts);
        let mut rng = StdRng::seed_from_u64(2);
        let params = PtileBuildParams::default();
        let cs = build_coreset(&syn, &params, 100, &mut rng);
        assert!(cs.sample.len() <= MAX_WEIGHT_SAMPLE);
        assert!(cs.grid.coords(0).len() <= 90, "grid respects the budget");
        assert!(cs.eps_i > 0.0 && cs.eps_i < 1.0);
        // Budget = sampling + measured gaps; both parts should be modest.
        assert!(cs.eps_i < 0.35, "eps_i = {}", cs.eps_i);
    }

    #[test]
    fn grid_weight_error_is_within_budget() {
        // Empirical check of the coreset contract: for random query
        // intervals, |w(maximal grid rect) − M_R(P)| ≤ ε_i.
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..20_000)
            .map(|_| Point::one(rng.gen_range(0.0f64..100.0).powf(1.3)))
            .collect();
        let syn = ExactSynopsis::new(pts.clone());
        let params = PtileBuildParams::default().with_rect_budget(496);
        let cs = build_coreset(&syn, &params, 50, &mut rng);
        let m = cs.sample.len() as f64;
        for _ in 0..200 {
            let a = rng.gen_range(0.0..300.0);
            let b = a + rng.gen_range(0.0..150.0);
            let r = Rect::interval(a, b);
            let truth = r.mass(&pts);
            let w = match cs.grid.maximal_rect_in(&r) {
                Some(rect) => rect.count_inside(&cs.sample) as f64 / m,
                None => 0.0,
            };
            assert!(
                (truth - w).abs() <= cs.eps_i + 1e-9,
                "R=[{a},{b}] truth={truth} w={w} eps_i={}",
                cs.eps_i
            );
        }
    }

    #[test]
    fn weights_match_direct_counting() {
        let sample = vec![
            Point::two(1.0, 1.0),
            Point::two(2.0, 2.0),
            Point::two(3.0, 3.0),
            Point::two(2.0, 2.0), // duplicate (with-replacement sampling)
        ];
        let rects = vec![
            Rect::from_bounds(&[0.0, 0.0], &[2.5, 2.5]),
            Rect::from_bounds(&[3.0, 3.0], &[3.0, 3.0]),
        ];
        let w = rect_weights(&sample, &rects);
        assert_eq!(w, vec![0.75, 0.25]);
    }
}
