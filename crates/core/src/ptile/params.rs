//! Build parameters shared by the approximate Ptile structures.

use crate::pool::mix_seed;
use std::sync::Arc;

/// Parameters of Algorithms 1 and 3.
///
/// The paper draws `Θ(ε⁻² log(N/φ))` samples per dataset, yielding
/// `O(ε^{-4d} log^{2d}(N/φ))` canonical rectangles. On real hardware the
/// rectangle budget is the binding constraint, so the builder additionally
/// caps the per-dataset rectangle count ([`Self::max_rects_per_dataset`]),
/// derives the largest admissible sample size from it, and *reports the
/// achieved ε* (`eps_max` on the built index) computed from the actual
/// sample sizes — guarantees are always stated against achieved values, not
/// requested ones.
#[derive(Clone, Debug)]
pub struct PtileBuildParams {
    /// Requested sampling error ε (achieved ε may be larger if the
    /// rectangle budget binds; smaller if a dataset's support is used
    /// exactly).
    pub eps: f64,
    /// Overall failure probability φ (split evenly across datasets).
    pub phi: f64,
    /// Synopsis error bound δ (`Err_{S_{P_i}}(F_□^d) ≤ δ`); 0 in the
    /// centralized setting.
    pub delta: f64,
    /// Budget for `|R_i|`, the canonical rectangles per dataset.
    pub max_rects_per_dataset: usize,
    /// RNG seed for the sampling stage.
    pub seed: u64,
    /// Empirical-margin mode: use this ε at query time instead of the
    /// provable Hoeffding bound (which is often very conservative). May only
    /// *shrink* the margin; exact-support builds stay exact. Guarantees then
    /// hold empirically rather than provably — benchmark/marketplace code
    /// validates them against ground truth.
    pub eps_override: Option<f64>,
    /// Stable per-dataset seed identities: dataset `i`'s sampling RNG is
    /// seeded by `mix_seed(seed, seed_ids[i])` instead of
    /// `mix_seed(seed, i)`. A sharded build passes the shard's global
    /// dataset ids here, so a dataset draws the *same* sample wherever it
    /// lands — the prerequisite for sampled shard/unsharded equivalence.
    /// `None` keeps the positional default (equivalent to `seed_ids[i] = i`).
    pub seed_ids: Option<Arc<Vec<u64>>>,
    /// Fixes the denominator of the per-dataset failure-probability split
    /// `φ_i = φ / N`: with `Some(n)` the split uses `n` instead of the
    /// built repository's size. A sharded build over a declared catalog
    /// size keeps per-dataset sample sizes (and thus answers) identical to
    /// an unsharded build of that catalog; `None` splits over the local
    /// build (guarantees still hold, stated per build). The declared size
    /// must be an **upper bound** on the datasets actually indexed under
    /// it — a smaller denominator would silently dilute the union-bound φ
    /// — so builds assert `n ≥` their dataset count (and `ShardedEngine`
    /// asserts it against the whole catalog at every ingest).
    pub phi_datasets: Option<usize>,
}

impl Default for PtileBuildParams {
    fn default() -> Self {
        PtileBuildParams {
            eps: 0.1,
            phi: 0.01,
            delta: 0.0,
            max_rects_per_dataset: 4096,
            seed: 0x5EED,
            eps_override: None,
            seed_ids: None,
            phi_datasets: None,
        }
    }
}

impl PtileBuildParams {
    /// Centralized setting with exact synopses: δ = 0 and a small ε target.
    pub fn exact_centralized() -> Self {
        PtileBuildParams {
            eps: 0.05,
            delta: 0.0,
            ..Default::default()
        }
    }

    /// Federated setting over synopses with error bound `delta`.
    pub fn federated(delta: f64) -> Self {
        assert!((0.0..1.0).contains(&delta), "delta must be in [0, 1)");
        PtileBuildParams {
            delta,
            ..Default::default()
        }
    }

    /// Overrides the per-dataset rectangle budget.
    pub fn with_rect_budget(mut self, budget: usize) -> Self {
        assert!(budget >= 1);
        self.max_rects_per_dataset = budget;
        self
    }

    /// Overrides the requested sampling error.
    pub fn with_eps(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        self.eps = eps;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables empirical-margin mode (see [`Self::eps_override`]).
    pub fn with_empirical_eps(mut self, eps: f64) -> Self {
        assert!((0.0..1.0).contains(&eps));
        self.eps_override = Some(eps);
        self
    }

    /// Sets stable per-dataset seed identities (see [`Self::seed_ids`]).
    pub fn with_seed_ids(mut self, ids: Vec<u64>) -> Self {
        self.seed_ids = Some(Arc::new(ids));
        self
    }

    /// Fixes the φ-split denominator (see [`Self::phi_datasets`]).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_phi_datasets(mut self, n: usize) -> Self {
        assert!(n >= 1, "phi must split over at least one dataset");
        self.phi_datasets = Some(n);
        self
    }

    /// Dataset `i`'s sampling-RNG seed: stable identity when
    /// [`Self::seed_ids`] is set, positional otherwise.
    ///
    /// # Panics
    /// Panics if `seed_ids` is set but shorter than `i + 1`.
    pub(crate) fn dataset_seed(&self, i: usize) -> u64 {
        let id = match &self.seed_ids {
            Some(ids) => {
                assert!(ids.len() > i, "seed_ids must cover every dataset");
                ids[i]
            }
            None => i as u64,
        };
        mix_seed(self.seed, id)
    }

    /// The denominator of the φ split for a build of `n` datasets.
    ///
    /// # Panics
    /// Panics if a declared [`Self::phi_datasets`] is smaller than `n` —
    /// that would dilute the union-bound failure probability below the
    /// stated φ.
    pub(crate) fn phi_denominator(&self, n: usize) -> usize {
        match self.phi_datasets {
            Some(d) => {
                assert!(
                    d >= n,
                    "phi_datasets ({d}) must be an upper bound on the datasets built ({n})"
                );
                d
            }
            None => n,
        }
    }
}

/// Applies the empirical-margin override: it can only shrink the margin,
/// and exact builds (ε = 0) stay exact.
pub(crate) fn effective_eps(eps_max: f64, eps_override: Option<f64>) -> f64 {
    match eps_override {
        Some(e) if eps_max > 0.0 => e.min(eps_max),
        _ => eps_max,
    }
}
