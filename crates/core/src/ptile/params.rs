//! Build parameters shared by the approximate Ptile structures.

/// Parameters of Algorithms 1 and 3.
///
/// The paper draws `Θ(ε⁻² log(N/φ))` samples per dataset, yielding
/// `O(ε^{-4d} log^{2d}(N/φ))` canonical rectangles. On real hardware the
/// rectangle budget is the binding constraint, so the builder additionally
/// caps the per-dataset rectangle count ([`Self::max_rects_per_dataset`]),
/// derives the largest admissible sample size from it, and *reports the
/// achieved ε* (`eps_max` on the built index) computed from the actual
/// sample sizes — guarantees are always stated against achieved values, not
/// requested ones.
#[derive(Clone, Debug)]
pub struct PtileBuildParams {
    /// Requested sampling error ε (achieved ε may be larger if the
    /// rectangle budget binds; smaller if a dataset's support is used
    /// exactly).
    pub eps: f64,
    /// Overall failure probability φ (split evenly across datasets).
    pub phi: f64,
    /// Synopsis error bound δ (`Err_{S_{P_i}}(F_□^d) ≤ δ`); 0 in the
    /// centralized setting.
    pub delta: f64,
    /// Budget for `|R_i|`, the canonical rectangles per dataset.
    pub max_rects_per_dataset: usize,
    /// RNG seed for the sampling stage.
    pub seed: u64,
    /// Empirical-margin mode: use this ε at query time instead of the
    /// provable Hoeffding bound (which is often very conservative). May only
    /// *shrink* the margin; exact-support builds stay exact. Guarantees then
    /// hold empirically rather than provably — benchmark/marketplace code
    /// validates them against ground truth.
    pub eps_override: Option<f64>,
}

impl Default for PtileBuildParams {
    fn default() -> Self {
        PtileBuildParams {
            eps: 0.1,
            phi: 0.01,
            delta: 0.0,
            max_rects_per_dataset: 4096,
            seed: 0x5EED,
            eps_override: None,
        }
    }
}

impl PtileBuildParams {
    /// Centralized setting with exact synopses: δ = 0 and a small ε target.
    pub fn exact_centralized() -> Self {
        PtileBuildParams {
            eps: 0.05,
            delta: 0.0,
            ..Default::default()
        }
    }

    /// Federated setting over synopses with error bound `delta`.
    pub fn federated(delta: f64) -> Self {
        assert!((0.0..1.0).contains(&delta), "delta must be in [0, 1)");
        PtileBuildParams {
            delta,
            ..Default::default()
        }
    }

    /// Overrides the per-dataset rectangle budget.
    pub fn with_rect_budget(mut self, budget: usize) -> Self {
        assert!(budget >= 1);
        self.max_rects_per_dataset = budget;
        self
    }

    /// Overrides the requested sampling error.
    pub fn with_eps(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        self.eps = eps;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables empirical-margin mode (see [`Self::eps_override`]).
    pub fn with_empirical_eps(mut self, eps: f64) -> Self {
        assert!((0.0..1.0).contains(&eps));
        self.eps_override = Some(eps);
        self
    }
}

/// Applies the empirical-margin override: it can only shrink the margin,
/// and exact builds (ε = 0) stay exact.
pub(crate) fn effective_eps(eps_max: f64, eps_override: Option<f64>) -> f64 {
    match eps_override {
        Some(e) if eps_max > 0.0 => e.min(eps_max),
        _ => eps_max,
    }
}
