//! Approximate Ptile index for threshold predicates — Algorithms 1 and 2,
//! Theorem 4.4 (with the per-dataset error budgets of Remark 2).
//!
//! Construction (Algorithm 1): for every dataset draw an ε-sample `S_i`
//! from its synopsis, enumerate the canonical rectangles `R_i` of `S_i`,
//! and lift every rectangle `ρ` to the weighted point
//! `q_ρ = (ρ⁻, ρ⁺, w⁺) ∈ R^{2d+1}` where `w⁺ = w + ε_i + δ_i` folds the
//! dataset's own sampling error `ε_i` and synopsis error `δ_i` into the
//! weight `w = |ρ ∩ S_i| / |S_i|`. The paper's query-time subtraction
//! `a_θ − ε − δ` (Algorithm 2, line 1) is algebraically identical with
//! global errors and strictly sharper with heterogeneous ones: this is the
//! "per-dataset δ_i" refinement of Remark 2 with *known* budgets.
//!
//! Query (Algorithm 2): the orthant
//! `R' = ∏_h [R⁻_h, ∞) × ∏_h (−∞, R⁺_h] × [a_θ, ∞)` matches a lifted point
//! iff its rectangle fits inside `R` with weight at least
//! `a_θ − ε_i − δ_i`. Datasets whose combined budget reaches `a_θ` are
//! reported unconditionally (their sample may legitimately be empty inside
//! `R`). Distinct dataset indexes are enumerated output-sensitively with a
//! single filtered traversal and a reported-dataset mask (DESIGN.md
//! refinement R3 / ablation A3); the eager Algorithm-2 deletion loop is
//! kept as [`PtileThresholdIndex::query_eager`].

use super::coreset::{build_coreset, rect_weights};
use super::PtileBuildParams;
use crate::bitset::BitSet;
use crate::pool::{par_map, BuildOptions};
use crate::scratch::QueryScratch;
use dds_geom::Rect;
use dds_rangetree::{DeletableIndex, KdTree, OrthoIndex, Region, SortedScores};
use dds_synopsis::PercentileSynopsis;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-dataset build output of Algorithm 1 (see `RangePart` in `range.rs`
/// for the merging discipline).
struct ThresholdPart {
    lifted: Vec<Vec<f64>>,
    eps_i: f64,
    delta_i: f64,
}

/// Approximate percentile-threshold index (Theorem 4.4).
#[derive(Clone, Debug)]
pub struct PtileThresholdIndex {
    dim: usize,
    n_datasets: usize,
    eps_max: f64,
    delta_max: f64,
    /// Per-dataset combined budget `ε_i + δ_i`.
    combined: Vec<f64>,
    /// The same budgets, ordered, for the degenerate-band lookup.
    degenerate: SortedScores,
    /// Lifted points in `R^{2d+1}` (last coordinate = `w + ε_i + δ_i`).
    tree: KdTree,
    /// Dataset → lifted point ids (`Q_i`).
    groups: Vec<Vec<usize>>,
    /// Lifted point id → dataset.
    owner: Vec<u32>,
}

impl PtileThresholdIndex {
    /// Builds the index with a uniform synopsis error bound `params.delta`
    /// (Algorithm 1), serially.
    ///
    /// # Panics
    /// Panics if `synopses` is empty or dimensions are inconsistent.
    pub fn build<S: PercentileSynopsis>(synopses: &[S], params: PtileBuildParams) -> Self {
        Self::build_with_deltas(synopses, None, params)
    }

    /// Worker-pool variant of [`build`](Self::build): per-dataset work units
    /// run on `opts.threads` scoped threads. Bit-identical results for every
    /// thread count.
    pub fn build_opts<S: PercentileSynopsis + Sync>(
        synopses: &[S],
        params: PtileBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        Self::build_with_deltas_opts(synopses, None, params, opts)
    }

    /// Builds the index with *per-dataset* synopsis error bounds
    /// (`deltas[i] = δ_i`, Remark 2 with known budgets), serially.
    ///
    /// # Panics
    /// Panics if `synopses` is empty, dimensions are inconsistent, or
    /// `deltas` (when given) has the wrong arity.
    pub fn build_with_deltas<S: PercentileSynopsis>(
        synopses: &[S],
        deltas: Option<&[f64]>,
        params: PtileBuildParams,
    ) -> Self {
        Self::check_build_inputs(synopses, deltas);
        let n = synopses.len();
        let parts: Vec<ThresholdPart> = synopses
            .iter()
            .enumerate()
            .map(|(i, syn)| Self::dataset_part(i, syn, deltas, &params, n))
            .collect();
        Self::from_parts(synopses[0].dim(), parts, 1)
    }

    /// Worker-pool variant of [`build_with_deltas`](Self::build_with_deltas).
    pub fn build_with_deltas_opts<S: PercentileSynopsis + Sync>(
        synopses: &[S],
        deltas: Option<&[f64]>,
        params: PtileBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        Self::check_build_inputs(synopses, deltas);
        let n = synopses.len();
        let params = &params;
        let parts = par_map(opts, synopses, |i, syn| {
            Self::dataset_part(i, syn, deltas, params, n)
        });
        Self::from_parts(synopses[0].dim(), parts, opts.threads)
    }

    fn check_build_inputs<S: PercentileSynopsis>(synopses: &[S], deltas: Option<&[f64]>) {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        let dim = synopses[0].dim();
        assert!(
            synopses.iter().all(|s| s.dim() == dim),
            "synopses must share the schema dimension"
        );
        if let Some(d) = deltas {
            assert_eq!(d.len(), synopses.len(), "one delta per synopsis");
        }
    }

    /// One dataset's Algorithm-1 work unit; pure function of
    /// `(i, synopsis, params)` with a per-dataset RNG stream.
    fn dataset_part<S: PercentileSynopsis>(
        i: usize,
        syn: &S,
        deltas: Option<&[f64]>,
        params: &PtileBuildParams,
        n: usize,
    ) -> ThresholdPart {
        let dim = syn.dim();
        let mut rng = StdRng::seed_from_u64(params.dataset_seed(i));
        let cs = build_coreset(syn, params, n, &mut rng);
        let eps_i = super::params::effective_eps(cs.eps_i, params.eps_override);
        let delta_i = deltas.map_or(params.delta, |d| d[i]);
        let rects = cs.grid.enumerate_rects();
        let weights = rect_weights(&cs.sample, &rects);
        let mut lifted = Vec::with_capacity(rects.len());
        for (rect, w) in rects.iter().zip(weights) {
            let mut coords = Vec::with_capacity(2 * dim + 1);
            coords.extend_from_slice(rect.lo());
            coords.extend_from_slice(rect.hi());
            coords.push(w + eps_i + delta_i);
            lifted.push(coords);
        }
        ThresholdPart {
            lifted,
            eps_i,
            delta_i,
        }
    }

    /// Deterministic dataset-order merge (see `RangePart`).
    fn from_parts(dim: usize, parts: Vec<ThresholdPart>, threads: usize) -> Self {
        let n = parts.len();
        let mut lifted: Vec<Vec<f64>> = Vec::new();
        let mut owner: Vec<u32> = Vec::new();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut combined: Vec<f64> = Vec::with_capacity(n);
        let mut eps_max: f64 = 0.0;
        let mut delta_max: f64 = 0.0;
        for (i, mut part) in parts.into_iter().enumerate() {
            eps_max = eps_max.max(part.eps_i);
            delta_max = delta_max.max(part.delta_i);
            combined.push(part.eps_i + part.delta_i);
            groups[i].extend(lifted.len()..lifted.len() + part.lifted.len());
            owner.extend(std::iter::repeat_n(i as u32, part.lifted.len()));
            lifted.append(&mut part.lifted);
        }
        let tree = KdTree::build_par(2 * dim + 1, lifted, threads);
        let degenerate = SortedScores::build(&combined);
        PtileThresholdIndex {
            dim,
            n_datasets: n,
            eps_max,
            delta_max,
            combined,
            degenerate,
            tree,
            groups,
            owner,
        }
    }

    /// Schema dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed datasets `N`.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// Achieved sampling error ε (maximum over datasets).
    pub fn eps(&self) -> f64 {
        self.eps_max
    }

    /// Synopsis error bound δ (maximum over datasets).
    pub fn delta(&self) -> f64 {
        self.delta_max
    }

    /// Worst-case query margin `max_i (ε_i + δ_i)`; per-dataset margins are
    /// folded into the structure and are usually smaller.
    pub fn margin(&self) -> f64 {
        self.combined.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Global guarantee band: every reported dataset `j` satisfies
    /// `M_R(P_j) ≥ a_θ − slack_for(j) ≥ a_θ − slack()` (Lemma 4.2 /
    /// Remark 2), with probability `1 − φ`; every dataset with
    /// `M_R(P_j) ≥ a_θ` is reported.
    pub fn slack(&self) -> f64 {
        2.0 * self.margin()
    }

    /// Per-dataset guarantee band `2(ε_j + δ_j)`.
    pub fn slack_for(&self, j: usize) -> f64 {
        2.0 * self.combined[j]
    }

    /// Number of lifted points `|Q| = Σ_i |R_i|` (space accounting, E8).
    pub fn lifted_points(&self) -> usize {
        self.owner.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
            + self.owner.len() * 4
            + self.combined.len() * 8
            + self.groups.iter().map(|g| g.len() * 8 + 24).sum::<usize>()
    }

    /// Answers `Π = Pred_{M_R, [a_θ, 1]}` (Algorithm 2): returns dataset
    /// indexes, every qualifying dataset included, every reported dataset
    /// within its [`slack_for`](Self::slack_for) band.
    ///
    /// Read-only: the index can be shared (`&self`, e.g. behind an `Arc`)
    /// across query threads. Allocates a fresh [`QueryScratch`] per call;
    /// query loops should prefer [`query_with`](Self::query_with).
    pub fn query(&self, r: &Rect, a_theta: f64) -> Vec<usize> {
        self.query_with(r, a_theta, &mut QueryScratch::new())
    }

    /// [`query`](Self::query) with caller-provided scratch: identical
    /// answers, no per-query buffer allocations.
    pub fn query_with(&self, r: &Rect, a_theta: f64, scratch: &mut QueryScratch) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_cb_with(r, a_theta, scratch, &mut |j| out.push(j));
        out
    }

    /// Callback variant of [`query`](Self::query), used by the delay
    /// instrumentation (Remark 3): `f` is invoked once per reported index,
    /// in enumeration order.
    pub fn query_cb(&self, r: &Rect, a_theta: f64, f: &mut dyn FnMut(usize)) {
        self.query_cb_with(r, a_theta, &mut QueryScratch::new(), f)
    }

    /// [`query_cb`](Self::query_cb) with caller-provided scratch.
    pub fn query_cb_with(
        &self,
        r: &Rect,
        a_theta: f64,
        scratch: &mut QueryScratch,
        f: &mut dyn FnMut(usize),
    ) {
        assert_eq!(r.dim(), self.dim, "query rectangle dimension mismatch");
        scratch.reset_reported(self.n_datasets);
        let QueryScratch {
            reported,
            hits,
            region,
            ..
        } = scratch;
        // Degenerate band, per dataset: when a_θ ≤ ε_i + δ_i the dataset is
        // within the guarantee band even if its sample misses R entirely.
        self.degenerate.report_at_least(a_theta, hits);
        for &j in hits.iter() {
            reported.insert(j);
            f(j);
        }
        self.orthant_into(r, a_theta, region);
        let owner = &self.owner;
        self.tree.report_while(region, &mut |q| {
            let j = owner[q] as usize;
            if reported.insert(j) {
                f(j);
            }
            true
        });
    }

    /// Algorithm 2 exactly as written: on each report, eagerly delete every
    /// lifted point of the reported dataset. Same answers as
    /// [`query_cb`](Self::query_cb) (which tombstones rejected points
    /// lazily); kept for the ablation experiment A3. This is the one query
    /// path that takes `&mut self` — it is not read-only (it tombstones and
    /// restores tree points), so it stays off the shared-read contract.
    pub fn query_eager(&mut self, r: &Rect, a_theta: f64) -> Vec<usize> {
        assert_eq!(r.dim(), self.dim, "query rectangle dimension mismatch");
        let mut reported = BitSet::new(self.n_datasets);
        let mut out = Vec::new();
        let mut degenerate_hits = Vec::new();
        self.degenerate
            .report_at_least(a_theta, &mut degenerate_hits);
        for j in degenerate_hits {
            reported.insert(j);
            out.push(j);
        }
        let region = self.orthant(r, a_theta);
        let mut deleted: Vec<usize> = Vec::new();
        while let Some(id) = self.tree.report_first(&region) {
            let j = self.owner[id] as usize;
            if reported.insert(j) {
                out.push(j);
            }
            for &q in &self.groups[j] {
                if self.tree.delete(q) {
                    deleted.push(q);
                }
            }
        }
        self.restore(deleted);
        out
    }

    /// Restores query-session tombstones, in bulk when they are plentiful.
    fn restore(&mut self, deleted: Vec<usize>) {
        if deleted.len() * 8 > self.tree.len() {
            self.tree.restore_all();
        } else {
            for q in deleted {
                self.tree.restore(q);
            }
        }
    }

    /// The lifted orthant `R'` of Algorithm 2 line 1 plus the weight bound
    /// (per-dataset margins are already folded into the weight coordinate).
    fn orthant(&self, r: &Rect, w_lo: f64) -> Region {
        let mut region = Region::all(2 * self.dim + 1);
        self.orthant_into(r, w_lo, &mut region);
        region
    }

    /// [`orthant`](Self::orthant) written into a reused region buffer.
    fn orthant_into(&self, r: &Rect, w_lo: f64, region: &mut Region) {
        let d = self.dim;
        region.reset(2 * d + 1);
        for h in 0..d {
            region.set_lo(h, r.lo_at(h), false);
            region.set_hi(d + h, r.hi_at(h), false);
        }
        region.set_lo(2 * d, w_lo, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    fn figure1_synopses() -> Vec<ExactSynopsis> {
        vec![
            ExactSynopsis::new(vec![Point::one(1.0), Point::one(7.0), Point::one(9.0)]),
            ExactSynopsis::new(vec![
                Point::one(2.0),
                Point::one(4.0),
                Point::one(6.0),
                Point::one(10.0),
            ]),
        ]
    }

    #[test]
    fn figure1() {
        // The running example of Section 4.2: R = [3, 8], θ = [0.2, 1]
        // must report both datasets (masses 1/3 and 2/4).
        let idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        assert_eq!(idx.eps(), 0.0, "tiny supports are indexed exactly");
        let mut hits = idx.query(&Rect::interval(3.0, 8.0), 0.2);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn threshold_excludes_low_mass_datasets() {
        let idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        // θ = [0.4, 1]: only dataset 1 (mass 0.5) qualifies.
        let hits = idx.query(&Rect::interval(3.0, 8.0), 0.4);
        assert_eq!(hits, vec![1]);
        // θ = [0.6, 1]: nobody.
        assert!(idx.query(&Rect::interval(3.0, 8.0), 0.6).is_empty());
    }

    #[test]
    fn repeated_queries_are_stable() {
        // Repeated identical queries must be stable (shared-read path).
        let idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        for _ in 0..5 {
            let mut hits = idx.query(&Rect::interval(3.0, 8.0), 0.2);
            hits.sort_unstable();
            assert_eq!(hits, vec![0, 1]);
        }
    }

    #[test]
    fn no_duplicates_in_output() {
        let idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        let hits = idx.query(&Rect::interval(0.0, 20.0), 0.5);
        let mut dedup = hits.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(hits.len(), dedup.len());
    }

    #[test]
    fn tiny_threshold_reports_everything() {
        let idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        // A query region containing no point at all, but a_θ = 0: the band
        // [a−slack, 1] admits every dataset, and the theorem only promises a
        // superset — report all.
        let mut hits = idx.query(&Rect::interval(500.0, 600.0), 0.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn empty_region_with_real_threshold_reports_nothing() {
        let idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        assert!(idx.query(&Rect::interval(500.0, 600.0), 0.2).is_empty());
    }

    #[test]
    fn eager_and_lazy_strategies_agree() {
        let mut idx =
            PtileThresholdIndex::build(&figure1_synopses(), PtileBuildParams::exact_centralized());
        for (lo, hi, a) in [
            (3.0, 8.0, 0.2),
            (0.0, 20.0, 0.5),
            (5.0, 6.0, 0.1),
            (0.0, 2.0, 0.3),
        ] {
            let mut lazy = idx.query(&Rect::interval(lo, hi), a);
            let mut eager = idx.query_eager(&Rect::interval(lo, hi), a);
            lazy.sort_unstable();
            eager.sort_unstable();
            assert_eq!(lazy, eager, "R=[{lo},{hi}] a={a}");
        }
    }

    #[test]
    fn per_dataset_deltas_shrink_bands_individually() {
        // Dataset 0 published a coarse synopsis (δ_0 = 0.3), dataset 1 a
        // sharp one (δ_1 = 0). θ = [0.4, 1] over R = [3, 8]:
        //  - dataset 0 (mass 1/3): its personal band reaches 0.4 − 0.3 →
        //    reported;
        //  - dataset 1 (mass 1/2 ≥ 0.4): reported outright, with a zero
        //    personal slack.
        let syns = figure1_synopses();
        let idx = PtileThresholdIndex::build_with_deltas(
            &syns,
            Some(&[0.3, 0.0]),
            PtileBuildParams::exact_centralized(),
        );
        let mut hits = idx.query(&Rect::interval(3.0, 8.0), 0.4);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        assert!((idx.slack_for(0) - 0.6).abs() < 1e-12);
        assert_eq!(idx.slack_for(1), 0.0);
        // At a_θ = 0.81 neither the coarse budget (1/3 + 0.3) nor the sharp
        // dataset (0.5) reaches the bar.
        assert!(idx.query(&Rect::interval(3.0, 8.0), 0.81).is_empty());
        // With a *global* δ = 0.3 the sharp dataset would be dragged into
        // the widened answer of θ = [0.75, 1] (0.5 + 0.3 ≥ 0.75); with
        // per-dataset budgets it is not.
        let hits = idx.query(&Rect::interval(3.0, 8.0), 0.75);
        assert!(!hits.contains(&1), "sharp dataset must keep its tight band");
    }
}
