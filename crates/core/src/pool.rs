//! Worker-pool build support.
//!
//! Every `*_opts` build path in this crate fans its per-dataset /
//! per-direction work units out over [`par_map`], a deterministic
//! work-stealing parallel map on scoped std threads (see `dds-pool` for the
//! mechanism). Three invariants make the thread count unobservable:
//!
//! 1. each work unit draws from its own `StdRng` seeded with
//!    [`mix_seed`]`(params.seed, unit_index)` — no shared sequential stream;
//! 2. chunk results are merged back in index order, so lifted-point arrays,
//!    owner tables and score tables come out in the serial order;
//! 3. the kd-tree constructions splice parallel subtrees in serial
//!    DFS-preorder position (`KdTree::build_par`).
//!
//! Consequently `build_opts(…, &BuildOptions::with_threads(t))` is
//! **bit-identical** to the serial `build(…)` for every `t` — pinned by
//! `tests/parallel_equivalence.rs` — and [`BuildOptions::default`] can
//! safely use all available cores (`DDS_THREADS` overrides).

pub use dds_pool::{mix_seed, par_map, par_map_with, BuildOptions};
