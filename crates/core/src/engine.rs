//! Mixed-expression query engine.
//!
//! Appendix C.4 handles logical expressions of percentile predicates and
//! Appendix D.1 logical expressions of preference predicates. A practical
//! discovery system needs both in one expression — Example 1.1's economist
//! wants regional coverage (Ptile) *and* quality-of-life neighborhoods
//! (Pref) at once. [`MixedQueryEngine`] answers arbitrary
//! [`LogicalExpr`]s over both predicate kinds by DNF expansion: within a
//! conjunctive clause it intersects per-predicate index answers, across
//! clauses it unions (both operations preserve the superset-plus-band
//! guarantee shape, as the appendices note for the homogeneous cases).

use crate::bitset::BitSet;
use crate::cache::MaskCache;
use crate::framework::{Interval, LogicalExpr, MeasureFunction, Predicate, Repository};
use crate::pool::{par_map_with, BuildOptions};
use crate::pref::{PrefBuildParams, PrefIndex};
use crate::ptile::{PtileBuildParams, PtileRangeIndex};
use crate::scratch::QueryScratch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bit-exact hash key for a predicate, so identical predicates appearing in
/// several DNF clauses share one index query per [`MixedQueryEngine::query`]
/// call. Encodes the measure discriminant, then every float as its IEEE-754
/// bit pattern (`f64::to_bits`), so `-0.0 != 0.0` keys differ — a false
/// negative only costs a redundant query, never a wrong answer.
fn predicate_key(pred: &Predicate) -> Vec<u64> {
    let mut key = Vec::new();
    match &pred.measure {
        MeasureFunction::Percentile(r) => {
            key.push(0);
            key.push(r.dim() as u64);
            for h in 0..r.dim() {
                key.push(r.lo_at(h).to_bits());
                key.push(r.hi_at(h).to_bits());
            }
        }
        MeasureFunction::TopK { v, k } => {
            key.push(1);
            key.push(*k as u64);
            key.extend(v.iter().map(|x| x.to_bits()));
        }
    }
    key.push(pred.theta.lo.to_bits());
    key.push(pred.theta.hi.to_bits());
    key
}

/// Errors answering a mixed expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A preference predicate uses a rank `k` the engine has no index for.
    MissingRank(usize),
    /// A predicate's dimensionality (rectangle facets or preference-vector
    /// length) does not match the engine's schema dimension. Returned by
    /// the `try_query*` paths and by [`MixedQueryEngine::schema_check`];
    /// the checked paths surface it instead of panicking deep inside the
    /// underlying indexes.
    DimensionMismatch {
        /// The schema dimension the engine was built over.
        expected: usize,
        /// The dimensionality the offending predicate carries.
        got: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingRank(k) => {
                write!(
                    f,
                    "no Pref index built for k = {k}; add it to the engine params"
                )
            }
            EngineError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "query dimension {got} does not match the served schema (dim = {expected})"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The first predicate in `expr` whose dimensionality disagrees with
/// `dim`, as `(expected, got)`. Percentile predicates carry their
/// rectangle's facet count, preference predicates their direction-vector
/// length.
pub(crate) fn expr_dim_mismatch(expr: &LogicalExpr, dim: usize) -> Option<(usize, usize)> {
    match expr {
        LogicalExpr::Pred(p) => {
            let got = match &p.measure {
                MeasureFunction::Percentile(r) => r.dim(),
                MeasureFunction::TopK { v, .. } => v.len(),
            };
            (got != dim).then_some((dim, got))
        }
        LogicalExpr::And(xs) | LogicalExpr::Or(xs) => {
            xs.iter().find_map(|x| expr_dim_mismatch(x, dim))
        }
    }
}

/// A combined index answering logical expressions that mix percentile and
/// top-k preference predicates over one repository.
///
/// All query paths take `&self`: one engine can serve concurrent readers
/// (e.g. behind an `Arc`), and [`query_batch`](Self::query_batch) fans a
/// slice of expressions out over the worker pool. Batch calls share the
/// engine's **cross-call** [`MaskCache`]: a predicate repeated across
/// batches (the read-mostly catalog workload) queries its underlying index
/// only until cached, bounded by the cache capacity and invalidated via
/// the cache's generation tag.
#[derive(Debug)]
pub struct MixedQueryEngine {
    n_datasets: usize,
    ptile: PtileRangeIndex,
    /// One Pref index per supported rank `k`.
    pref: HashMap<usize, PrefIndex>,
    /// Underlying index queries issued over the engine's lifetime (after
    /// per-call memoization; distinct from the number of DNF literals seen).
    /// Atomic so the instrumentation survives concurrent `&self` queries.
    index_queries: AtomicU64,
    /// Cross-call predicate-mask cache used by the batch (and sharded)
    /// query paths. Behind an `Arc` so a shard rebuild can carry the cache
    /// (and its counters) over to the replacement engine.
    mask_cache: Arc<MaskCache>,
}

impl MixedQueryEngine {
    /// Builds the engine over a centralized repository, with Pref support
    /// for each rank in `ks`, using the default worker pool
    /// ([`BuildOptions::default`]: all available cores, `DDS_THREADS`
    /// override). The thread count never affects results.
    ///
    /// # Panics
    /// Panics if the repository is empty or `ks` is empty.
    pub fn build(
        repo: &Repository,
        ks: &[usize],
        ptile_params: PtileBuildParams,
        pref_params: PrefBuildParams,
    ) -> Self {
        Self::build_opts(
            repo,
            ks,
            ptile_params,
            pref_params,
            &BuildOptions::default(),
        )
    }

    /// [`build`](Self::build) with an explicit worker-pool configuration.
    ///
    /// # Panics
    /// Panics if the repository is empty or `ks` is empty.
    pub fn build_opts(
        repo: &Repository,
        ks: &[usize],
        ptile_params: PtileBuildParams,
        pref_params: PrefBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        assert!(!ks.is_empty(), "need at least one preference rank");
        let synopses = repo.exact_synopses();
        let ptile = PtileRangeIndex::build_opts(&synopses, ptile_params, opts);
        let pref = ks
            .iter()
            .map(|&k| {
                (
                    k,
                    PrefIndex::build_opts(&synopses, k, pref_params.clone(), opts),
                )
            })
            .collect();
        MixedQueryEngine {
            n_datasets: repo.len(),
            ptile,
            pref,
            index_queries: AtomicU64::new(0),
            mask_cache: Arc::new(MaskCache::with_default_capacity()),
        }
    }

    /// Bounds the engine's cross-call mask cache at `capacity` entries
    /// (builder-style) instead of
    /// [`DEFAULT_MASK_CACHE_CAPACITY`](crate::cache::DEFAULT_MASK_CACHE_CAPACITY).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_mask_cache_capacity(mut self, capacity: usize) -> Self {
        self.mask_cache = Arc::new(MaskCache::new(capacity));
        self
    }

    /// Replaces the engine's cross-call mask cache (builder-style).
    /// Crate-internal on purpose: cache keys encode only the predicate,
    /// not the repository, so attaching one cache to engines over
    /// different data would silently serve the wrong masks. The only
    /// legitimate use is the shard-rebuild carry-over
    /// (`ShardedEngine::rebuild_shard`), which invalidates the cache's
    /// generation as it hands it to the replacement engine.
    pub(crate) fn with_mask_cache(mut self, cache: Arc<MaskCache>) -> Self {
        self.mask_cache = cache;
        self
    }

    /// The engine's cross-call predicate-mask cache (hit/miss counters,
    /// capacity bound, generation tag). Shared by every
    /// [`query_batch`](Self::query_batch) call.
    pub fn mask_cache(&self) -> &Arc<MaskCache> {
        &self.mask_cache
    }

    /// Number of datasets the engine indexes.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// The schema dimension `d` the engine was built over. Every
    /// predicate in a query must carry this dimensionality; the
    /// `try_query*` paths reject mismatches with a typed
    /// [`EngineError::DimensionMismatch`].
    pub fn dim(&self) -> usize {
        self.ptile.dim()
    }

    /// Checks every expression's predicate dimensionalities against the
    /// engine schema, reporting the first mismatch as a typed error. The
    /// serving tier runs this up front so a whole request (batches
    /// included) is rejected all-or-nothing before any index is touched.
    pub fn schema_check(&self, exprs: &[LogicalExpr]) -> Result<(), EngineError> {
        let dim = self.dim();
        for expr in exprs {
            if let Some((expected, got)) = expr_dim_mismatch(expr, dim) {
                return Err(EngineError::DimensionMismatch { expected, got });
            }
        }
        Ok(())
    }

    /// Total underlying index queries issued so far. DNF expansion can
    /// repeat one predicate in many clauses; this counts post-memoization
    /// queries, so it measures real index work. Batch calls go through the
    /// **cross-call** [`MaskCache`], so a batch advances the counter by
    /// the number of distinct predicates *not already cached* — repeating
    /// an identical batch advances it by 0 while the masks stay resident
    /// (see [`mask_cache`](Self::mask_cache) for the hit/miss split).
    pub fn index_queries(&self) -> u64 {
        self.index_queries.load(Ordering::Relaxed)
    }

    /// The Ptile guarantee band.
    pub fn ptile_slack(&self) -> f64 {
        self.ptile.slack()
    }

    /// The worst per-dataset Ptile budget `max_i (ε_i + δ_i)` — the
    /// threshold below which the zero-mass corner case can report a
    /// dataset with no sample point inside the query rectangle. The shard
    /// routing fast path (`dds_core::shard`) may only skip an engine when
    /// a predicate's clamped lower bound strictly exceeds this.
    pub fn ptile_margin(&self) -> f64 {
        self.ptile.margin()
    }

    /// The Ptile build's routing synopsis (per-axis mass-bound envelope
    /// over the weight samples), if one could be built — `None` when a
    /// sample coordinate was `NaN`. The shard routing fast path
    /// (`dds_core::shard`) combines it with
    /// [`ptile_margin`](Self::ptile_margin) to prove shards silent for
    /// selective percentile predicates.
    pub fn routing_synopsis(&self) -> Option<&crate::ptile::RoutingSynopsis> {
        self.ptile.routing_synopsis()
    }

    /// The Pref guarantee band for rank `k` (if indexed).
    pub fn pref_slack(&self, k: usize) -> Option<f64> {
        self.pref.get(&k).map(PrefIndex::slack)
    }

    /// Answers a logical expression over percentile and preference
    /// predicates: a superset of `q_Π(P)`, every reported dataset within
    /// each touched predicate's band.
    ///
    /// Read-only: the engine can be shared (`&self`, e.g. behind an `Arc`)
    /// across query threads. Allocates a fresh [`QueryScratch`] per call;
    /// query loops should prefer [`query_with`](Self::query_with).
    ///
    /// Equivalent to [`try_query`](Self::try_query): the historical
    /// dimension *asserts* in the underlying indexes are wrapped by the
    /// typed [`EngineError::DimensionMismatch`] check, so a mismatched
    /// expression errs instead of panicking.
    pub fn query(&self, expr: &LogicalExpr) -> Result<Vec<usize>, EngineError> {
        self.try_query(expr)
    }

    /// [`query`](Self::query) with caller-provided scratch: identical
    /// answers; the reported flags, DNF accumulators, predicate-mask memo
    /// table and the lifted orthant buffers are all reused across calls.
    pub fn query_with(
        &self,
        expr: &LogicalExpr,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<usize>, EngineError> {
        self.try_query_with(expr, scratch)
    }

    /// The fallible single-expression path: schema-checks the expression
    /// ([`EngineError::DimensionMismatch`] on a wrong-dimension predicate),
    /// then answers it.
    pub fn try_query(&self, expr: &LogicalExpr) -> Result<Vec<usize>, EngineError> {
        self.try_query_with(expr, &mut QueryScratch::new())
    }

    /// [`try_query`](Self::try_query) with caller-provided scratch.
    pub fn try_query_with(
        &self,
        expr: &LogicalExpr,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<usize>, EngineError> {
        self.schema_check(std::slice::from_ref(expr))?;
        self.query_inner(&expr.to_dnf(), scratch, None)
    }

    /// Answers a slice of expressions with the default worker pool
    /// ([`BuildOptions::default`]: all available cores, `DDS_THREADS`
    /// override): per-worker reusable scratch, plus the engine's
    /// **cross-call** [`MaskCache`] so predicates repeated across the batch
    /// — or across *earlier batches* — query their underlying index once
    /// per cache residency.
    ///
    /// Results come back in input order and are **bit-identical** to calling
    /// [`query`](Self::query) on each expression sequentially, for every
    /// thread count (pinned by `tests/batch_equivalence.rs`): cached masks
    /// are exactly the masks the indexes would recompute.
    pub fn query_batch(&self, exprs: &[LogicalExpr]) -> Vec<Result<Vec<usize>, EngineError>> {
        self.try_query_batch(exprs)
    }

    /// [`query_batch`](Self::query_batch) with an explicit worker-pool
    /// configuration.
    pub fn query_batch_opts(
        &self,
        exprs: &[LogicalExpr],
        opts: &BuildOptions,
    ) -> Vec<Result<Vec<usize>, EngineError>> {
        self.try_query_batch_opts(exprs, opts)
    }

    /// The fallible batch path: each expression is schema-checked
    /// independently, so a wrong-dimension expression yields
    /// `Err(DimensionMismatch)` *in its slot* while the rest of the batch
    /// is still answered (input-ordered, like every batch path).
    pub fn try_query_batch(&self, exprs: &[LogicalExpr]) -> Vec<Result<Vec<usize>, EngineError>> {
        self.try_query_batch_opts(exprs, &BuildOptions::default())
    }

    /// [`try_query_batch`](Self::try_query_batch) with an explicit
    /// worker-pool configuration.
    pub fn try_query_batch_opts(
        &self,
        exprs: &[LogicalExpr],
        opts: &BuildOptions,
    ) -> Vec<Result<Vec<usize>, EngineError>> {
        let dim = self.dim();
        par_map_with(opts, exprs, QueryScratch::new, |scratch, _, expr| {
            if let Some((expected, got)) = expr_dim_mismatch(expr, dim) {
                return Err(EngineError::DimensionMismatch { expected, got });
            }
            self.query_inner(&expr.to_dnf(), scratch, Some(&self.mask_cache))
        })
    }

    /// [`query_with`](Self::query_with) on a pre-expanded DNF, through the
    /// cross-call [`MaskCache`] — the per-shard query path of
    /// [`ShardedEngine`](crate::shard::ShardedEngine), where every call is
    /// service traffic sharing the shard's cache and the *caller* owns the
    /// DNF (the sharded layer expands each expression once and reuses it
    /// for routing and for every shard, instead of re-expanding per
    /// shard).
    pub(crate) fn query_cached_dnf(
        &self,
        dnf: &[Vec<Predicate>],
        scratch: &mut QueryScratch,
    ) -> Result<Vec<usize>, EngineError> {
        self.query_inner(dnf, scratch, Some(&self.mask_cache))
    }

    /// The DNF evaluation loop behind every query path. DNF expansion
    /// repeats predicates across clauses (e.g. distributing `p ∧ (q ∨ r)`
    /// puts `p` in both clauses); each distinct predicate's hit mask is
    /// computed once per call (scratch memo) or once per batch (shared
    /// cache). Masks are packed bitsets: clause intersection is a word-wise
    /// AND over 64 datasets at a time.
    fn query_inner(
        &self,
        dnf: &[Vec<Predicate>],
        scratch: &mut QueryScratch,
        cache: Option<&MaskCache>,
    ) -> Result<Vec<usize>, EngineError> {
        let n = self.n_datasets;
        let mut out = Vec::new();
        // The memo, dedup set and accumulator move out of the scratch while
        // the leaf queries (which borrow the scratch for their own buffers)
        // run, and move back afterwards so their capacity is kept.
        let mut memo = std::mem::take(&mut scratch.memo);
        memo.clear();
        let mut seen = std::mem::take(&mut scratch.seen);
        seen.reset(n);
        let mut acc = std::mem::take(&mut scratch.acc);
        let mut result = Ok(());
        'clauses: for clause in dnf {
            if clause.is_empty() {
                continue;
            }
            acc.reset(n);
            acc.set_all();
            for pred in clause {
                let key = predicate_key(pred);
                let mask = match memo.get(&key) {
                    Some(m) => Arc::clone(m),
                    None => match self.predicate_mask(pred, &key, scratch, cache) {
                        Ok(m) => {
                            memo.insert(key, Arc::clone(&m));
                            m
                        }
                        Err(e) => {
                            result = Err(e);
                            break 'clauses;
                        }
                    },
                };
                acc.and_assign(&mask);
            }
            for j in acc.iter_ones() {
                if seen.insert(j) {
                    out.push(j);
                }
            }
        }
        scratch.memo = memo;
        scratch.seen = seen;
        scratch.acc = acc;
        result.map(|()| out)
    }

    /// One predicate's hit mask: shared-cache lookup (batch / sharded
    /// mode), then compute against the underlying index. The cache's map
    /// locks are only held to fetch/insert the per-key cell; the compute
    /// runs inside the cell's `OnceLock`, which guarantees exactly one
    /// execution per distinct predicate and generation (racing workers
    /// block on that cell only) — so
    /// [`index_queries`](Self::index_queries) and the cache's miss counter
    /// stay deterministic and distinct predicates never serialize behind
    /// each other.
    fn predicate_mask(
        &self,
        pred: &Predicate,
        key: &[u64],
        scratch: &mut QueryScratch,
        cache: Option<&MaskCache>,
    ) -> Result<Arc<BitSet>, EngineError> {
        match cache {
            None => self.compute_mask(pred, scratch),
            Some(cache) => cache.get_or_compute(key, || self.compute_mask(pred, scratch)),
        }
    }

    /// Queries the underlying index for one predicate and packs the hits.
    fn compute_mask(
        &self,
        pred: &Predicate,
        scratch: &mut QueryScratch,
    ) -> Result<Arc<BitSet>, EngineError> {
        let mut mask = BitSet::new(self.n_datasets);
        match &pred.measure {
            MeasureFunction::Percentile(r) => {
                let theta = Interval::new(
                    pred.theta.lo.max(0.0),
                    pred.theta.hi.min(1.0).max(pred.theta.lo.max(0.0)),
                );
                self.ptile.query_cb_with(r, theta, scratch, &mut |j| {
                    mask.insert(j);
                });
            }
            MeasureFunction::TopK { v, k } => {
                let idx = self.pref.get(k).ok_or(EngineError::MissingRank(*k))?;
                idx.query_cb(v, pred.theta.lo, &mut |j| {
                    mask.insert(j);
                });
            }
        }
        self.index_queries.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{ground_truth, Dataset, Predicate};
    use dds_geom::Rect;

    /// 2-d repository: coordinate 0 is a quality score (unit range),
    /// coordinate 1 a position. Percentile predicates range over positions,
    /// preference predicates over the score axis `v = (1, 0)`:
    ///  ds0: all mass at positions A = [0, 10], top score 0.9
    ///  ds1: all mass in A, top score 0.2
    ///  ds2: all mass in B = [20, 30], top score 0.9
    fn repo() -> Repository {
        Repository::new(vec![
            Dataset::from_rows("d0", vec![vec![0.9, 5.0], vec![0.8, 6.0]]),
            Dataset::from_rows("d1", vec![vec![0.2, 5.0], vec![0.1, 6.0]]),
            Dataset::from_rows("d2", vec![vec![0.9, 25.0], vec![0.8, 26.0]]),
        ])
    }

    fn region_a() -> Rect {
        Rect::from_bounds(&[-1.0, 0.0], &[1.0, 10.0])
    }

    fn region_b() -> Rect {
        Rect::from_bounds(&[-1.0, 20.0], &[1.0, 30.0])
    }

    fn engine() -> MixedQueryEngine {
        MixedQueryEngine::build(
            &repo(),
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized().with_eps(0.02),
        )
    }

    #[test]
    fn mixed_conjunction() {
        // Mass ≥ 0.5 in A AND top-1 score ≥ 0.5 → only ds0 and ds1 have the
        // mass; only ds0 clears the score.
        let e = engine();
        let expr = LogicalExpr::And(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(region_a(), 0.5)),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.5)),
        ]);
        let hits = e.query(&expr).unwrap();
        let truth = ground_truth(&repo(), &expr);
        assert_eq!(truth, vec![0]);
        // Superset of ground truth; the exact answer is contained.
        assert!(hits.contains(&0));
        // Every hit is within both bands.
        for &j in &hits {
            let mass = region_a().mass(repo().get(j).points());
            assert!(mass >= 0.5 - e.ptile_slack() - 1e-9);
        }
    }

    #[test]
    fn mixed_disjunction() {
        // Mass ≥ 0.9 in B OR top-1 score ≥ 0.8: ds2 (both), ds0 (score).
        let e = engine();
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(region_b(), 0.9)),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.8)),
        ]);
        let mut hits = e.query(&expr).unwrap();
        hits.sort_unstable();
        for i in ground_truth(&repo(), &expr) {
            assert!(hits.contains(&i));
        }
        assert!(!hits.contains(&1), "ds1 satisfies neither disjunct");
    }

    #[test]
    fn missing_rank_is_reported() {
        let e = engine();
        let expr = LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0], 7, 0.1));
        assert_eq!(e.query(&expr), Err(EngineError::MissingRank(7)));
    }

    #[test]
    fn repeated_predicates_query_indexes_once() {
        // `(a ∧ s) ∨ (b ∧ s)`: DNF expansion mentions the score predicate
        // in both clauses, but it must hit the Pref index only once.
        let e = engine();
        let score = Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.5);
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile_at_least(region_a(), 0.5)),
                LogicalExpr::Pred(score.clone()),
            ]),
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile_at_least(region_b(), 0.5)),
                LogicalExpr::Pred(score.clone()),
            ]),
        ]);
        let mut hits = e.query(&expr).unwrap();
        hits.sort_unstable();
        assert_eq!(
            e.index_queries(),
            3,
            "4 DNF literals, 3 distinct predicates → 3 index queries"
        );
        for i in ground_truth(&repo(), &expr) {
            assert!(hits.contains(&i));
        }
        // A second identical call re-queries (memo is per-call) and keeps
        // counting.
        let again = e.query(&expr).unwrap();
        assert_eq!(e.index_queries(), 6);
        let mut again = again;
        again.sort_unstable();
        assert_eq!(again, hits);
    }

    #[test]
    fn dimension_mismatch_is_typed_not_a_panic() {
        let e = engine();
        assert_eq!(e.dim(), 2);
        // A 1-d rectangle against the 2-d schema: typed error on every
        // query path, no panic.
        let bad = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::from_bounds(&[0.0], &[1.0]),
            0.5,
        ));
        let want = EngineError::DimensionMismatch {
            expected: 2,
            got: 1,
        };
        assert_eq!(e.try_query(&bad), Err(want.clone()));
        assert_eq!(e.query(&bad), Err(want.clone()));
        assert_eq!(
            e.schema_check(std::slice::from_ref(&bad)),
            Err(want.clone())
        );
        // Nested inside a conjunction, and via a preference vector too.
        let nested = LogicalExpr::And(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(region_a(), 0.5)),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0, 0.0], 1, 0.5)),
        ]);
        assert_eq!(
            e.try_query(&nested),
            Err(EngineError::DimensionMismatch {
                expected: 2,
                got: 3,
            })
        );
    }

    #[test]
    fn batch_dimension_mismatch_errs_per_slot() {
        let e = engine();
        let good = LogicalExpr::Pred(Predicate::percentile_at_least(region_a(), 0.5));
        let bad = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::from_bounds(&[0.0], &[1.0]),
            0.5,
        ));
        let res = e.try_query_batch(&[good.clone(), bad, good]);
        assert_eq!(res.len(), 3);
        assert!(res[0].is_ok());
        assert_eq!(
            res[1],
            Err(EngineError::DimensionMismatch {
                expected: 2,
                got: 1,
            })
        );
        assert_eq!(res[2], res[0]);
    }

    #[test]
    fn no_duplicates_across_clauses() {
        let e = engine();
        let p = Predicate::percentile_at_least(region_a(), 0.5);
        let expr = LogicalExpr::Or(vec![LogicalExpr::Pred(p.clone()), LogicalExpr::Pred(p)]);
        let hits = e.query(&expr).unwrap();
        let mut dedup = hits.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(hits.len(), dedup.len());
    }
}
