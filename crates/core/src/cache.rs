//! Bounded, invalidation-aware predicate-mask cache.
//!
//! Dataset-search deployments are read-mostly catalogs: the same popular
//! filters recur across requests, so a predicate's hit mask computed for
//! one `query_batch` call is very likely useful to the next. PR 3's cache
//! lived for a single batch; [`MaskCache`] lifts it to a service-lifetime
//! object the [`MixedQueryEngine`](crate::engine::MixedQueryEngine) owns
//! and every batch call shares:
//!
//! * **Bounded** — at most `capacity` distinct predicate masks are
//!   retained; inserting past the bound evicts the least-recently-used
//!   entry (approximate LRU via a relaxed logical clock — "LRU-ish": a
//!   racing touch may keep a slightly older entry alive, never more than
//!   `capacity` of them).
//! * **Invalidation-aware** — entries are tagged with the cache
//!   *generation* at insert time; [`invalidate`](MaskCache::invalidate)
//!   bumps the generation so every existing entry becomes stale without
//!   touching any other cache. A shard rebuild invalidates only its own
//!   shard's cache this way (see `dds_core::shard`).
//! * **Instrumented** — hit/miss counters are `AtomicU64`s, so the
//!   instrumentation survives concurrent readers exactly like
//!   `MixedQueryEngine::index_queries`. Misses count *computations*: under
//!   a racing batch each resident distinct predicate is still computed
//!   exactly once (the compute runs inside a per-key `OnceLock` cell).
//!   While the distinct-key working set fits `capacity` the miss counter
//!   is therefore deterministic for a given workload at every thread
//!   count; once eviction kicks in, *which* keys get evicted (and so how
//!   often one recomputes) depends on timing — the counters stay exact
//!   totals, but eviction-regime counts can vary run to run. Answers never
//!   do: a recomputed mask is bit-identical to the evicted one.

use crate::bitset::BitSet;
use crate::engine::EngineError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Default number of distinct predicate masks a cache retains
/// ([`MaskCache::with_default_capacity`]).
pub const DEFAULT_MASK_CACHE_CAPACITY: usize = 1024;

/// Entries examined per eviction: the victim is the least-recently-used
/// of a bounded sample (memcached-style), not of the whole map, so a full
/// cache never turns every miss into an O(capacity) scan under the write
/// lock. Caches at or below this size still evict exact LRU.
const EVICTION_SAMPLE: usize = 16;

/// One mask computation, shared behind a cell so racing lookups of the
/// same key block on *this* predicate only while exactly one of them
/// computes. Errors cache too — a `MissingRank` answer is as deterministic
/// as a mask.
type MaskCell = Arc<OnceLock<Result<Arc<BitSet>, EngineError>>>;

/// A cached mask plus its bookkeeping: the generation it was inserted
/// under (stale generations read as misses) and a last-touch stamp from
/// the cache's logical clock (drives LRU-ish eviction).
#[derive(Debug)]
struct MaskEntry {
    cell: MaskCell,
    gen: u64,
    stamp: AtomicU64,
}

/// A bounded, generation-tagged predicate-mask cache shared across
/// [`MixedQueryEngine::query_batch`](crate::engine::MixedQueryEngine::query_batch)
/// calls (and across every query of a `dds_core::shard` shard).
///
/// Keys are the engine's bit-exact predicate encodings; values are the
/// packed hit-mask bitsets (or the per-predicate error). Lookup takes a
/// read lock on the map only to fetch the per-key cell — the expensive
/// index query runs outside any map lock.
#[derive(Debug)]
pub struct MaskCache {
    map: RwLock<HashMap<Vec<u64>, MaskEntry>>,
    capacity: usize,
    /// Current generation; entries tagged with an older value are stale.
    generation: AtomicU64,
    /// Logical clock for LRU stamps (advances on every touch).
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MaskCache {
    /// An empty cache retaining at most `capacity` masks.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "mask cache needs capacity >= 1");
        MaskCache {
            map: RwLock::new(HashMap::new()),
            capacity,
            generation: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// An empty cache with [`DEFAULT_MASK_CACHE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_MASK_CACHE_CAPACITY)
    }

    /// The retention bound: the cache never holds more than this many
    /// entries (stale-generation entries included — they are evicted
    /// first).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held (current and stale generations alike);
    /// always `<= capacity()`.
    pub fn len(&self) -> usize {
        self.map.read().expect("mask cache poisoned").len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from a current-generation entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (fresh key, stale entry, or evicted):
    /// exactly the number of mask computations this cache triggered.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The current generation (starts at 0, bumped by
    /// [`invalidate`](Self::invalidate)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every current entry by bumping the generation: the
    /// entries stay resident until replaced or evicted, but any lookup
    /// sees them as stale and recomputes. Counters are *not* reset — they
    /// report cache effectiveness over its whole lifetime.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Returns the cached mask for `key`, computing (and caching) it with
    /// `compute` on a miss. Exactly one caller computes a given key per
    /// generation; racing callers block on that key's cell only.
    pub fn get_or_compute(
        &self,
        key: &[u64],
        compute: impl FnOnce() -> Result<Arc<BitSet>, EngineError>,
    ) -> Result<Arc<BitSet>, EngineError> {
        let gen = self.generation();
        // Fast path: current-generation entry under the read lock.
        let found = {
            let read = self.map.read().expect("mask cache poisoned");
            read.get(key).and_then(|e| {
                (e.gen == gen).then(|| {
                    e.stamp.store(self.tick(), Ordering::Relaxed);
                    Arc::clone(&e.cell)
                })
            })
        };
        let cell = match found {
            Some(cell) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cell
            }
            None => {
                let mut write = self.map.write().expect("mask cache poisoned");
                // Re-read the generation under the write lock: a racing
                // invalidate() between the fast path and here must not let
                // this (older-generation) writer clobber an entry a
                // current-generation worker just inserted.
                let gen = self.generation();
                // Re-check: a racing worker may have inserted the cell
                // between our read and write locks — that is a hit (the
                // compute is theirs).
                match write.get(key) {
                    Some(e) if e.gen == gen => {
                        e.stamp.store(self.tick(), Ordering::Relaxed);
                        let cell = Arc::clone(&e.cell);
                        drop(write);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        cell
                    }
                    _ => {
                        if !write.contains_key(key) && write.len() >= self.capacity {
                            Self::evict_one(&mut write, gen);
                        }
                        let cell: MaskCell = Arc::default();
                        write.insert(
                            key.to_vec(),
                            MaskEntry {
                                cell: Arc::clone(&cell),
                                gen,
                                stamp: AtomicU64::new(self.tick()),
                            },
                        );
                        drop(write);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        cell
                    }
                }
            }
        };
        cell.get_or_init(compute).clone()
    }

    /// Next logical-clock value for an LRU stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts one entry to make room: within a bounded sample of the map
    /// ([`EVICTION_SAMPLE`] entries — the map's iteration prefix, whose
    /// membership rotates as evictions reshape it), any stale-generation
    /// entry first, otherwise the smallest (oldest) stamp.
    fn evict_one(map: &mut HashMap<Vec<u64>, MaskEntry>, gen: u64) {
        let victim = map
            .iter()
            .take(EVICTION_SAMPLE)
            .min_by_key(|(_, e)| (e.gen == gen, e.stamp.load(Ordering::Relaxed)))
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            map.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(bits: &[usize]) -> Result<Arc<BitSet>, EngineError> {
        let mut m = BitSet::new(64);
        for &b in bits {
            m.insert(b);
        }
        Ok(Arc::new(m))
    }

    #[test]
    fn computes_once_then_hits() {
        let cache = MaskCache::new(8);
        let key = vec![1, 2, 3];
        let a = cache.get_or_compute(&key, || mask_of(&[1])).unwrap();
        let b = cache
            .get_or_compute(&key, || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn capacity_bounds_the_map_and_evicts_lru() {
        let cache = MaskCache::new(3);
        for i in 0..10u64 {
            let _ = cache.get_or_compute(&[i], || mask_of(&[i as usize]));
            assert!(cache.len() <= 3, "bound violated at insert {i}");
        }
        assert_eq!(cache.misses(), 10);
        // The three most recent keys survive; the earliest do not.
        let _ = cache.get_or_compute(&[9], || panic!("9 must be resident"));
        assert_eq!(cache.hits(), 1);
        let _ = cache.get_or_compute(&[0], || mask_of(&[0]));
        assert_eq!(cache.misses(), 11, "0 was evicted long ago");
    }

    #[test]
    fn touching_refreshes_lru_position() {
        let cache = MaskCache::new(2);
        let _ = cache.get_or_compute(&[1], || mask_of(&[1]));
        let _ = cache.get_or_compute(&[2], || mask_of(&[2]));
        // Touch 1 so 2 becomes the LRU victim.
        let _ = cache.get_or_compute(&[1], || panic!("resident"));
        let _ = cache.get_or_compute(&[3], || mask_of(&[3]));
        let _ = cache.get_or_compute(&[1], || panic!("1 was refreshed, must survive"));
    }

    #[test]
    fn invalidate_makes_entries_stale_without_clearing() {
        let cache = MaskCache::new(4);
        let _ = cache.get_or_compute(&[7], || mask_of(&[7]));
        assert_eq!(cache.generation(), 0);
        cache.invalidate();
        assert_eq!(cache.generation(), 1);
        assert_eq!(cache.len(), 1, "entries stay resident until replaced");
        // Stale entry reads as a miss and is recomputed in place.
        let recomputed = cache.get_or_compute(&[7], || mask_of(&[7, 8])).unwrap();
        assert!(recomputed.contains(8));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 1, "replaced, not duplicated");
        // And the refreshed entry hits again.
        let _ = cache.get_or_compute(&[7], || panic!("fresh generation entry"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn stale_entries_are_preferred_eviction_victims() {
        let cache = MaskCache::new(2);
        let _ = cache.get_or_compute(&[1], || mask_of(&[1]));
        cache.invalidate();
        let _ = cache.get_or_compute(&[2], || mask_of(&[2]));
        // Full: one stale ([1]) + one current ([2]). Inserting [3] must
        // evict the stale [1] even though [2] is older by stamp… ([2] is
        // newer by stamp here, so pin the property with a touch order that
        // would otherwise doom [2]).
        let _ = cache.get_or_compute(&[3], || mask_of(&[3]));
        let _ = cache.get_or_compute(&[2], || panic!("current entry must survive"));
        let _ = cache.get_or_compute(&[3], || panic!("current entry must survive"));
    }

    #[test]
    fn errors_cache_like_masks() {
        let cache = MaskCache::new(4);
        let err = cache.get_or_compute(&[5], || Err(EngineError::MissingRank(9)));
        assert_eq!(err, Err(EngineError::MissingRank(9)));
        let again = cache.get_or_compute(&[5], || panic!("errors are cached too"));
        assert_eq!(again, Err(EngineError::MissingRank(9)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn concurrent_lookups_compute_each_key_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(MaskCache::new(64));
        let computes = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                s.spawn(move || {
                    for round in 0..50u64 {
                        let key = [round % 16];
                        let _ = cache.get_or_compute(&key, || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            mask_of(&[key[0] as usize])
                        });
                    }
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 16, "one compute per key");
        assert_eq!(cache.misses(), 16);
        assert_eq!(cache.hits() + cache.misses(), 8 * 50);
    }
}
