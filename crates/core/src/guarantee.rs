//! Guarantee checkers: recall and error-band verification against ground
//! truth. These encode the exact statements of Theorems 4.4, 4.11, C.8 and
//! 5.4 and are shared by the integration tests and the experiment harness
//! (E2, E3, E5, E6, E11).

use crate::framework::Interval;
use dds_geom::{Point, Rect};

/// Outcome of checking one query's answer against the guarantee.
#[derive(Clone, Debug, Default)]
pub struct GuaranteeCheck {
    /// Qualifying datasets missing from the answer (must be empty w.h.p.).
    pub missed: Vec<usize>,
    /// Reported datasets whose true measure falls outside the widened band,
    /// with their measures.
    pub out_of_band: Vec<(usize, f64)>,
    /// `|q_Π(P)|` — the exact output size.
    pub exact_out: usize,
    /// `|J|` — the reported output size.
    pub reported: usize,
}

impl GuaranteeCheck {
    /// True iff recall is perfect and every report is within the band.
    pub fn holds(&self) -> bool {
        self.missed.is_empty() && self.out_of_band.is_empty()
    }

    /// Precision `|q_Π| / |J|` (1.0 when nothing was reported).
    pub fn precision(&self) -> f64 {
        if self.reported == 0 {
            1.0
        } else {
            // Reported minus false positives (band-violating or not).
            (self.reported - self.false_positives()) as f64 / self.reported as f64
        }
    }

    fn false_positives(&self) -> usize {
        self.reported
            .saturating_sub(self.exact_out.min(self.reported))
    }
}

/// Checks a Ptile answer: `reported ⊇ {i : M_R(P_i) ∈ θ}` and every
/// reported `j` has `M_R(P_j) ∈ [a − slack, b + slack]`.
pub fn check_ptile(
    repo: &[Vec<Point>],
    r: &Rect,
    theta: Interval,
    reported: &[usize],
    slack: f64,
) -> GuaranteeCheck {
    let mut is_reported = vec![false; repo.len()];
    for &j in reported {
        is_reported[j] = true;
    }
    let widened = theta.widened(slack + 1e-9);
    let mut check = GuaranteeCheck {
        reported: reported.len(),
        ..Default::default()
    };
    for (i, pts) in repo.iter().enumerate() {
        let mass = r.mass(pts);
        if theta.contains(mass) {
            check.exact_out += 1;
            if !is_reported[i] {
                check.missed.push(i);
            }
        }
        if is_reported[i] && !widened.contains(mass) {
            check.out_of_band.push((i, mass));
        }
    }
    check
}

/// Checks a Ptile answer for a conjunction of predicates (per-predicate
/// bands, Theorem C.8).
pub fn check_ptile_conjunction(
    repo: &[Vec<Point>],
    preds: &[(Rect, Interval)],
    reported: &[usize],
    slack: f64,
) -> GuaranteeCheck {
    let mut is_reported = vec![false; repo.len()];
    for &j in reported {
        is_reported[j] = true;
    }
    let mut check = GuaranteeCheck {
        reported: reported.len(),
        ..Default::default()
    };
    for (i, pts) in repo.iter().enumerate() {
        let masses: Vec<f64> = preds.iter().map(|(r, _)| r.mass(pts)).collect();
        let qualifies = preds.iter().zip(&masses).all(|((_, t), &m)| t.contains(m));
        if qualifies {
            check.exact_out += 1;
            if !is_reported[i] {
                check.missed.push(i);
            }
        }
        if is_reported[i] {
            let in_band = preds
                .iter()
                .zip(&masses)
                .all(|((_, t), &m)| t.widened(slack + 1e-9).contains(m));
            if !in_band {
                check.out_of_band.push((i, masses[0]));
            }
        }
    }
    check
}

/// Checks a Pref answer: `reported ⊇ {i : ω_k(P_i, v) ≥ a}` and every
/// reported `j` has `ω_k(P_j, v) ≥ a − slack`.
pub fn check_pref(
    repo: &[Vec<Point>],
    v: &[f64],
    k: usize,
    a: f64,
    reported: &[usize],
    slack: f64,
) -> GuaranteeCheck {
    let mut is_reported = vec![false; repo.len()];
    for &j in reported {
        is_reported[j] = true;
    }
    let mut check = GuaranteeCheck {
        reported: reported.len(),
        ..Default::default()
    };
    for (i, pts) in repo.iter().enumerate() {
        let score = kth_score(pts, v, k);
        if score >= a {
            check.exact_out += 1;
            if !is_reported[i] {
                check.missed.push(i);
            }
        }
        if is_reported[i] && score < a - slack - 1e-9 {
            check.out_of_band.push((i, score));
        }
    }
    check
}

fn kth_score(pts: &[Point], v: &[f64], k: usize) -> f64 {
    if k == 0 || k > pts.len() {
        return f64::NEG_INFINITY;
    }
    let mut scores: Vec<f64> = pts.iter().map(|p| p.dot(v)).collect();
    let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> Vec<Vec<Point>> {
        vec![
            vec![Point::one(1.0), Point::one(7.0), Point::one(9.0)],
            vec![
                Point::one(2.0),
                Point::one(4.0),
                Point::one(6.0),
                Point::one(10.0),
            ],
        ]
    }

    #[test]
    fn perfect_answer_passes() {
        let r = Rect::interval(3.0, 8.0);
        let theta = Interval::new(0.2, 1.0);
        let check = check_ptile(&repo(), &r, theta, &[0, 1], 0.0);
        assert!(check.holds());
        assert_eq!(check.exact_out, 2);
        assert_eq!(check.precision(), 1.0);
    }

    #[test]
    fn missing_dataset_is_flagged() {
        let r = Rect::interval(3.0, 8.0);
        let theta = Interval::new(0.2, 1.0);
        let check = check_ptile(&repo(), &r, theta, &[1], 0.0);
        assert!(!check.holds());
        assert_eq!(check.missed, vec![0]);
    }

    #[test]
    fn out_of_band_report_is_flagged() {
        let r = Rect::interval(3.0, 8.0);
        // Dataset 1 has mass 0.5; θ = [0.2, 0.4] with zero slack → 0.5 is
        // out of band.
        let theta = Interval::new(0.2, 0.4);
        let check = check_ptile(&repo(), &r, theta, &[0, 1], 0.0);
        assert_eq!(check.out_of_band.len(), 1);
        assert_eq!(check.out_of_band[0].0, 1);
        // With slack 0.1 the same report is acceptable.
        let check = check_ptile(&repo(), &r, theta, &[0, 1], 0.1);
        assert!(check.holds());
    }

    #[test]
    fn pref_checker() {
        let repo = vec![vec![Point::one(0.9)], vec![Point::one(0.4)]];
        let check = check_pref(&repo, &[1.0], 1, 0.5, &[0], 0.0);
        assert!(check.holds());
        let check = check_pref(&repo, &[1.0], 1, 0.5, &[0, 1], 0.0);
        assert_eq!(check.out_of_band.len(), 1);
        let check = check_pref(&repo, &[1.0], 1, 0.5, &[0, 1], 0.2);
        assert!(check.holds());
        let check = check_pref(&repo, &[1.0], 1, 0.3, &[0], 0.0);
        assert_eq!(check.missed, vec![1]);
    }

    #[test]
    fn conjunction_checker() {
        let preds = vec![
            (Rect::interval(0.0, 5.0), Interval::new(0.3, 1.0)),
            (Rect::interval(6.5, 11.0), Interval::new(0.3, 1.0)),
        ];
        // repo[0]: 1/3 in [0,5] and 2/3 in [6.5,11] → qualifies both.
        // repo[1]: 1/2 in [0,5] but only 1/4 in [6.5,11] → fails the second.
        let check = check_ptile_conjunction(&repo(), &preds, &[0], 0.0);
        assert!(check.holds(), "{check:?}");
        let check = check_ptile_conjunction(&repo(), &preds, &[0, 1], 0.0);
        assert_eq!(check.out_of_band.len(), 1, "{check:?}");
        // With enough slack the extra report becomes acceptable.
        let check = check_ptile_conjunction(&repo(), &preds, &[0, 1], 0.1);
        assert!(check.holds(), "{check:?}");
    }
}
