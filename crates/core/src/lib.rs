//! Distribution-aware dataset search — the data structures of
//! *"A Theoretical Framework for Distribution-Aware Dataset Search"*
//! (PODS 2025).
//!
//! Given a repository `P = {P_1, …, P_N}` of datasets in `R^d`, the crate
//! builds indexes answering *distribution-aware* queries:
//!
//! * **Ptile** — percentile predicates `|P_j ∩ R| / |P_j| ∈ θ` for a query
//!   rectangle `R` ([`ptile`]): threshold predicates (Theorem 4.4), general
//!   range predicates (Theorem 4.11), logical expressions over several
//!   predicates (Theorem C.8), an exact 1-d structure (Theorem C.5) and a
//!   dynamic variant (Remark 1).
//! * **Pref** — top-k preference predicates `ω_k(P_j, v) ≥ a_θ` for a query
//!   unit vector `v` ([`pref`]): single predicates (Theorem 5.4), logical
//!   expressions (Theorem D.4) and a dynamic variant.
//!
//! Both work *centralized* (exact synopses, δ = 0) and *federated* (any
//! synopsis with error δ — see `dds-synopsis`), with the paper's guarantee
//! shape: the returned set `J` contains every qualifying dataset, and every
//! reported dataset satisfies the predicate up to an additive `ε + 2δ`.
//!
//! Supporting modules: [`framework`] (measure functions / predicates /
//! logical expressions / repositories), [`baseline`] (the Ω(N) scans the
//! paper compares against), [`lowerbound`] (the Section 3 reductions,
//! executable), [`guarantee`] (recall / error-band checkers used by tests
//! and experiments), [`delay`] (enumeration-delay instrumentation,
//! Remark 3), [`pool`] (deterministic worker-pool builds *and* batch
//! queries — every index offers a `*_opts` constructor taking a
//! [`pool::BuildOptions`] whose thread count never changes results),
//! [`bitset`] (packed `u64` hit masks for the DNF query loops), [`scratch`]
//! (reusable per-query state behind the `&self` query paths and the
//! `query_batch` APIs), [`cache`] (the bounded, generation-tagged
//! cross-call predicate-mask cache), [`shard`] (the scatter/gather service
//! layer: one engine per repository shard, stable global dataset ids),
//! [`telemetry`] (lock-free log₂ latency histograms, stage-timing sets,
//! and the bounded slow-query trace log — recorded strictly outside the
//! answer path), [`error`] (the typed query/ingest error surface in one
//! place).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bitset;
pub mod cache;
pub mod delay;
pub mod engine;

/// The crate's typed failure surface, unified: everything a query or an
/// ingest can reject with, re-exported from one place.
///
/// Queries fail with [`error::EngineError`] (an unindexed preference
/// rank, a wrong-dimension predicate); ingest fails with
/// [`error::IngestError`] (id collisions, schema mismatches, arity
/// bugs). Services and the facade prelude import both from here instead
/// of reaching into [`engine`] and [`shard`] separately.
pub mod error {
    pub use crate::engine::EngineError;
    pub use crate::shard::IngestError;
}
pub mod extensions;
pub mod framework;
pub mod guarantee;
pub mod lowerbound;
pub mod pool;
pub mod pref;
pub mod ptile;
pub mod scratch;
pub mod shard;
pub mod telemetry;
