//! Pref baselines.

use crate::framework::Repository;
use dds_geom::Point;
use dds_synopsis::PrefSynopsis;

/// Centralized exact baseline: per query, compute `ω_k(P_i, v)` for every
/// dataset by selection over all inner products. Query time Ω(𝒩).
#[derive(Clone, Debug)]
pub struct LinearScanPref {
    datasets: Vec<Vec<Point>>,
}

impl LinearScanPref {
    /// Snapshots the repository.
    pub fn build(repo: &Repository) -> Self {
        LinearScanPref {
            datasets: repo.point_sets().map(|p| p.to_vec()).collect(),
        }
    }

    /// Exact `ω_k(P_i, v)`.
    pub fn score(&self, i: usize, v: &[f64], k: usize) -> f64 {
        let pts = &self.datasets[i];
        if k == 0 || k > pts.len() {
            return f64::NEG_INFINITY;
        }
        let mut scores: Vec<f64> = pts.iter().map(|p| p.dot(v)).collect();
        let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
        *kth
    }

    /// Exact `q_Π(P)` for `Π = Pred_{M_{v,k}, [a, ∞)}`.
    pub fn query(&self, v: &[f64], k: usize, a: f64) -> Vec<usize> {
        (0..self.datasets.len())
            .filter(|&i| self.score(i, v, k) >= a)
            .collect()
    }
}

/// Federated scan baseline: evaluate `Score(v, k)` on every synopsis per
/// query, keep scores `≥ a − δ` (recall-preserving). Ω(N · Λ_S) per query.
#[derive(Clone, Debug)]
pub struct SynopsisScanPref<S> {
    synopses: Vec<S>,
    delta: f64,
}

impl<S: PrefSynopsis> SynopsisScanPref<S> {
    /// Wraps a repository of synopses with score error bound `delta`.
    pub fn new(synopses: Vec<S>, delta: f64) -> Self {
        assert!(!synopses.is_empty());
        assert!((0.0..1.0).contains(&delta));
        SynopsisScanPref { synopses, delta }
    }

    /// Recall-preserving federated answer.
    pub fn query(&self, v: &[f64], k: usize, a: f64) -> Vec<usize> {
        self.synopses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.score(v, k) >= a - self.delta)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Dataset;

    fn repo() -> Repository {
        Repository::new(vec![
            Dataset::from_rows("a", vec![vec![0.9, 0.0], vec![0.8, 0.1]]),
            Dataset::from_rows("b", vec![vec![0.5, 0.2], vec![0.4, -0.3]]),
        ])
    }

    #[test]
    fn exact_scan() {
        let scan = LinearScanPref::build(&repo());
        assert_eq!(scan.score(0, &[1.0, 0.0], 2), 0.8);
        assert_eq!(scan.query(&[1.0, 0.0], 1, 0.6), vec![0]);
        assert_eq!(scan.query(&[1.0, 0.0], 1, 0.4), vec![0, 1]);
        assert!(scan.query(&[1.0, 0.0], 3, -10.0).is_empty());
    }

    #[test]
    fn synopsis_scan_with_exact_synopses() {
        let syns = repo().exact_synopses();
        let scan = SynopsisScanPref::new(syns, 0.0);
        assert_eq!(scan.query(&[1.0, 0.0], 1, 0.6), vec![0]);
    }
}
