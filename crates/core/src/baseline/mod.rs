//! The Ω(N) baselines the paper's overview (Section 4.1) compares against:
//! exact per-dataset scans in the centralized setting and synopsis scans
//! (the Fainder-style federated baseline \[8\]) — both linear in the number
//! of datasets per query, in contrast to the indexes' `Õ(1 + OUT)`.

mod pref_scan;
mod ptile_scan;

pub use pref_scan::{LinearScanPref, SynopsisScanPref};
pub use ptile_scan::{LinearScanPtile, SynopsisScanPtile};
