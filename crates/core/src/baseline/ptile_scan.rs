//! Ptile baselines.

use crate::framework::{Interval, Repository};
use dds_geom::Rect;
use dds_rangetree::{BuildableIndex, KdTree, OrthoIndex, Region};
use dds_synopsis::PercentileSynopsis;

/// Centralized exact baseline (Section 4.1, "the naive solution"): one
/// orthogonal counting structure per dataset; a query walks all `N`
/// datasets and computes `|P_i ∩ R| / |P_i|` exactly. Query time Ω(N).
#[derive(Clone, Debug)]
pub struct LinearScanPtile {
    trees: Vec<KdTree>,
    sizes: Vec<usize>,
    dim: usize,
}

impl LinearScanPtile {
    /// Builds per-dataset counting structures.
    pub fn build(repo: &Repository) -> Self {
        let trees: Vec<KdTree> = repo
            .point_sets()
            .map(|pts| {
                KdTree::build(
                    repo.dim(),
                    pts.iter().map(|p| p.as_slice().to_vec()).collect(),
                )
            })
            .collect();
        let sizes = repo.point_sets().map(|p| p.len()).collect();
        LinearScanPtile {
            trees,
            sizes,
            dim: repo.dim(),
        }
    }

    /// Exact percentile mass of dataset `i` in `r`.
    pub fn mass(&self, i: usize, r: &Rect) -> f64 {
        let region = Region::closed(r.lo().to_vec(), r.hi().to_vec());
        self.trees[i].count(&region) as f64 / self.sizes[i] as f64
    }

    /// Exact `q_Π(P)` for a percentile range predicate.
    pub fn query(&self, r: &Rect, theta: Interval) -> Vec<usize> {
        assert_eq!(r.dim(), self.dim, "query rectangle dimension mismatch");
        (0..self.trees.len())
            .filter(|&i| theta.contains(self.mass(i, r)))
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(KdTree::memory_bytes).sum()
    }
}

/// Federated scan baseline in the spirit of Fainder \[8\]: evaluate every
/// synopsis' mass per query and keep datasets whose *widened* band
/// `[a − δ, b + δ]` admits the estimate (recall-preserving mode). Query
/// time Ω(N · cost(mass)).
#[derive(Clone, Debug)]
pub struct SynopsisScanPtile<S> {
    synopses: Vec<S>,
    delta: f64,
}

impl<S: PercentileSynopsis> SynopsisScanPtile<S> {
    /// Wraps a repository of synopses with error bound `delta`.
    pub fn new(synopses: Vec<S>, delta: f64) -> Self {
        assert!(!synopses.is_empty());
        assert!((0.0..1.0).contains(&delta));
        SynopsisScanPtile { synopses, delta }
    }

    /// Recall-preserving federated answer: supersets `q_Π(P)`, every
    /// reported `j` has `M_R(S_{P_j}) ∈ [a − δ, b + δ]` (hence
    /// `M_R(P_j) ∈ [a − 2δ, b + 2δ]`).
    pub fn query(&self, r: &Rect, theta: Interval) -> Vec<usize> {
        let widened = theta.widened(self.delta);
        self.synopses
            .iter()
            .enumerate()
            .filter(|(_, s)| widened.contains(s.mass(r)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Point-estimate answer (no widening): may miss qualifying datasets —
    /// the "heuristic" failure mode the paper's introduction warns about.
    pub fn query_point_estimate(&self, r: &Rect, theta: Interval) -> Vec<usize> {
        self.synopses
            .iter()
            .enumerate()
            .filter(|(_, s)| theta.contains(s.mass(r)))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Dataset;
    use dds_synopsis::ExactSynopsis;

    fn repo() -> Repository {
        Repository::new(vec![
            Dataset::from_rows("a", vec![vec![1.0], vec![7.0], vec![9.0]]),
            Dataset::from_rows("b", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
        ])
    }

    #[test]
    fn linear_scan_is_exact() {
        let scan = LinearScanPtile::build(&repo());
        assert_eq!(
            scan.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 1.0)),
            vec![0, 1]
        );
        assert_eq!(
            scan.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4)),
            vec![0]
        );
        assert!((scan.mass(1, &Rect::interval(3.0, 8.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn synopsis_scan_with_exact_synopses_is_exact() {
        let syns = repo().exact_synopses();
        let scan = SynopsisScanPtile::new(syns, 0.0);
        assert_eq!(
            scan.query(&Rect::interval(3.0, 8.0), Interval::new(0.2, 0.4)),
            vec![0]
        );
    }

    #[test]
    fn widened_band_preserves_recall_under_noise() {
        // A deliberately coarse synopsis: mass off by up to delta.
        #[derive(Clone)]
        struct Noisy(ExactSynopsis, f64);
        impl PercentileSynopsis for Noisy {
            fn dim(&self) -> usize {
                PercentileSynopsis::dim(&self.0)
            }
            fn sample(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<dds_geom::Point> {
                self.0.sample(n, rng)
            }
            fn mass(&self, r: &Rect) -> f64 {
                (self.0.mass(r) + self.1).clamp(0.0, 1.0)
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }
        let syns: Vec<Noisy> = repo()
            .exact_synopses()
            .into_iter()
            .map(|s| Noisy(s, 0.08))
            .collect();
        let scan = SynopsisScanPtile::new(syns, 0.08);
        let r = Rect::interval(3.0, 8.0);
        // True masses 1/3 and 1/2; estimates +0.08 off. θ = [0.45, 0.55]
        // truly matches only dataset 1; the point estimate (0.58) misses it,
        // the widened band keeps it.
        let truth = LinearScanPtile::build(&repo()).query(&r, Interval::new(0.45, 0.55));
        assert_eq!(truth, vec![1]);
        assert!(scan
            .query_point_estimate(&r, Interval::new(0.45, 0.55))
            .is_empty());
        assert!(scan.query(&r, Interval::new(0.45, 0.55)).contains(&1));
    }
}
