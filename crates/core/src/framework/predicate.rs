//! Measure functions, predicates and logical expressions (Section 1.1).

use super::Repository;
use dds_geom::{Point, Rect};

/// A closed interval `θ = [a_θ, b_θ]` over measure values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower endpoint `a_θ`.
    pub lo: f64,
    /// Upper endpoint `b_θ`.
    pub hi: f64,
}

impl Interval {
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval endpoint");
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The one-sided threshold interval `[a, +∞)` used by threshold
    /// predicates (for percentile measures this is equivalent to `[a, 1]`).
    pub fn at_least(a: f64) -> Self {
        Interval::new(a, f64::INFINITY)
    }

    /// Membership test `x ∈ θ`.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// The interval widened by `slack` on both sides (the ε + 2δ bands of
    /// the approximation guarantees).
    pub fn widened(&self, slack: f64) -> Interval {
        Interval::new(self.lo - slack, self.hi + slack)
    }

    /// True if this is a one-sided threshold (`hi` is `+∞` or `≥ 1` for
    /// percentile measures).
    pub fn is_threshold_for_percentile(&self) -> bool {
        self.hi >= 1.0
    }
}

/// A measure function `M(P) ∈ R` (Section 1.1).
#[derive(Clone, Debug)]
pub enum MeasureFunction {
    /// The percentile measure `M_R(P) = |P ∩ R| / |P|` over an axis-parallel
    /// rectangle (class `F_□^d`).
    Percentile(Rect),
    /// The top-k preference measure `M_{v,k}(P) = ω_k(P, v)` — the k-th
    /// largest inner product with the unit vector `v` (class `F_k^d`).
    TopK {
        /// Query unit vector.
        v: Vec<f64>,
        /// Rank `k ≥ 1`.
        k: usize,
    },
}

impl MeasureFunction {
    /// Evaluates the measure on a raw dataset (ground truth).
    pub fn eval(&self, points: &[Point]) -> f64 {
        match self {
            MeasureFunction::Percentile(r) => r.mass(points),
            MeasureFunction::TopK { v, k } => {
                if *k == 0 || *k > points.len() {
                    return f64::NEG_INFINITY;
                }
                let mut scores: Vec<f64> = points.iter().map(|p| p.dot(v)).collect();
                let (_, kth, _) = scores.select_nth_unstable_by(*k - 1, |a, b| b.total_cmp(a));
                *kth
            }
        }
    }
}

/// A range/threshold predicate `Pred_{M,θ}(P) = M(P) ∈ θ`.
#[derive(Clone, Debug)]
pub struct Predicate {
    /// The measure function.
    pub measure: MeasureFunction,
    /// The interval θ.
    pub theta: Interval,
}

impl Predicate {
    /// Percentile range predicate.
    pub fn percentile(r: Rect, theta: Interval) -> Self {
        Predicate {
            measure: MeasureFunction::Percentile(r),
            theta,
        }
    }

    /// Percentile threshold predicate (`θ = [a, 1]`).
    pub fn percentile_at_least(r: Rect, a: f64) -> Self {
        Predicate::percentile(r, Interval::new(a, 1.0))
    }

    /// Preference threshold predicate (`ω_k(P, v) ≥ a`).
    pub fn topk_at_least(v: Vec<f64>, k: usize, a: f64) -> Self {
        Predicate {
            measure: MeasureFunction::TopK { v, k },
            theta: Interval::at_least(a),
        }
    }

    /// Ground-truth evaluation on a raw dataset.
    pub fn eval(&self, points: &[Point]) -> bool {
        self.theta.contains(self.measure.eval(points))
    }
}

/// Most DNF clauses [`LogicalExpr::to_dnf`] will expand to before
/// panicking — logical expressions are constant-size in the problem
/// definition, and every index layer sizes its per-clause scratch to this.
pub const MAX_DNF_CLAUSES: u64 = 64;

/// A logical expression `Π` over predicates (constant size), combining
/// conjunctions and disjunctions (Section 1.1).
#[derive(Clone, Debug)]
pub enum LogicalExpr {
    /// A single predicate.
    Pred(Predicate),
    /// Conjunction of sub-expressions.
    And(Vec<LogicalExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<LogicalExpr>),
}

impl LogicalExpr {
    /// Ground-truth evaluation `Π(P)` on a raw dataset.
    pub fn eval(&self, points: &[Point]) -> bool {
        match self {
            LogicalExpr::Pred(p) => p.eval(points),
            LogicalExpr::And(xs) => xs.iter().all(|x| x.eval(points)),
            LogicalExpr::Or(xs) => xs.iter().any(|x| x.eval(points)),
        }
    }

    /// Number of predicate leaves `m`.
    pub fn num_predicates(&self) -> usize {
        match self {
            LogicalExpr::Pred(_) => 1,
            LogicalExpr::And(xs) | LogicalExpr::Or(xs) => {
                xs.iter().map(LogicalExpr::num_predicates).sum()
            }
        }
    }

    /// An upper bound on the DNF clause count, computed **without
    /// expanding** (saturating arithmetic, so even an astronomically
    /// explosive expression cannot overflow). Every factor is clamped to
    /// ≥ 1, which makes each *prefix* product of an `And` bounded by the
    /// returned total — in particular, a zero-child `Or` (which
    /// contributes zero clauses to the final result) cannot hide the huge
    /// intermediate accumulators [`to_dnf`](Self::to_dnf) would
    /// materialize before reaching it.
    pub fn dnf_clause_bound(&self) -> u64 {
        match self {
            LogicalExpr::Pred(_) => 1,
            LogicalExpr::Or(xs) => xs
                .iter()
                .map(LogicalExpr::dnf_clause_bound)
                .fold(0u64, |a, b| a.saturating_add(b))
                .max(1),
            LogicalExpr::And(xs) => xs
                .iter()
                .map(|x| x.dnf_clause_bound().max(1))
                .fold(1u64, |a, b| a.saturating_mul(b)),
        }
    }

    /// Disjunctive normal form: a list of conjunctive clauses, each a list
    /// of predicates. The index layer answers each clause with the
    /// multi-predicate structure and unions the results (Appendix C.4
    /// observes disjunctions are straightforward given conjunctions).
    ///
    /// # Panics
    /// Panics if the expansion exceeds [`MAX_DNF_CLAUSES`] clauses —
    /// logical expressions are constant-size in the problem definition.
    /// The bound is checked via [`dnf_clause_bound`](Self::dnf_clause_bound)
    /// **before** anything is expanded, so even an expression whose huge
    /// expansion would collapse at the end (a wide `And` ending in an
    /// empty `Or`) panics immediately instead of materializing its
    /// intermediate clause accumulators first.
    pub fn to_dnf(&self) -> Vec<Vec<Predicate>> {
        assert!(
            self.dnf_clause_bound() <= MAX_DNF_CLAUSES,
            "logical expression expands too far"
        );
        self.dnf_rec()
    }

    fn dnf_rec(&self) -> Vec<Vec<Predicate>> {
        match self {
            LogicalExpr::Pred(p) => vec![vec![p.clone()]],
            LogicalExpr::Or(xs) => xs.iter().flat_map(LogicalExpr::dnf_rec).collect(),
            LogicalExpr::And(xs) => {
                let mut acc: Vec<Vec<Predicate>> = vec![vec![]];
                for x in xs {
                    let sub = x.dnf_rec();
                    let mut next = Vec::with_capacity(acc.len() * sub.len());
                    for clause in &acc {
                        for s in &sub {
                            let mut c = clause.clone();
                            c.extend(s.iter().cloned());
                            next.push(c);
                        }
                    }
                    acc = next;
                }
                acc
            }
        }
    }
}

/// Ground truth `q_Π(P) = {i : Π(P_i) = true}`, by brute force over the raw
/// repository. The reference answer for every experiment.
pub fn ground_truth(repo: &Repository, expr: &LogicalExpr) -> Vec<usize> {
    repo.point_sets()
        .enumerate()
        .filter(|(_, pts)| expr.eval(pts))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Dataset;

    fn repo() -> Repository {
        Repository::new(vec![
            Dataset::from_rows("a", vec![vec![1.0], vec![7.0], vec![9.0]]),
            Dataset::from_rows("b", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
            Dataset::from_rows("c", vec![vec![100.0], vec![200.0]]),
        ])
    }

    #[test]
    fn percentile_measure_matches_figure1() {
        let r = Rect::interval(3.0, 8.0);
        let m = MeasureFunction::Percentile(r);
        let repo = repo();
        assert!((m.eval(repo.get(0).points()) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.eval(repo.get(1).points()) - 0.5).abs() < 1e-12);
        assert_eq!(m.eval(repo.get(2).points()), 0.0);
    }

    #[test]
    fn topk_measure() {
        let repo = repo();
        let m = MeasureFunction::TopK { v: vec![1.0], k: 2 };
        assert_eq!(m.eval(repo.get(0).points()), 7.0);
        assert_eq!(m.eval(repo.get(2).points()), 100.0);
        let m_big = MeasureFunction::TopK { v: vec![1.0], k: 5 };
        assert_eq!(m_big.eval(repo.get(0).points()), f64::NEG_INFINITY);
    }

    #[test]
    fn ground_truth_single_predicate() {
        let repo = repo();
        let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(3.0, 8.0),
            0.2,
        ));
        assert_eq!(ground_truth(&repo, &expr), vec![0, 1]);
    }

    #[test]
    fn logical_expressions_and_dnf() {
        let p1 = Predicate::percentile_at_least(Rect::interval(3.0, 8.0), 0.2);
        let p2 = Predicate::percentile_at_least(Rect::interval(90.0, 300.0), 0.9);
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(p1.clone()),
            LogicalExpr::And(vec![LogicalExpr::Pred(p2.clone()), LogicalExpr::Pred(p1)]),
        ]);
        assert_eq!(expr.num_predicates(), 3);
        let dnf = expr.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf[0].len(), 1);
        assert_eq!(dnf[1].len(), 2);
        let repo = repo();
        assert_eq!(ground_truth(&repo, &expr), vec![0, 1]);
    }

    #[test]
    fn dnf_bound_is_checked_before_expansion() {
        let pred = || {
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(0.0, 1.0),
                0.5,
            ))
        };
        // Well within the bound: 2 × 2 = 4 clauses.
        let small_or = LogicalExpr::Or(vec![pred(), pred()]);
        let small = LogicalExpr::And(vec![small_or.clone(), small_or]);
        assert_eq!(small.dnf_clause_bound(), 4);
        assert_eq!(small.to_dnf().len(), 4);
        // A wide And ending in an EMPTY Or: the finished expansion would
        // hold zero clauses, but the intermediate accumulator would reach
        // ~100^3 clauses first. The pre-expansion bound clamps every
        // factor to >= 1, so each prefix product is covered and to_dnf
        // panics up front instead of materializing the intermediates.
        let wide_or = LogicalExpr::Or((0..100).map(|_| pred()).collect());
        let bomb = LogicalExpr::And(vec![
            wide_or.clone(),
            wide_or.clone(),
            wide_or,
            LogicalExpr::Or(vec![]),
        ]);
        assert!(bomb.dnf_clause_bound() > MAX_DNF_CLAUSES);
        let panicked = std::panic::catch_unwind(|| bomb.to_dnf());
        assert!(panicked.is_err(), "to_dnf must refuse the bomb up front");
    }

    #[test]
    fn interval_band_widening() {
        let t = Interval::new(0.2, 0.4);
        let w = t.widened(0.05);
        assert!(w.contains(0.16) && w.contains(0.44));
        assert!(!w.contains(0.46));
        assert!(Interval::new(0.3, 1.0).is_threshold_for_percentile());
        assert!(!Interval::new(0.3, 0.9).is_threshold_for_percentile());
    }
}
