//! Datasets and repositories (Section 1.1).

use dds_geom::Point;
use dds_synopsis::ExactSynopsis;

/// A dataset `P ⊂ R^d`: a named finite set of d-tuples over a numerical
/// schema.
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    points: Vec<Point>,
}

impl Dataset {
    /// Creates a dataset from points.
    ///
    /// # Panics
    /// Panics if `points` is empty (measure functions must be well-defined)
    /// or of mixed dimension.
    pub fn new(name: impl Into<String>, points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "datasets must be non-empty");
        let d = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == d),
            "all tuples must share the schema arity"
        );
        Dataset {
            name: name.into(),
            points,
        }
    }

    /// Creates a dataset from raw coordinate rows.
    pub fn from_rows(name: impl Into<String>, rows: Vec<Vec<f64>>) -> Self {
        Dataset::new(name, rows.into_iter().map(Point::new).collect())
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tuples.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// `n_i = |P_i|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true (construction rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Schema arity `d`.
    pub fn dim(&self) -> usize {
        self.points[0].dim()
    }
}

/// A repository `P = {P_1, …, P_N}` of datasets sharing a schema.
#[derive(Clone, Debug)]
pub struct Repository {
    datasets: Vec<Dataset>,
    dim: usize,
}

impl Repository {
    /// Builds a repository.
    ///
    /// # Panics
    /// Panics if `datasets` is empty or schemas (dimensions) differ.
    pub fn new(datasets: Vec<Dataset>) -> Self {
        assert!(!datasets.is_empty(), "repositories must be non-empty");
        let dim = datasets[0].dim();
        assert!(
            datasets.iter().all(|d| d.dim() == dim),
            "all datasets must share the schema"
        );
        Repository { datasets, dim }
    }

    /// Builds a repository from anonymous point sets (`dataset-0`, …).
    pub fn from_point_sets(sets: Vec<Vec<Point>>) -> Self {
        Repository::new(
            sets.into_iter()
                .enumerate()
                .map(|(i, pts)| Dataset::new(format!("dataset-{i}"), pts))
                .collect(),
        )
    }

    /// Number of datasets `N`.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Total number of tuples `𝒩 = Σ n_i`.
    pub fn total_points(&self) -> usize {
        self.datasets.iter().map(Dataset::len).sum()
    }

    /// Schema arity `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th dataset.
    pub fn get(&self, i: usize) -> &Dataset {
        &self.datasets[i]
    }

    /// All datasets.
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }

    /// Consumes the repository, yielding its datasets (used by services
    /// that retain ingested data for later re-partitioning).
    pub fn into_datasets(self) -> Vec<Dataset> {
        self.datasets
    }

    /// Iterates over the raw point sets (used by ground-truth evaluation).
    pub fn point_sets(&self) -> impl Iterator<Item = &[Point]> {
        self.datasets.iter().map(|d| d.points())
    }

    /// Exact synopses `S_{P_i} = P_i` — the centralized setting (δ = 0).
    pub fn exact_synopses(&self) -> Vec<ExactSynopsis> {
        self.datasets
            .iter()
            .map(|d| ExactSynopsis::new(d.points().to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repository_accounting() {
        let repo = Repository::new(vec![
            Dataset::from_rows("a", vec![vec![1.0], vec![2.0]]),
            Dataset::from_rows("b", vec![vec![3.0]]),
        ]);
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.total_points(), 3);
        assert_eq!(repo.dim(), 1);
        assert_eq!(repo.get(0).name(), "a");
        assert_eq!(repo.exact_synopses().len(), 2);
    }

    #[test]
    #[should_panic]
    fn mixed_schema_rejected() {
        let _ = Repository::new(vec![
            Dataset::from_rows("a", vec![vec![1.0]]),
            Dataset::from_rows("b", vec![vec![1.0, 2.0]]),
        ]);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let _ = Dataset::from_rows("a", vec![]);
    }
}
