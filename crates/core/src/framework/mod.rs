//! The paper's Section 1.1 framework: datasets, repositories, measure
//! functions, predicates and logical expressions.

mod dataset;
mod predicate;

pub use dataset::{Dataset, Repository};
pub use predicate::{
    ground_truth, Interval, LogicalExpr, MeasureFunction, Predicate, MAX_DNF_CLAUSES,
};
