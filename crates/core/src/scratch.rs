//! Reusable per-query scratch state.
//!
//! Every read-only query path in this crate takes `&self` and keeps its
//! transient state — reported-dataset flags, degenerate-hit buffers, the
//! lifted query orthant, DNF accumulators and the per-call predicate-mask
//! memo — in a [`QueryScratch`] instead of `self` or fresh heap
//! allocations. The convenience `query` methods create a scratch per call;
//! the `*_with` variants accept one from the caller, so a query loop (or a
//! worker thread of the batch APIs, via `dds_pool::par_map_with`) allocates
//! its buffers once and reuses them for every query.
//!
//! Scratch is *state, never input*: each query resets every field it reads
//! before use, so answers are independent of whatever ran on the scratch
//! before — the property that keeps the parallel batch APIs bit-identical
//! to sequential execution (pinned by `tests/batch_equivalence.rs`).

use crate::bitset::BitSet;
use dds_rangetree::Region;
use std::collections::HashMap;
use std::sync::Arc;

/// Reusable buffers for the `&self` query paths.
///
/// One scratch serves every index family (threshold, range, multi, the
/// mixed engine): fields are disjoint per concern and each query path
/// resets the ones it touches. Create one per query loop / worker thread:
///
/// ```
/// use dds_core::ptile::{PtileBuildParams, PtileThresholdIndex};
/// use dds_core::scratch::QueryScratch;
/// use dds_geom::{Point, Rect};
/// use dds_synopsis::ExactSynopsis;
///
/// let synopses = vec![
///     ExactSynopsis::new(vec![Point::one(1.0), Point::one(7.0)]),
///     ExactSynopsis::new(vec![Point::one(4.0), Point::one(6.0)]),
/// ];
/// let index = PtileThresholdIndex::build(&synopses, PtileBuildParams::exact_centralized());
/// let mut scratch = QueryScratch::new();
/// for lo in 0..5 {
///     // Identical answers to `index.query(..)`, no per-query buffers.
///     let hits = index.query_with(&Rect::interval(lo as f64, 8.0), 0.4, &mut scratch);
///     assert!(!hits.is_empty());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct QueryScratch {
    /// Reported-dataset flags (replaces the per-query `vec![false; N]`).
    pub(crate) reported: BitSet,
    /// Id buffer for degenerate-band / empty-slab reporting.
    pub(crate) hits: Vec<usize>,
    /// The lifted query orthant, rebuilt in place per query.
    pub(crate) region: Region,
    /// Cross-clause dedup set for DNF loops.
    pub(crate) seen: BitSet,
    /// Clause intersection accumulator for DNF loops.
    pub(crate) acc: BitSet,
    /// Per-call predicate-mask memo of the mixed engine (DNF expansion
    /// repeats predicates across clauses; each distinct predicate queries
    /// its index once per call).
    pub(crate) memo: HashMap<Vec<u64>, Arc<BitSet>>,
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            reported: BitSet::new(0),
            hits: Vec::new(),
            // `Region` has no empty constructor (dim >= 1); start at 1 and
            // let the first query `reset` it to the right arity.
            region: Region::all(1),
            seen: BitSet::new(0),
            acc: BitSet::new(0),
            memo: HashMap::new(),
        }
    }

    /// Resets the reported flags to an empty universe of `n` datasets and
    /// clears the hit buffer — the common preamble of the leaf queries.
    pub(crate) fn reset_reported(&mut self, n: usize) {
        self.reported.reset(n);
        self.hits.clear();
    }
}
