//! Approximate Pref index — Algorithms 5 and 6, Theorem 5.4.
//!
//! Construction (Algorithm 5): build an ε-net `C` on `S^{d-1}`; for every
//! net vector `v` query each synopsis for `γ_v^{(i)} = Score(v, k)` and keep
//! the `N` scores in a sorted array (the "1-dimensional range tree" `T_v`).
//!
//! Query (Algorithm 6): snap the query vector `u` to its nearest net vector
//! `v` and report every dataset with `γ_v^{(i)} ≥ a_θ − ε − δ`. By Lemma
//! 5.1 the snap costs at most ε in score (points in the unit ball), so the
//! answer contains every qualifying dataset and every reported dataset
//! scores at least `a_θ − 2ε − 2δ` (Lemma 5.2).

use crate::pool::{par_map, BuildOptions};
use dds_geom::EpsNet;
use dds_rangetree::SortedScores;
use dds_synopsis::PrefSynopsis;

/// Parameters for the Pref structures.
#[derive(Clone, Debug)]
pub struct PrefBuildParams {
    /// ε-net covering parameter (also the score error of vector snapping).
    pub eps: f64,
    /// Synopsis score error bound δ (`Err(F_k^d) ≤ δ`); 0 when exact.
    pub delta: f64,
}

impl Default for PrefBuildParams {
    fn default() -> Self {
        PrefBuildParams {
            eps: 0.05,
            delta: 0.0,
        }
    }
}

impl PrefBuildParams {
    /// Centralized setting (exact synopses).
    pub fn exact_centralized() -> Self {
        Self::default()
    }

    /// Federated setting over synopses with score error `delta`.
    pub fn federated(delta: f64) -> Self {
        assert!((0.0..1.0).contains(&delta), "delta must be in [0, 1)");
        PrefBuildParams {
            delta,
            ..Default::default()
        }
    }

    /// Overrides the net parameter ε.
    pub fn with_eps(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        self.eps = eps;
        self
    }
}

/// Approximate top-k preference index (Theorem 5.4).
///
/// ```
/// use dds_core::pref::{PrefBuildParams, PrefIndex};
/// use dds_geom::Point;
/// use dds_synopsis::ExactSynopsis;
///
/// // Two datasets in the unit ball; scores along v = (1, 0).
/// let synopses = vec![
///     ExactSynopsis::new(vec![Point::two(0.9, 0.0), Point::two(0.8, 0.1)]),
///     ExactSynopsis::new(vec![Point::two(0.3, 0.2), Point::two(0.2, -0.3)]),
/// ];
/// // "At least 2 points scoring >= 0.6": only the first dataset
/// // (omega_2 = 0.8 vs 0.2).
/// let index = PrefIndex::build(&synopses, 2, PrefBuildParams::exact_centralized());
/// assert_eq!(index.query(&[1.0, 0.0], 0.6), vec![0]);
/// ```
#[derive(Clone, Debug)]
pub struct PrefIndex {
    net: EpsNet,
    k: usize,
    /// `trees[i]` = sorted scores `Γ_v` for net vector `i`.
    trees: Vec<SortedScores>,
    eps: f64,
    delta: f64,
    n_datasets: usize,
}

impl PrefIndex {
    /// Builds the index over one synopsis per dataset (Algorithm 5),
    /// serially.
    ///
    /// # Panics
    /// Panics if `synopses` is empty, dimensions differ, or `k == 0`.
    pub fn build<S: PrefSynopsis>(synopses: &[S], k: usize, params: PrefBuildParams) -> Self {
        let net = Self::check_and_net(synopses, k, &params);
        let trees = net
            .vectors()
            .iter()
            .map(|v| Self::direction_tree(synopses, v, k))
            .collect();
        Self::assemble(net, k, trees, params, synopses.len())
    }

    /// Worker-pool variant of [`build`](Self::build): the per-net-direction
    /// score tables (the `O(ε^{-d+1})` structures `T_v`) are computed on
    /// `opts.threads` scoped threads. Bit-identical results for every
    /// thread count.
    ///
    /// # Panics
    /// Panics if `synopses` is empty, dimensions differ, or `k == 0`.
    pub fn build_opts<S: PrefSynopsis + Sync>(
        synopses: &[S],
        k: usize,
        params: PrefBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        let net = Self::check_and_net(synopses, k, &params);
        let trees = par_map(opts, net.vectors(), |_, v| {
            Self::direction_tree(synopses, v, k)
        });
        Self::assemble(net, k, trees, params, synopses.len())
    }

    fn check_and_net<S: PrefSynopsis>(
        synopses: &[S],
        k: usize,
        params: &PrefBuildParams,
    ) -> EpsNet {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        assert!(k >= 1, "k must be positive");
        let dim = synopses[0].dim();
        assert!(
            synopses.iter().all(|s| s.dim() == dim),
            "synopses must share the schema dimension"
        );
        EpsNet::new(dim, params.eps)
    }

    /// One net direction's work unit: query every synopsis for
    /// `γ_v^{(i)} = Score(v, k)` and sort (the "1-d range tree" `T_v`).
    fn direction_tree<S: PrefSynopsis>(synopses: &[S], v: &[f64], k: usize) -> SortedScores {
        let scores: Vec<f64> = synopses.iter().map(|s| s.score(v, k)).collect();
        SortedScores::build(&scores)
    }

    fn assemble(
        net: EpsNet,
        k: usize,
        trees: Vec<SortedScores>,
        params: PrefBuildParams,
        n_datasets: usize,
    ) -> Self {
        PrefIndex {
            net,
            k,
            trees,
            eps: params.eps,
            delta: params.delta,
            n_datasets,
        }
    }

    /// The rank `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed datasets `N`.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// Net parameter ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Synopsis error bound δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Query margin `ε + δ` (Algorithm 6 line 2).
    pub fn margin(&self) -> f64 {
        self.eps + self.delta
    }

    /// Guarantee band (Lemma 5.2): every reported `j` has
    /// `ω_k(P_j, u) ≥ a_θ − slack` with `slack = 2(ε + δ)`.
    pub fn slack(&self) -> f64 {
        2.0 * self.margin()
    }

    /// Number of ε-net directions (`O(ε^{-d+1})`).
    pub fn directions(&self) -> usize {
        self.net.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.trees.len() * (self.n_datasets * 12 + 48) + self.net.len() * (self.net.dim() * 8 + 24)
    }

    /// Answers `Π = Pred_{M_{u,k}, [a_θ, ∞)}` (Algorithm 6): dataset
    /// indexes, every qualifying dataset included, reported ones within the
    /// [`slack`](Self::slack) band.
    pub fn query(&self, u: &[f64], a_theta: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_cb(u, a_theta, &mut |j| out.push(j));
        out
    }

    /// Callback variant of [`query`](Self::query).
    pub fn query_cb(&self, u: &[f64], a_theta: f64, f: &mut dyn FnMut(usize)) {
        assert_eq!(u.len(), self.net.dim(), "query vector dimension mismatch");
        let (vi, _) = self.net.nearest(u);
        let mut hits = Vec::new();
        self.trees[vi].report_at_least(a_theta - self.margin(), &mut hits);
        for j in hits {
            f(j);
        }
    }

    /// Batch variant of [`query`](Self::query): answers every `(u, a_θ)`
    /// pair with the default worker pool ([`BuildOptions::default`]: all
    /// available cores, `DDS_THREADS` override). Results come back in input
    /// order and are **bit-identical** to sequential one-at-a-time queries,
    /// for every thread count — the index is read-only, so threads share it
    /// without coordination.
    pub fn query_batch(&self, queries: &[(Vec<f64>, f64)]) -> Vec<Vec<usize>> {
        self.query_batch_opts(queries, &BuildOptions::default())
    }

    /// [`query_batch`](Self::query_batch) with an explicit worker-pool
    /// configuration.
    pub fn query_batch_opts(
        &self,
        queries: &[(Vec<f64>, f64)],
        opts: &BuildOptions,
    ) -> Vec<Vec<usize>> {
        par_map(opts, queries, |_, (u, a)| self.query(u, *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    /// Three tiny datasets in the unit ball with known top scores along
    /// (1, 0): 0.9 / 0.5 / 0.1, and second-largest 0.8 / 0.4 / 0.05.
    fn synopses() -> Vec<ExactSynopsis> {
        vec![
            ExactSynopsis::new(vec![Point::two(0.9, 0.0), Point::two(0.8, 0.1)]),
            ExactSynopsis::new(vec![Point::two(0.5, 0.2), Point::two(0.4, -0.3)]),
            ExactSynopsis::new(vec![Point::two(0.1, 0.4), Point::two(0.05, 0.9)]),
        ]
    }

    #[test]
    fn top1_threshold_query() {
        let idx = PrefIndex::build(&synopses(), 1, PrefBuildParams::exact_centralized());
        let mut hits = idx.query(&[1.0, 0.0], 0.45);
        hits.sort_unstable();
        // ω_1 scores: 0.9, 0.5, 0.4·… dataset 2 top ≈ 0.1·/0.4-ish — only
        // 0 and 1 clear 0.45 (within the band possibly more; with exact
        // synopses and a net vector ≈ (1,0) the margin is ε).
        assert!(hits.contains(&0) && hits.contains(&1));
        // Dataset 2's ω_1 along (1,0) is 0.1 < 0.45 − slack → never reported.
        assert!(!hits.contains(&2));
    }

    #[test]
    fn k2_uses_second_largest() {
        let idx = PrefIndex::build(&synopses(), 2, PrefBuildParams::exact_centralized());
        // ω_2 along (1,0): 0.8, 0.4, 0.05.
        let hits = idx.query(&[1.0, 0.0], 0.7);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn recall_holds_on_random_directions() {
        let syns = synopses();
        let idx = PrefIndex::build(&syns, 1, PrefBuildParams::exact_centralized());
        let dirs = [[0.6, 0.8], [0.0, 1.0], [-1.0, 0.0], [0.707, -0.707]];
        for v in dirs {
            for a in [-0.5, 0.0, 0.3, 0.8] {
                let hits = idx.query(&v, a);
                for (i, s) in syns.iter().enumerate() {
                    let truth = s.exact_score(&v, 1);
                    if truth >= a {
                        assert!(hits.contains(&i), "missed {i} at v={v:?} a={a}");
                    }
                }
                // Band check.
                for &j in &hits {
                    let truth = syns[j].exact_score(&v, 1);
                    assert!(
                        truth >= a - idx.slack() - 1e-9,
                        "out of band: {j} truth={truth} a={a}"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_k_never_reports() {
        let idx = PrefIndex::build(&synopses(), 5, PrefBuildParams::exact_centralized());
        // All datasets have 2 points; ω_5 = −∞ everywhere.
        assert!(idx.query(&[1.0, 0.0], -10.0).is_empty());
    }
}
