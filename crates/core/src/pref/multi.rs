//! Pref with logical expressions over `m` threshold predicates —
//! Appendix D.1, Theorem D.4.
//!
//! The paper precomputes an `m`-dimensional range tree `T_V` for **every**
//! subset `V` of `m` net vectors (`O(ε^{-m(d-1)})` trees). We store the raw
//! per-direction score table (the same information) and materialize `T_V`
//! lazily on first use, memoized behind a lock — identical answers, and the
//! all-subsets preprocessing cost is only paid for direction tuples that
//! queries actually touch (documented in DESIGN.md §3). Disjunctions are
//! handled by unioning conjunction answers, as in Appendix C.4.

use super::PrefBuildParams;
use crate::pool::{par_map, BuildOptions};
use dds_geom::EpsNet;
use dds_rangetree::{BuildableIndex, KdTree, OrthoIndex, Region};
use dds_synopsis::PrefSynopsis;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Approximate Pref index for conjunctions of up to `m` threshold
/// predicates (Theorem D.4).
#[derive(Debug)]
pub struct PrefMultiIndex {
    net: EpsNet,
    k: usize,
    m: usize,
    eps: f64,
    delta: f64,
    n_datasets: usize,
    /// `scores[v][i]` = `γ_v^{(i)}` for net vector `v`, dataset `i`.
    scores: Vec<Vec<f64>>,
    /// Lazily materialized `T_V`, keyed by the slot-ordered net indices.
    cache: Mutex<HashMap<Vec<u32>, Arc<KdTree>>>,
}

impl PrefMultiIndex {
    /// Builds the score table (Algorithm 5 applied to every net vector).
    ///
    /// # Panics
    /// Panics if `synopses` is empty, `k == 0` or `m == 0`.
    pub fn build<S: PrefSynopsis>(
        synopses: &[S],
        k: usize,
        m: usize,
        params: PrefBuildParams,
    ) -> Self {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        assert!(k >= 1 && m >= 1);
        let dim = synopses[0].dim();
        let net = EpsNet::new(dim, params.eps);
        let scores = net
            .vectors()
            .iter()
            .map(|v| synopses.iter().map(|s| s.score(v, k)).collect())
            .collect();
        Self::assemble(net, k, m, params, synopses.len(), scores)
    }

    /// Worker-pool variant of [`build`](Self::build): the per-net-direction
    /// score rows are computed on `opts.threads` scoped threads.
    /// Bit-identical results for every thread count.
    ///
    /// # Panics
    /// Panics if `synopses` is empty, `k == 0` or `m == 0`.
    pub fn build_opts<S: PrefSynopsis + Sync>(
        synopses: &[S],
        k: usize,
        m: usize,
        params: PrefBuildParams,
        opts: &BuildOptions,
    ) -> Self {
        assert!(!synopses.is_empty(), "repository must be non-empty");
        assert!(k >= 1 && m >= 1);
        let dim = synopses[0].dim();
        let net = EpsNet::new(dim, params.eps);
        let scores = par_map(opts, net.vectors(), |_, v| {
            synopses.iter().map(|s| s.score(v, k)).collect()
        });
        Self::assemble(net, k, m, params, synopses.len(), scores)
    }

    fn assemble(
        net: EpsNet,
        k: usize,
        m: usize,
        params: PrefBuildParams,
        n_datasets: usize,
        scores: Vec<Vec<f64>>,
    ) -> Self {
        PrefMultiIndex {
            net,
            k,
            m,
            eps: params.eps,
            delta: params.delta,
            n_datasets,
            scores,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Predicate arity `m`.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// The rank `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed datasets.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// Query margin `ε + δ`.
    pub fn margin(&self) -> f64 {
        self.eps + self.delta
    }

    /// Guarantee band per predicate: reported `j` has
    /// `ω_k(P_j, u_ℓ) ≥ a_ℓ − 2(ε + δ)` for every ℓ.
    pub fn slack(&self) -> f64 {
        2.0 * self.margin()
    }

    /// Number of memoized direction tuples.
    pub fn materialized_trees(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// Answers a conjunction of up to `m` threshold predicates
    /// `(u_ℓ, a_ℓ)`.
    ///
    /// # Panics
    /// Panics if `queries` is empty or longer than `m`.
    pub fn query(&self, queries: &[(Vec<f64>, f64)]) -> Vec<usize> {
        assert!(
            !queries.is_empty() && queries.len() <= self.m,
            "conjunction arity must be in 1..={}",
            self.m
        );
        // Snap every query vector to the net; the tuple of net indices keys
        // the memoized structure. Shorter conjunctions reuse slot 0's
        // direction with a trivially low threshold.
        let mut key: Vec<u32> = queries
            .iter()
            .map(|(u, _)| {
                assert_eq!(u.len(), self.net.dim(), "query vector dimension mismatch");
                self.net.nearest(u).0 as u32
            })
            .collect();
        while key.len() < self.m {
            key.push(key[0]);
        }
        let tree = self.materialize(&key);
        let mut region = Region::all(self.m);
        for (l, (_, a)) in queries.iter().enumerate() {
            region = region.with_lo(l, a - self.margin(), false);
        }
        let mut out = Vec::new();
        tree.report(&region, &mut out);
        out
    }

    fn materialize(&self, key: &[u32]) -> Arc<KdTree> {
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        if let Some(t) = cache.get(key) {
            return Arc::clone(t);
        }
        let points: Vec<Vec<f64>> = (0..self.n_datasets)
            .map(|i| key.iter().map(|&v| self.scores[v as usize][i]).collect())
            .collect();
        let tree = Arc::new(KdTree::build(self.m, points));
        cache.insert(key.to_vec(), Arc::clone(&tree));
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    /// Datasets with controlled top-1 scores along x and y:
    ///  ds0: strong on x (0.9), weak on y (0.1)
    ///  ds1: strong on both (0.7, 0.7)
    ///  ds2: weak on x (0.1), strong on y (0.9)
    fn synopses() -> Vec<ExactSynopsis> {
        vec![
            ExactSynopsis::new(vec![Point::two(0.9, 0.0), Point::two(0.0, 0.1)]),
            ExactSynopsis::new(vec![Point::two(0.7, 0.0), Point::two(0.0, 0.7)]),
            ExactSynopsis::new(vec![Point::two(0.1, 0.0), Point::two(0.0, 0.9)]),
        ]
    }

    #[test]
    fn conjunction_selects_the_balanced_dataset() {
        let idx = PrefMultiIndex::build(&synopses(), 1, 2, PrefBuildParams::exact_centralized());
        let hits = idx.query(&[(vec![1.0, 0.0], 0.5), (vec![0.0, 1.0], 0.5)]);
        assert_eq!(hits, vec![1], "only ds1 clears 0.5 on both axes");
    }

    #[test]
    fn single_slot_conjunction() {
        let idx = PrefMultiIndex::build(&synopses(), 1, 2, PrefBuildParams::exact_centralized());
        let mut hits = idx.query(&[(vec![1.0, 0.0], 0.6)]);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn trees_are_memoized() {
        let idx = PrefMultiIndex::build(&synopses(), 1, 2, PrefBuildParams::exact_centralized());
        assert_eq!(idx.materialized_trees(), 0);
        let q = [(vec![1.0, 0.0], 0.5), (vec![0.0, 1.0], 0.5)];
        let _ = idx.query(&q);
        assert_eq!(idx.materialized_trees(), 1);
        let _ = idx.query(&q);
        assert_eq!(idx.materialized_trees(), 1, "same tuple reuses the tree");
        let _ = idx.query(&[(vec![0.0, 1.0], 0.5), (vec![1.0, 0.0], 0.5)]);
        assert_eq!(idx.materialized_trees(), 2, "slot order matters");
    }

    #[test]
    fn recall_and_band_on_conjunctions() {
        let syns = synopses();
        let idx = PrefMultiIndex::build(&syns, 1, 2, PrefBuildParams::exact_centralized());
        let queries = [(vec![0.6, 0.8], 0.3), (vec![0.8, -0.6], -0.2)];
        let hits = idx.query(&queries);
        for (i, s) in syns.iter().enumerate() {
            let qualifies = queries.iter().all(|(v, a)| s.exact_score(v, 1) >= *a);
            if qualifies {
                assert!(hits.contains(&i), "missed qualifying dataset {i}");
            }
        }
        for &j in &hits {
            for (v, a) in &queries {
                let truth = syns[j].exact_score(v, 1);
                assert!(truth >= a - idx.slack() - 1e-9, "band violated for {j}");
            }
        }
    }
}
