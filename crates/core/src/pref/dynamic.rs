//! Dynamic Pref index — Remark 1 after Theorem 5.4: synopsis insertion in
//! `O(Λ_S · ε^{-d+1} + log N)` and deletion in `O(ε^{-d+1} log N)`, via an
//! ordered score set per net vector.

use super::PrefBuildParams;
use dds_geom::EpsNet;
use dds_rangetree::DynScores;
use dds_synopsis::PrefSynopsis;
use std::collections::HashMap;

/// Stable handle of an inserted synopsis.
pub type SynopsisHandle = u64;

/// Dynamic top-k preference index over an evolving set of synopses.
#[derive(Clone, Debug)]
pub struct DynamicPrefIndex {
    net: EpsNet,
    k: usize,
    eps: f64,
    delta: f64,
    /// One ordered score set per net vector.
    trees: Vec<DynScores>,
    /// Handle → per-net-vector scores (needed to delete exact entries).
    scores_of: HashMap<SynopsisHandle, Vec<f64>>,
    next_handle: SynopsisHandle,
}

impl DynamicPrefIndex {
    /// Creates an empty dynamic index for `dim`-dimensional datasets with
    /// rank `k`.
    pub fn new(dim: usize, k: usize, params: PrefBuildParams) -> Self {
        assert!(dim >= 1 && k >= 1);
        let net = EpsNet::new(dim, params.eps);
        let trees = vec![DynScores::new(); net.len()];
        DynamicPrefIndex {
            net,
            k,
            eps: params.eps,
            delta: params.delta,
            trees,
            scores_of: HashMap::new(),
            next_handle: 0,
        }
    }

    /// Number of live synopses.
    pub fn len(&self) -> usize {
        self.scores_of.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.scores_of.is_empty()
    }

    /// Query margin `ε + δ`.
    pub fn margin(&self) -> f64 {
        self.eps + self.delta
    }

    /// Guarantee band `2(ε + δ)`.
    pub fn slack(&self) -> f64 {
        2.0 * self.margin()
    }

    /// Inserts a synopsis: evaluates `Score(v, k)` on every net vector.
    pub fn insert_synopsis<S: PrefSynopsis>(&mut self, synopsis: &S) -> SynopsisHandle {
        assert_eq!(
            synopsis.dim(),
            self.net.dim(),
            "synopsis dimension mismatch"
        );
        let handle = self.next_handle;
        self.next_handle += 1;
        let scores: Vec<f64> = self
            .net
            .vectors()
            .iter()
            .map(|v| synopsis.score(v, self.k))
            .collect();
        for (tree, &s) in self.trees.iter_mut().zip(&scores) {
            tree.insert(handle as usize, s);
        }
        self.scores_of.insert(handle, scores);
        handle
    }

    /// Removes a synopsis. Returns `false` for unknown handles.
    pub fn remove_synopsis(&mut self, handle: SynopsisHandle) -> bool {
        let Some(scores) = self.scores_of.remove(&handle) else {
            return false;
        };
        for (tree, &s) in self.trees.iter_mut().zip(&scores) {
            let removed = tree.remove(handle as usize, s);
            debug_assert!(removed, "score table out of sync");
        }
        true
    }

    /// Answers `Π = Pred_{M_{u,k}, [a_θ, ∞)}` over live synopses.
    pub fn query(&self, u: &[f64], a_theta: f64) -> Vec<SynopsisHandle> {
        assert_eq!(u.len(), self.net.dim(), "query vector dimension mismatch");
        let (vi, _) = self.net.nearest(u);
        let mut hits = Vec::new();
        self.trees[vi].report_at_least(a_theta - self.margin(), &mut hits);
        hits.into_iter().map(|h| h as SynopsisHandle).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_geom::Point;
    use dds_synopsis::ExactSynopsis;

    fn syn(pts: &[(f64, f64)]) -> ExactSynopsis {
        ExactSynopsis::new(pts.iter().map(|&(x, y)| Point::two(x, y)).collect())
    }

    #[test]
    fn insert_query_remove() {
        let mut idx = DynamicPrefIndex::new(2, 1, PrefBuildParams::exact_centralized());
        let h0 = idx.insert_synopsis(&syn(&[(0.9, 0.0)]));
        let h1 = idx.insert_synopsis(&syn(&[(0.2, 0.1)]));
        let hits = idx.query(&[1.0, 0.0], 0.5);
        assert_eq!(hits, vec![h0]);
        assert!(idx.remove_synopsis(h0));
        assert!(!idx.remove_synopsis(h0));
        assert!(idx.query(&[1.0, 0.0], 0.5).is_empty());
        let hits = idx.query(&[1.0, 0.0], 0.0);
        assert_eq!(hits, vec![h1]);
    }

    #[test]
    fn churn_consistency() {
        let mut idx = DynamicPrefIndex::new(2, 1, PrefBuildParams::exact_centralized());
        let mut live: Vec<(SynopsisHandle, f64)> = Vec::new();
        for i in 0..30 {
            let x = (i as f64 + 1.0) / 31.0;
            let h = idx.insert_synopsis(&syn(&[(x, 0.0)]));
            live.push((h, x));
            if i % 3 == 2 {
                let (h, _) = live.remove(0);
                assert!(idx.remove_synopsis(h));
            }
        }
        let a = 0.5;
        let mut got = idx.query(&[1.0, 0.0], a);
        got.sort_unstable();
        let mut want: Vec<SynopsisHandle> = live
            .iter()
            .filter(|(_, x)| *x >= a - idx.slack())
            .map(|(h, _)| *h)
            .collect();
        // Recall: everything with x >= a must be present.
        for (h, x) in &live {
            if *x >= a {
                assert!(got.contains(h), "missed handle {h} with score {x}");
            }
        }
        want.sort_unstable();
        // All reported are within the band.
        for h in &got {
            assert!(want.contains(h), "out-of-band report {h}");
        }
    }
}
