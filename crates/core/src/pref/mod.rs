//! Preference-aware indexing (the Pref problem, Section 5 and Appendix D).
//!
//! | Type | Paper result | Predicate shape |
//! |------|--------------|-----------------|
//! | [`PrefIndex`] | Theorem 5.4 (Algorithms 5–6) | one `ω_k(P, v) ≥ a_θ` |
//! | [`PrefMultiIndex`] | Theorem D.4 | conjunctions of `m` threshold predicates |
//! | [`DynamicPrefIndex`] | Remark 1 after Theorem 5.4 | with synopsis insertion/deletion |
//!
//! Guarantee shape: every dataset with `ω_k(P_i, v) ≥ a_θ` is reported, and
//! every reported `j` has `ω_k(P_j, v) ≥ a_θ − 2(ε + δ)` (Lemma 5.2),
//! assuming all points lie in the unit ball.

mod dynamic;
mod index;
mod multi;

pub use dynamic::DynamicPrefIndex;
pub use index::{PrefBuildParams, PrefIndex};
pub use multi::PrefMultiIndex;
