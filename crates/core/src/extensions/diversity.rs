//! Diversity dataset search (Section 6, second future-work query class):
//! given a query rectangle `R` and threshold `τ`, report all datasets with
//! `div(P_j ∩ R) ≥ τ`, where `div` is the remote-pair diversity
//! `diam(P_j ∩ R) = max_{p,p' ∈ P_j ∩ R} dist(p, p')` ([33] in the paper).
//!
//! The same k-center coresets as the NN extension work here: for the
//! coreset `C_j` with covering radius `r_j`,
//! `diam(C_j ∩ R⁺) − 2 r_j ≤ diam(P_j ∩ R) ≤ diam(C_j ∩ R⁻ ...)` — we use
//! the conservative direction needed for recall: every point of
//! `P_j ∩ R` has a coreset representative within `r_j` (possibly just
//! outside `R`), so evaluating the diameter of the coreset points inside
//! the `r_j`-padded rectangle and adding the `2 r_j` slack to the report
//! band preserves the no-false-negative guarantee with a per-dataset
//! additive band of `2 r_j` — the Remark-2 shape again.

use dds_geom::{Point, Rect};
use dds_rangetree::{BuildableIndex, KdTree, OrthoIndex, Region};

/// Diversity (remote-pair / diameter) dataset index.
#[derive(Clone, Debug)]
pub struct DiversityDatasetIndex {
    dim: usize,
    n_datasets: usize,
    radius: Vec<f64>,
    tree: KdTree,
    owner: Vec<u32>,
    coreset_points: Vec<Point>,
}

impl DiversityDatasetIndex {
    /// Builds the index with `coreset_size` k-center points per dataset.
    ///
    /// # Panics
    /// Panics if `datasets` is empty or dimensions differ.
    pub fn build(datasets: &[Vec<Point>], coreset_size: usize) -> Self {
        assert!(!datasets.is_empty(), "repository must be non-empty");
        assert!(coreset_size >= 2, "diameter needs at least two centers");
        let dim = datasets[0][0].dim();
        let mut all: Vec<Vec<f64>> = Vec::new();
        let mut owner: Vec<u32> = Vec::new();
        let mut coreset_points: Vec<Point> = Vec::new();
        let mut radius = Vec::with_capacity(datasets.len());
        for (i, pts) in datasets.iter().enumerate() {
            assert!(!pts.is_empty(), "datasets must be non-empty");
            let (centers, r) = super::nn::gonzalez(pts, coreset_size);
            radius.push(r);
            for c in centers {
                all.push(c.as_slice().to_vec());
                owner.push(i as u32);
                coreset_points.push(c);
            }
        }
        DiversityDatasetIndex {
            dim,
            n_datasets: datasets.len(),
            radius,
            tree: KdTree::build(dim, all),
            owner,
            coreset_points,
        }
    }

    /// The per-dataset additive band `2 r_j`.
    pub fn band_for(&self, j: usize) -> f64 {
        2.0 * self.radius[j]
    }

    /// Reports every dataset with `diam(P_j ∩ R) ≥ τ` (guaranteed), plus
    /// possibly datasets within the per-dataset band
    /// (`diam ≥ τ − 2·band_for(j)`).
    pub fn query(&self, r: &Rect, tau: f64) -> Vec<usize> {
        assert_eq!(r.dim(), self.dim, "query rectangle dimension mismatch");
        assert!(tau >= 0.0, "diversity threshold must be non-negative");
        // Gather candidate coreset points per dataset from the padded box
        // (padding by the dataset's own radius is over-approximated by the
        // max radius; the exact per-dataset band check happens below).
        let r_max = self.radius.iter().fold(0.0f64, |a, &b| a.max(b));
        let lo: Vec<f64> = r.lo().iter().map(|x| x - r_max).collect();
        let hi: Vec<f64> = r.hi().iter().map(|x| x + r_max).collect();
        let region = Region::closed(lo, hi);
        let mut per_dataset: Vec<Vec<usize>> = vec![Vec::new(); self.n_datasets];
        self.tree.report_while(&region, &mut |id| {
            per_dataset[self.owner[id] as usize].push(id);
            true
        });
        let mut out = Vec::new();
        for (j, ids) in per_dataset.iter().enumerate() {
            if ids.len() < 2 {
                continue;
            }
            // Keep only representatives within this dataset's own padding.
            let padded = r.padded(self.radius[j]);
            let pts: Vec<&Point> = ids
                .iter()
                .map(|&id| &self.coreset_points[id])
                .filter(|p| padded.contains_point(p))
                .collect();
            if pts.len() < 2 {
                continue;
            }
            let mut diam: f64 = 0.0;
            for a in 0..pts.len() {
                for b in (a + 1)..pts.len() {
                    diam = diam.max(pts[a].dist(pts[b]));
                }
            }
            // Representatives can sit up to r_j outside R and up to r_j away
            // from the true points: diam(C ∩ R_padded) ≤ diam(P∩R) + 4 r_j is
            // conservative both ways; report with the recall-safe bar.
            if diam + 2.0 * self.radius[j] >= tau {
                out.push(j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_blob_dataset(gap: f64, rng: &mut StdRng) -> Vec<Point> {
        (0..200)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { gap };
                Point::two(base + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            })
            .collect()
    }

    #[test]
    fn diverse_datasets_are_found() {
        let mut rng = StdRng::seed_from_u64(1);
        // Dataset 0: spread 50 apart. Dataset 1: a single tight blob.
        let datasets = vec![
            two_blob_dataset(50.0, &mut rng),
            two_blob_dataset(0.0, &mut rng),
        ];
        let idx = DiversityDatasetIndex::build(&datasets, 16);
        let r = Rect::from_bounds(&[-5.0, -5.0], &[60.0, 5.0]);
        let hits = idx.query(&r, 30.0);
        assert!(hits.contains(&0), "wide dataset must be reported");
        assert!(!hits.contains(&1), "tight blob is far below the bar");
    }

    #[test]
    fn recall_and_band_on_random_thresholds() {
        let mut rng = StdRng::seed_from_u64(2);
        let datasets: Vec<Vec<Point>> = (0..12)
            .map(|i| two_blob_dataset(i as f64 * 5.0, &mut rng))
            .collect();
        let idx = DiversityDatasetIndex::build(&datasets, 24);
        let r = Rect::from_bounds(&[-10.0, -10.0], &[100.0, 10.0]);
        for _ in 0..10 {
            let tau = rng.gen_range(1.0..60.0);
            let hits = idx.query(&r, tau);
            for (j, pts) in datasets.iter().enumerate() {
                let inside: Vec<&Point> = pts.iter().filter(|p| r.contains_point(p)).collect();
                let mut diam: f64 = 0.0;
                for a in 0..inside.len() {
                    for b in (a + 1)..inside.len() {
                        diam = diam.max(inside[a].dist(inside[b]));
                    }
                }
                if diam >= tau {
                    assert!(
                        hits.contains(&j),
                        "missed dataset {j}: diam {diam} tau {tau}"
                    );
                }
                if hits.contains(&j) {
                    assert!(
                        diam >= tau - 2.0 * idx.band_for(j) - 2.0 * idx.band_for(j) - 1e-9,
                        "dataset {j} far out of band: diam {diam} tau {tau}"
                    );
                }
            }
        }
    }
}
