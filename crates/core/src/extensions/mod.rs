//! Extensions from the paper's future-work section (Section 6).
//!
//! Section 6 proposes further distribution-aware query classes derivable
//! from the framework, naming **nearest-neighbor queries** (report all
//! datasets with `dist(q, P_j) ≤ τ`) and **diversity queries**, and notes
//! the missing ingredient is a small coreset with multiplicative
//! guarantees. Following the paper's own observation that additive
//! approximations are achievable (it cites RaBitQ-style additive coresets
//! [26]), these modules implement both query classes with *measured
//! additive bands*, mirroring the ε + 2δ guarantee shape of the main
//! results:
//!
//! * [`NnDatasetIndex`] — k-center (Gonzalez) coresets with measured
//!   covering radius `r_i`; reports a superset of the qualifying datasets,
//!   every report within `dist(q, P_j) ≤ τ + r_j`.
//! * [`DiversityDatasetIndex`] — remote-pair diversity `div(P ∩ R) =
//!   diam(P ∩ R)` estimated on the same coresets, with the covering radius
//!   as the additive band.

mod diversity;
mod nn;

pub use diversity::DiversityDatasetIndex;
pub use nn::NnDatasetIndex;
