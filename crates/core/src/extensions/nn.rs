//! Nearest-neighbor dataset search (Section 6, first future-work query
//! class): given a query point `q` and threshold `τ`, report all datasets
//! with `dist(q, P_j) ≤ τ`.
//!
//! Per dataset we build a k-center coreset `C_j ⊆ P_j` with the classic
//! Gonzalez farthest-point heuristic and record its *covering radius*
//! `r_j = max_{p ∈ P_j} dist(p, C_j)` exactly. For every query point,
//! `dist(q, C_j) − r_j ≤ dist(q, P_j) ≤ dist(q, C_j)`, so reporting all
//! datasets with `dist(q, C_j) ≤ τ + r_j` yields the familiar guarantee
//! shape: no false negatives, and every reported dataset satisfies the
//! predicate up to the additive band `r_j` (per-dataset, like Remark 2).
//!
//! All coreset points live in one kd-tree; a query runs a single filtered
//! traversal over the ball `[q − τ − r_max, q + τ + r_max]` (boxed), with
//! exact distance and per-dataset band checks per candidate.

use dds_geom::Point;
use dds_rangetree::{BuildableIndex, KdTree, OrthoIndex, Region};

/// Nearest-neighbor dataset index (future work, Section 6).
///
/// ```
/// use dds_core::extensions::NnDatasetIndex;
/// use dds_geom::Point;
///
/// let datasets = vec![
///     vec![Point::two(0.0, 0.0), Point::two(1.0, 0.0)],
///     vec![Point::two(50.0, 50.0)],
/// ];
/// let index = NnDatasetIndex::build(&datasets, 4);
/// // Tiny datasets are their own coresets: answers are exact (band 0).
/// assert_eq!(index.query(&[0.5, 0.0], 1.0), vec![0]);
/// assert_eq!(index.band(), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct NnDatasetIndex {
    dim: usize,
    n_datasets: usize,
    /// Covering radius per dataset.
    radius: Vec<f64>,
    r_max: f64,
    /// All coreset points, one kd-tree.
    tree: KdTree,
    owner: Vec<u32>,
    coreset_points: Vec<Point>,
}

impl NnDatasetIndex {
    /// Builds the index with `coreset_size` centers per dataset.
    ///
    /// # Panics
    /// Panics if `datasets` is empty, dimensions differ, or
    /// `coreset_size == 0`.
    pub fn build(datasets: &[Vec<Point>], coreset_size: usize) -> Self {
        assert!(!datasets.is_empty(), "repository must be non-empty");
        assert!(coreset_size >= 1, "coreset size must be positive");
        let dim = datasets[0][0].dim();
        let mut all: Vec<Vec<f64>> = Vec::new();
        let mut owner: Vec<u32> = Vec::new();
        let mut coreset_points: Vec<Point> = Vec::new();
        let mut radius = Vec::with_capacity(datasets.len());
        let mut r_max: f64 = 0.0;
        for (i, pts) in datasets.iter().enumerate() {
            assert!(!pts.is_empty(), "datasets must be non-empty");
            assert!(pts.iter().all(|p| p.dim() == dim), "schema mismatch");
            let (centers, r) = gonzalez(pts, coreset_size);
            radius.push(r);
            r_max = r_max.max(r);
            for c in centers {
                all.push(c.as_slice().to_vec());
                owner.push(i as u32);
                coreset_points.push(c);
            }
        }
        NnDatasetIndex {
            dim,
            n_datasets: datasets.len(),
            radius,
            r_max,
            tree: KdTree::build(dim, all),
            owner,
            coreset_points,
        }
    }

    /// Number of indexed datasets.
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// The covering radius (additive band) of dataset `j`.
    pub fn band_for(&self, j: usize) -> f64 {
        self.radius[j]
    }

    /// The worst additive band `max_j r_j`.
    pub fn band(&self) -> f64 {
        self.r_max
    }

    /// Reports every dataset with `dist(q, P_j) ≤ τ` (guaranteed) plus
    /// possibly datasets with `dist(q, P_j) ≤ τ + r_j` (the band).
    ///
    /// # Panics
    /// Panics on a dimension mismatch or negative τ.
    pub fn query(&self, q: &[f64], tau: f64) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "query point dimension mismatch");
        assert!(tau >= 0.0, "distance threshold must be non-negative");
        // Candidate box: the largest relevant ball, boxed.
        let reach = tau + self.r_max;
        let lo: Vec<f64> = q.iter().map(|x| x - reach).collect();
        let hi: Vec<f64> = q.iter().map(|x| x + reach).collect();
        let region = Region::closed(lo, hi);
        let mut reported = vec![false; self.n_datasets];
        let mut out = Vec::new();
        self.tree.report_while(&region, &mut |id| {
            let j = self.owner[id] as usize;
            if !reported[j] {
                let d = self.coreset_points[id].dist(&Point::new(q.to_vec()));
                if d <= tau + self.radius[j] {
                    reported[j] = true;
                    out.push(j);
                }
            }
            true
        });
        out
    }
}

/// Gonzalez farthest-point k-center: returns the centers and the exact
/// covering radius of the input under them.
pub(crate) fn gonzalez(pts: &[Point], k: usize) -> (Vec<Point>, f64) {
    let mut centers: Vec<Point> = vec![pts[0].clone()];
    // dist_to_nearest_center per point.
    let mut dist: Vec<f64> = pts.iter().map(|p| p.dist(&centers[0])).collect();
    while centers.len() < k.min(pts.len()) {
        let (far_idx, far_d) = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, d)| (i, *d))
            .expect("non-empty");
        if far_d == 0.0 {
            break; // every point is already a center
        }
        let c = pts[far_idx].clone();
        for (p, d) in pts.iter().zip(dist.iter_mut()) {
            *d = d.min(p.dist(&c));
        }
        centers.push(c);
    }
    let radius = dist.iter().fold(0.0f64, |a, &b| a.max(b));
    (centers, radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster(center: (f64, f64), n: usize, spread: f64, rng: &mut StdRng) -> Vec<Point> {
        (0..n)
            .map(|_| {
                Point::two(
                    center.0 + rng.gen_range(-spread..spread),
                    center.1 + rng.gen_range(-spread..spread),
                )
            })
            .collect()
    }

    #[test]
    fn gonzalez_radius_shrinks_with_k() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = cluster((0.0, 0.0), 300, 10.0, &mut rng);
        let (_, r2) = gonzalez(&pts, 2);
        let (_, r16) = gonzalez(&pts, 16);
        let (_, r64) = gonzalez(&pts, 64);
        assert!(r16 < r2 && r64 < r16, "radii {r2} {r16} {r64}");
        // The covering radius really covers.
        let (centers, r) = gonzalez(&pts, 8);
        for p in &pts {
            let d = centers
                .iter()
                .map(|c| p.dist(c))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= r + 1e-9);
        }
    }

    #[test]
    fn nn_recall_and_band() {
        let mut rng = StdRng::seed_from_u64(2);
        let datasets: Vec<Vec<Point>> = (0..40)
            .map(|i| {
                let cx = (i % 8) as f64 * 25.0;
                let cy = (i / 8) as f64 * 25.0;
                cluster((cx, cy), 200, 4.0, &mut rng)
            })
            .collect();
        let idx = NnDatasetIndex::build(&datasets, 16);
        for _ in 0..30 {
            let q = vec![rng.gen_range(0.0..200.0), rng.gen_range(0.0..125.0)];
            let tau = rng.gen_range(1.0..30.0);
            let hits = idx.query(&q, tau);
            let qp = Point::new(q.clone());
            for (j, pts) in datasets.iter().enumerate() {
                let d = pts
                    .iter()
                    .map(|p| p.dist(&qp))
                    .fold(f64::INFINITY, f64::min);
                if d <= tau {
                    assert!(
                        hits.contains(&j),
                        "missed dataset {j} at dist {d} tau {tau}"
                    );
                }
            }
            for &j in &hits {
                let d = datasets[j]
                    .iter()
                    .map(|p| p.dist(&qp))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    d <= tau + idx.band_for(j) + 1e-9,
                    "dataset {j} out of band: dist {d} tau {tau} band {}",
                    idx.band_for(j)
                );
            }
        }
    }

    #[test]
    fn larger_coresets_tighten_the_band() {
        let mut rng = StdRng::seed_from_u64(3);
        let datasets: Vec<Vec<Point>> = (0..10)
            .map(|_| cluster((0.0, 0.0), 400, 20.0, &mut rng))
            .collect();
        let coarse = NnDatasetIndex::build(&datasets, 4);
        let fine = NnDatasetIndex::build(&datasets, 64);
        assert!(fine.band() < coarse.band());
    }

    #[test]
    fn no_duplicates_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(4);
        let datasets: Vec<Vec<Point>> = (0..10)
            .map(|_| cluster((0.0, 0.0), 100, 5.0, &mut rng))
            .collect();
        let idx = NnDatasetIndex::build(&datasets, 8);
        let a = idx.query(&[0.0, 0.0], 3.0);
        let b = idx.query(&[0.0, 0.0], 3.0);
        assert_eq!(a, b);
        let mut d = a.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(a.len(), d.len());
    }
}
