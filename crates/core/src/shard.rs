//! Sharded repository service: scatter/gather over per-shard engines.
//!
//! The ROADMAP north-star is a catalog holding millions of datasets; one
//! [`MixedQueryEngine`] per repository *shard* keeps build times and index
//! memory per-shard-sized while queries fan out over all of them. The
//! `&self` query paths make the fan-out trivial: every shard engine is
//! read-shared across the worker pool with no locks.
//!
//! [`ShardedEngine`] owns the shard engines plus a **shard map** — each
//! shard carries the **stable global dataset ids** of its members, so hits
//! translate from shard-local indexes to ids that survive adding and
//! rebuilding shards (a shard-local index is meaningless outside its
//! shard; a [`GlobalId`] names the same dataset forever).
//!
//! Gather is canonicalized: hits come back in **ascending global-id
//! order**, and per-dataset sampling RNGs are seeded by **global id**
//! (not shard-local position, via `PtileBuildParams::seed_ids`), so a
//! dataset draws the same sample wherever it lands. The answer is then
//! independent of the thread count unconditionally, and of the shard
//! count/assignment as well once the φ-split is anchored
//! (`PtileBuildParams::with_phi_datasets`, or any build where every
//! dataset's support is used exactly — ε_i = 0 — which needs no
//! anchoring). `tests/shard_equivalence.rs` pins both regimes against a
//! single unsharded engine; without φ anchoring, a sampled build's
//! per-dataset sample *size* depends on the local shard size, so answers
//! agree with the unsharded engine only up to each dataset's guarantee
//! band.
//!
//! Each shard keeps its own cross-call [`MaskCache`];
//! [`rebuild_shard`](ShardedEngine::rebuild_shard) carries the cache over
//! to the replacement engine and bumps its generation, so a rebuild
//! invalidates **only that shard's entries** while every other shard keeps
//! serving cached masks.

use crate::cache::MaskCache;
use crate::engine::{EngineError, MixedQueryEngine};
use crate::framework::{LogicalExpr, Repository};
use crate::pool::{par_map_with, BuildOptions};
use crate::pref::PrefBuildParams;
use crate::ptile::PtileBuildParams;
use crate::scratch::QueryScratch;
use std::collections::HashSet;
use std::sync::Arc;

/// A stable dataset identifier: assigned at ingest, never reinterpreted
/// when shards are added or rebuilt (unlike a shard-local index).
pub type GlobalId = u64;

/// One repository shard: its engine plus the shard map back to global ids.
#[derive(Debug)]
struct Shard {
    engine: MixedQueryEngine,
    /// `global_ids[local]` is the stable id of the shard's `local`-th
    /// dataset — the gather-side translation table.
    global_ids: Vec<GlobalId>,
}

/// A sharded mixed-query service: one [`MixedQueryEngine`] per repository
/// shard, scatter/gather query paths, stable [`GlobalId`] answers and
/// per-shard cross-call [`MaskCache`]s.
///
/// ```
/// use dds_core::framework::{Dataset, LogicalExpr, Predicate, Repository};
/// use dds_core::pref::PrefBuildParams;
/// use dds_core::ptile::PtileBuildParams;
/// use dds_core::shard::ShardedEngine;
/// use dds_geom::Rect;
///
/// let mut svc = ShardedEngine::new(
///     &[1],
///     PtileBuildParams::exact_centralized(),
///     PrefBuildParams::exact_centralized(),
/// );
/// // Two ingest batches become two shards; ids are caller-assigned.
/// svc.add_shard(
///     &Repository::new(vec![Dataset::from_rows("a", vec![vec![1.0], vec![2.0]])]),
///     &[10],
/// );
/// svc.add_shard(
///     &Repository::new(vec![Dataset::from_rows("b", vec![vec![1.5], vec![50.0]])]),
///     &[20],
/// );
/// let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
///     Rect::interval(0.0, 3.0),
///     0.9,
/// ));
/// // Both of dataset 10's points are in [0, 3]; only half of 20's.
/// assert_eq!(svc.query(&expr), Ok(vec![10]));
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    /// Every global id currently served, for uniqueness enforcement.
    ids_in_use: HashSet<GlobalId>,
    /// Build parameters shared by every shard engine, so answers cannot
    /// drift between shards built at different times.
    ks: Vec<usize>,
    ptile_params: PtileBuildParams,
    pref_params: PrefBuildParams,
    /// Per-shard mask-cache bound (entries, not bytes).
    cache_capacity: usize,
}

impl ShardedEngine {
    /// An empty service; shards arrive via [`add_shard`](Self::add_shard).
    /// Every shard engine is built with these parameters and Pref ranks,
    /// and a default-capacity [`MaskCache`]. Any `seed_ids` on
    /// `ptile_params` are replaced per shard with the shard's global ids
    /// (stable-identity sampling); set
    /// `ptile_params.with_phi_datasets(catalog_size)` to anchor sampled
    /// builds to a declared catalog size (see the module docs).
    ///
    /// # Panics
    /// Panics if `ks` is empty.
    pub fn new(ks: &[usize], ptile_params: PtileBuildParams, pref_params: PrefBuildParams) -> Self {
        assert!(!ks.is_empty(), "need at least one preference rank");
        ShardedEngine {
            shards: Vec::new(),
            ids_in_use: HashSet::new(),
            ks: ks.to_vec(),
            ptile_params,
            pref_params,
            cache_capacity: crate::cache::DEFAULT_MASK_CACHE_CAPACITY,
        }
    }

    /// Sets the per-shard mask-cache capacity (builder-style; applies to
    /// shards added afterwards).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "mask cache needs capacity >= 1");
        self.cache_capacity = capacity;
        self
    }

    /// Ingests one shard with the default worker pool: builds its engine
    /// and records `global_ids[i]` as the stable id of `repo`'s `i`-th
    /// dataset. Returns the shard's index (for
    /// [`rebuild_shard`](Self::rebuild_shard)).
    ///
    /// # Panics
    /// Panics if `global_ids.len() != repo.len()` or any id is already
    /// served by this engine.
    pub fn add_shard(&mut self, repo: &Repository, global_ids: &[GlobalId]) -> usize {
        self.add_shard_opts(repo, global_ids, &BuildOptions::default())
    }

    /// [`add_shard`](Self::add_shard) with an explicit worker-pool
    /// configuration for the build.
    pub fn add_shard_opts(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> usize {
        // Validate, then build (both can panic), then commit — a panicking
        // ingest leaves the service state untouched.
        self.validate_ids(repo, global_ids, None);
        let cache = Arc::new(MaskCache::new(self.cache_capacity));
        let engine = self
            .build_engine(repo, global_ids, opts)
            .with_mask_cache(cache);
        self.ids_in_use.extend(global_ids.iter().copied());
        self.shards.push(Shard {
            engine,
            global_ids: global_ids.to_vec(),
        });
        self.shards.len() - 1
    }

    /// Replaces shard `shard`'s contents (incremental ingest: a data
    /// refresh re-lands the shard). The replacement engine **inherits the
    /// shard's mask cache with its generation bumped**: the shard's stale
    /// masks are invalidated (and its hit/miss accounting continues),
    /// while every other shard's cache is untouched.
    ///
    /// # Panics
    /// Panics if `shard` is out of range, `global_ids.len() != repo.len()`
    /// or any id is already served by a *different* shard (re-using the
    /// replaced shard's ids is the normal case).
    pub fn rebuild_shard(&mut self, shard: usize, repo: &Repository, global_ids: &[GlobalId]) {
        self.rebuild_shard_opts(shard, repo, global_ids, &BuildOptions::default());
    }

    /// [`rebuild_shard`](Self::rebuild_shard) with an explicit worker-pool
    /// configuration for the build.
    pub fn rebuild_shard_opts(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) {
        assert!(shard < self.shards.len(), "no such shard: {shard}");
        // Validate against every *other* shard, then build — both can
        // panic, and until the commit below the old shard keeps serving
        // with intact uniqueness bookkeeping.
        self.validate_ids(repo, global_ids, Some(shard));
        let cache = Arc::clone(self.shards[shard].engine.mask_cache());
        let engine = self
            .build_engine(repo, global_ids, opts)
            .with_mask_cache(cache);
        // Commit: swap ids, invalidate the carried-over cache, install.
        for id in &self.shards[shard].global_ids {
            self.ids_in_use.remove(id);
        }
        self.ids_in_use.extend(global_ids.iter().copied());
        self.shards[shard].engine.mask_cache().invalidate();
        self.shards[shard] = Shard {
            engine,
            global_ids: global_ids.to_vec(),
        };
    }

    /// Number of shards currently served.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total datasets across all shards.
    pub fn n_datasets(&self) -> usize {
        self.shards.iter().map(|s| s.engine.n_datasets()).sum()
    }

    /// The stable ids of shard `shard`'s datasets, in shard-local order.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn global_ids(&self, shard: usize) -> &[GlobalId] {
        &self.shards[shard].global_ids
    }

    /// Read access to shard `shard`'s engine (per-shard instrumentation:
    /// its `index_queries`, its [`MaskCache`] bounds and counters). Hits
    /// returned by the shard engine directly are shard-local — translate
    /// them through [`global_ids`](Self::global_ids) before mixing with
    /// service-level answers.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_engine(&self, shard: usize) -> &MixedQueryEngine {
        &self.shards[shard].engine
    }

    /// Underlying index queries summed across every shard engine — each is
    /// an `AtomicU64`, so the aggregate survives concurrent scatter
    /// workers (and advances by the number of distinct *uncached*
    /// predicates per shard).
    pub fn index_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.index_queries()).sum()
    }

    /// Mask-cache `(hits, misses)` summed across every shard's
    /// [`MaskCache`] — lifetime totals, surviving shard rebuilds (a
    /// rebuilt shard keeps its cache object).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let c = s.engine.mask_cache();
            (h + c.hits(), m + c.misses())
        })
    }

    /// The loosest Ptile guarantee band across shards (each shard states
    /// its own achieved band; a service-level statement must take the max).
    pub fn ptile_slack(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.engine.ptile_slack())
            .fold(0.0, f64::max)
    }

    /// Answers one expression: scatters it over every shard (through each
    /// shard's cross-call mask cache) and gathers the hits as **ascending
    /// stable global ids**. A shard error (every shard is built with the
    /// same ranks, so shards fail alike) is reported once.
    pub fn query(&self, expr: &LogicalExpr) -> Result<Vec<GlobalId>, EngineError> {
        self.query_with(expr, &mut QueryScratch::new())
    }

    /// [`query`](Self::query) with caller-provided scratch (reused across
    /// the sequential per-shard scatter).
    pub fn query_with(
        &self,
        expr: &LogicalExpr,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<GlobalId>, EngineError> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let hits = shard.engine.query_cached(expr, scratch)?;
            out.extend(hits.into_iter().map(|j| shard.global_ids[j]));
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Answers a slice of expressions with the default worker pool: every
    /// `(expression, shard)` pair is one scatter unit over
    /// `dds_pool::par_map_with` (per-worker scratch), gathered back
    /// **input-ordered** — `result[i]` answers `exprs[i]`, as ascending
    /// global ids, bit-identical to [`query`](Self::query) on each
    /// expression at every shard count × thread count (pinned by
    /// `tests/shard_equivalence.rs`).
    pub fn query_batch(&self, exprs: &[LogicalExpr]) -> Vec<Result<Vec<GlobalId>, EngineError>> {
        self.query_batch_opts(exprs, &BuildOptions::default())
    }

    /// [`query_batch`](Self::query_batch) with an explicit worker-pool
    /// configuration.
    pub fn query_batch_opts(
        &self,
        exprs: &[LogicalExpr],
        opts: &BuildOptions,
    ) -> Vec<Result<Vec<GlobalId>, EngineError>> {
        let n_shards = self.shards.len();
        if n_shards == 0 {
            return exprs.iter().map(|_| Ok(Vec::new())).collect();
        }
        // Scatter: unit (e, s) answers expression e on shard s. Flattening
        // both dimensions keeps the pool busy even when the batch is
        // smaller than the worker count.
        let units: Vec<(usize, usize)> = (0..exprs.len())
            .flat_map(|e| (0..n_shards).map(move |s| (e, s)))
            .collect();
        let partials = par_map_with(opts, &units, QueryScratch::new, |scratch, _, &(e, s)| {
            let shard = &self.shards[s];
            shard.engine.query_cached(&exprs[e], scratch).map(|hits| {
                hits.into_iter()
                    .map(|j| shard.global_ids[j])
                    .collect::<Vec<GlobalId>>()
            })
        });
        // Gather: merge each expression's per-shard partials in shard
        // order (errors are identical across shards — first one wins),
        // then canonicalize to ascending global ids.
        let mut results = Vec::with_capacity(exprs.len());
        let mut partials = partials.into_iter();
        for _ in 0..exprs.len() {
            let mut merged: Result<Vec<GlobalId>, EngineError> = Ok(Vec::new());
            for partial in partials.by_ref().take(n_shards) {
                if let Ok(acc) = &mut merged {
                    match partial {
                        Ok(mut ids) => acc.append(&mut ids),
                        Err(e) => merged = Err(e),
                    }
                }
            }
            if let Ok(ids) = &mut merged {
                ids.sort_unstable();
            }
            results.push(merged);
        }
        results
    }

    /// Validates a shard's ids without touching any state: one per
    /// dataset, distinct, and none served by another shard (ids in
    /// `exempt` — the shard being replaced — don't count). Also checks a
    /// declared φ anchor against the prospective catalog size, so the
    /// union-bound failure probability can never be silently diluted by
    /// ingesting past the anchor. Panicking here leaves the service
    /// exactly as it was.
    fn validate_ids(&self, repo: &Repository, global_ids: &[GlobalId], exempt: Option<usize>) {
        assert_eq!(
            global_ids.len(),
            repo.len(),
            "one global id per dataset in the shard"
        );
        if let Some(d) = self.ptile_params.phi_datasets {
            let replaced = exempt.map_or(0, |s| self.shards[s].engine.n_datasets());
            let prospective = self.n_datasets() - replaced + repo.len();
            assert!(
                prospective <= d,
                "phi_datasets anchor ({d}) must be an upper bound on the catalog \
                 ({prospective} datasets after this ingest)"
            );
        }
        // Hashed exempt set: the normal rebuild reuses every replaced id,
        // so a linear scan per id would make validation quadratic in the
        // shard size.
        let exempt: HashSet<GlobalId> = exempt
            .map(|s| self.shards[s].global_ids.iter().copied().collect())
            .unwrap_or_default();
        let mut fresh = HashSet::with_capacity(global_ids.len());
        for &id in global_ids {
            assert!(fresh.insert(id), "global id {id} repeats within the shard");
            assert!(
                !self.ids_in_use.contains(&id) || exempt.contains(&id),
                "global id {id} is already served by another shard"
            );
        }
    }

    /// Builds one shard engine with the service-wide parameters, seeding
    /// every dataset's sampling RNG by its **global id** (not its
    /// shard-local position): a dataset draws the same sample wherever it
    /// lands, so re-sharding cannot perturb sampled builds.
    fn build_engine(
        &self,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> MixedQueryEngine {
        MixedQueryEngine::build_opts(
            repo,
            &self.ks,
            self.ptile_params.clone().with_seed_ids(global_ids.to_vec()),
            self.pref_params.clone(),
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Dataset, Predicate};
    use dds_geom::Rect;

    fn dataset(name: &str, xs: &[f64]) -> Dataset {
        Dataset::from_rows(name, xs.iter().map(|&x| vec![x]).collect())
    }

    fn service() -> ShardedEngine {
        let mut svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
        );
        // Global ids deliberately out of shard-local order and
        // non-contiguous: the shard map must do real translation.
        svc.add_shard(
            &Repository::new(vec![
                dataset("low", &[1.0, 2.0, 3.0]),
                dataset("high", &[90.0, 95.0]),
            ]),
            &[7, 3],
        );
        svc.add_shard(&Repository::new(vec![dataset("mid", &[48.0, 52.0])]), &[5]);
        svc
    }

    fn low_expr() -> LogicalExpr {
        LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 10.0),
            0.9,
        ))
    }

    #[test]
    fn hits_come_back_as_sorted_global_ids() {
        let svc = service();
        assert_eq!(svc.n_shards(), 2);
        assert_eq!(svc.n_datasets(), 3);
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
        // A predicate matching all three datasets gathers across shards in
        // ascending id order, not ingest order.
        let all = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 100.0),
            0.9,
        ));
        assert_eq!(svc.query(&all), Ok(vec![3, 5, 7]));
    }

    #[test]
    fn batch_is_input_ordered_and_matches_single_queries() {
        let svc = service();
        let exprs = vec![
            low_expr(),
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(40.0, 60.0),
                0.9,
            )),
        ];
        let singles: Vec<_> = exprs.iter().map(|e| svc.query(e)).collect();
        assert_eq!(singles, vec![Ok(vec![7]), Ok(vec![5])]);
        for threads in [1, 2, 8] {
            assert_eq!(
                svc.query_batch_opts(&exprs, &BuildOptions::with_threads(threads)),
                singles,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn missing_rank_errors_gather_once() {
        let svc = service();
        let bad = LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 9, 0.0));
        assert_eq!(svc.query(&bad), Err(EngineError::MissingRank(9)));
        let batch = svc.query_batch(&[low_expr(), bad]);
        assert_eq!(batch[0], Ok(vec![7]));
        assert_eq!(batch[1], Err(EngineError::MissingRank(9)));
    }

    #[test]
    fn empty_service_answers_empty() {
        let svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
        );
        assert_eq!(svc.query(&low_expr()), Ok(vec![]));
        assert_eq!(svc.query_batch(&[low_expr()]), vec![Ok(vec![])]);
    }

    #[test]
    #[should_panic(expected = "already served")]
    fn duplicate_global_ids_are_rejected() {
        let mut svc = service();
        svc.add_shard(&Repository::new(vec![dataset("dup", &[1.0, 2.0])]), &[5]);
    }

    #[test]
    fn rebuild_swaps_data_keeps_other_shards_and_reuses_ids() {
        let mut svc = service();
        // Shard 1's dataset moves from the middle to the low band; its id
        // may be reused because the rebuild releases it first.
        svc.rebuild_shard(
            1,
            &Repository::new(vec![dataset("mid2", &[4.0, 6.0])]),
            &[5],
        );
        assert_eq!(svc.query(&low_expr()), Ok(vec![5, 7]));
    }

    #[test]
    fn rebuild_invalidates_only_that_shards_cache() {
        let mut svc = service();
        let exprs = vec![low_expr()];
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
        let (_, misses_cold) = svc.cache_stats();
        assert_eq!(misses_cold, 2, "one mask per shard, both cold");
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
        let (hits_warm, misses_warm) = svc.cache_stats();
        assert_eq!((hits_warm, misses_warm), (2, 2), "second batch all cached");
        svc.rebuild_shard(
            1,
            &Repository::new(vec![dataset("mid2", &[47.0, 53.0])]),
            &[5],
        );
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
        let (hits_after, misses_after) = svc.cache_stats();
        assert_eq!(
            (hits_after, misses_after),
            (3, 3),
            "shard 0 hits its cache; rebuilt shard 1 recomputes"
        );
    }
}
