//! Sharded repository service: scatter/gather over per-shard engines.
//!
//! The ROADMAP north-star is a catalog holding millions of datasets; one
//! [`MixedQueryEngine`] per repository *shard* keeps build times and index
//! memory per-shard-sized while queries fan out over all of them. The
//! `&self` query paths make the fan-out trivial: every shard engine is
//! read-shared across the worker pool with no locks.
//!
//! [`ShardedEngine`] owns the shard engines plus a **shard map** — each
//! shard carries the **stable global dataset ids** of its members, so hits
//! translate from shard-local indexes to ids that survive adding and
//! rebuilding shards (a shard-local index is meaningless outside its
//! shard; a [`GlobalId`] names the same dataset forever).
//!
//! Gather is canonicalized: hits come back in **ascending global-id
//! order**, and per-dataset sampling RNGs are seeded by **global id**
//! (not shard-local position, via `PtileBuildParams::seed_ids`), so a
//! dataset draws the same sample wherever it lands. The answer is then
//! independent of the thread count unconditionally, and of the shard
//! count/assignment as well once the φ-split is anchored
//! (`PtileBuildParams::with_phi_datasets`, or any build where every
//! dataset's support is used exactly — ε_i = 0 — which needs no
//! anchoring). `tests/shard_equivalence.rs` pins both regimes against a
//! single unsharded engine; without φ anchoring, a sampled build's
//! per-dataset sample *size* depends on the local shard size, so answers
//! agree with the unsharded engine only up to each dataset's guarantee
//! band.
//!
//! Each shard keeps its own cross-call [`MaskCache`];
//! [`rebuild_shard`](ShardedEngine::rebuild_shard) carries the cache over
//! to the replacement engine and bumps its generation, so a rebuild
//! invalidates **only that shard's entries** while every other shard keeps
//! serving cached masks.
//!
//! # Shard lifecycle
//!
//! A production catalog lives under churn: hot shards divide, cold shards
//! coalesce. Each shard retains its ingested datasets, so the lifecycle
//! operations are self-contained —
//! [`split_shard`](ShardedEngine::split_shard) divides one shard in two
//! (the datasets whose ids are in the assignment move to a new shard),
//! [`merge_shards`](ShardedEngine::merge_shards) coalesces two into one,
//! and [`rebalance_plan`](ShardedEngine::rebalance_plan) proposes a list
//! of such transitions from per-shard size and query-load counters. All
//! three follow the validate→build→commit discipline of ingest: a failing
//! transition leaves the service untouched, and because global ids are
//! stable and sampling is seeded by global id, **no transition can change
//! any answer** — pinned by the split ≡ rebuilt / merge ≡ rebuilt
//! proptests and the churn soak in `tests/shard_equivalence.rs`. Cache
//! generations travel with the transitions the same way rebuilds carry
//! them: the surviving side of a split and the surviving slot of a merge
//! inherit the old shard's [`MaskCache`] with its generation bumped, so
//! invalidation stays scoped to the shards that changed.
//!
//! # Shard routing
//!
//! Every shard records two ingest-time summaries: the **per-attribute
//! value bounding box** of its raw points, and a **routing synopsis** —
//! per attribute, equi-depth histogram bins over the build's per-dataset
//! weight samples with a per-bin *max-mass envelope* (the largest
//! fraction of any one member dataset's sample inside the bin; built by
//! the shard's Ptile index, [`RoutingSynopsis`](crate::ptile::RoutingSynopsis)).
//!
//! **The mass-bound contract.** The range index reports dataset `j` for a
//! percentile predicate `(R, θ)` through its main structure only when
//! some canonical rectangle `ρ ⊆ R` has sample weight
//! `w(ρ) = |ρ ∩ S_j| / |S_j|` with `w(ρ) + (ε_j + δ_j) ≥ a_θ` (the
//! per-dataset budgets are pre-folded into the lifted weight
//! coordinates), and through the zero-mass empty-slab path only when
//! `a_θ ≤ ε_j + δ_j`. Both are impossible — for **every** member dataset
//! at once — whenever an upper bound `U ≥ max_j |R ∩ S_j| / |S_j|`
//! satisfies `U + margin < a_θ` (clamped to `a_θ ≥ 0`, with `margin =
//! max_j (ε_j + δ_j)`, [`MixedQueryEngine::ptile_margin`]): the main path
//! needs `w(ρ) ≥ a_θ − c_j > U ≥ w(ρ)`, a contradiction, and the aux
//! path needs `a_θ ≤ c_j ≤ margin < a_θ`, likewise. So the skip can
//! never route away a hit — soundness needs only that `U` really is an
//! upper bound, which the synopsis guarantees by construction: partial
//! bins are counted fully (an interval sums the envelope over every bin
//! it touches), axes combine by `min` (a rectangle is contained in each
//! of its axis slabs; a product would *under*-state correlated data),
//! and the envelope is computed over the same weight samples the lifted
//! weights are measured against.
//!
//! Box disjointness is the degenerate zero-mass case: a query rectangle
//! disjoint from the raw-point box in some attribute is disjoint from
//! every sample range (samples are raw points), so `U = 0` and the rule
//! reduces to `a_θ > margin` — exactly the historical box test, which
//! the implementation still evaluates first.
//! [`shards_routed_past`](ShardedEngine::shards_routed_past) keeps its
//! historical meaning (units the box alone skips);
//! [`shards_routed_by_synopsis`](ShardedEngine::shards_routed_by_synopsis)
//! counts the *additional* units only the mass bound skips.
//!
//! An expression's scatter onto a shard is skipped only when **every**
//! DNF clause contains a skip-proving percentile literal; the per-clause
//! interval clamps are computed **once per query** and reused across
//! shards. Routing is answer-preserving bit for bit — pinned routed ≡
//! unrouted by `tests/shard_equivalence.rs` — and never engages for
//! expressions that would error (an unindexed preference rank must still
//! be reported even if every shard is otherwise skippable). A `NaN`
//! coordinate disables both summaries for its shard (scatter-everywhere,
//! answers unaffected). [`with_routing`](ShardedEngine::with_routing)
//! disables routing entirely;
//! [`with_synopsis_routing`](ShardedEngine::with_synopsis_routing) keeps
//! the box test but disables the mass bound (the A/B lever of the E18
//! experiment). The summaries thread through the whole lifecycle for
//! free: add/rebuild/split/merge each rebuild the shard's engine, and
//! the engine's Ptile build carries its synopsis with it.

use crate::cache::MaskCache;
use crate::engine::{expr_dim_mismatch, EngineError, MixedQueryEngine};
use crate::framework::{Dataset, LogicalExpr, MeasureFunction, Predicate, Repository};
use crate::pool::{par_map_with, BuildOptions};
use crate::pref::PrefBuildParams;
use crate::ptile::PtileBuildParams;
use crate::scratch::QueryScratch;
use crate::telemetry::EngineTelemetry;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A stable dataset identifier: assigned at ingest, never reinterpreted
/// when shards are added or rebuilt (unlike a shard-local index).
pub type GlobalId = u64;

/// Why a shard ingest ([`ShardedEngine::try_add_shard`] /
/// [`ShardedEngine::try_rebuild_shard`]) was rejected. Every rejection
/// leaves the service exactly as it was; the panicking ingest methods
/// surface these as panic messages, services (e.g. `dds-server`) serialize
/// them via [`Display`](fmt::Display).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// `global_ids.len() != repo.len()`.
    ArityMismatch {
        /// Datasets in the shard being ingested.
        datasets: usize,
        /// Global ids supplied for them.
        ids: usize,
    },
    /// The shard's schema dimension differs from the dimension already
    /// served by other shards (queries are service-wide, so every shard
    /// must share one schema).
    SchemaMismatch {
        /// Dimension served by the existing shards.
        expected: usize,
        /// Dimension of the rejected shard.
        got: usize,
    },
    /// A global id appears twice within the ingested shard.
    DuplicateId(GlobalId),
    /// A global id is already served by a *different* shard.
    IdInUse(GlobalId),
    /// The shard index passed to a rebuild does not exist.
    NoSuchShard {
        /// Requested shard index.
        shard: usize,
        /// Shards currently served.
        n_shards: usize,
    },
    /// Ingesting would grow the catalog past the declared
    /// `PtileBuildParams::with_phi_datasets` anchor, silently diluting the
    /// union-bound failure probability.
    PhiAnchorExceeded {
        /// The declared anchor.
        anchor: usize,
        /// Catalog size the ingest would reach.
        prospective: usize,
    },
    /// A split assignment names a global id the shard does not hold.
    IdNotInShard {
        /// The id the assignment asked to move.
        id: GlobalId,
        /// The shard being split.
        shard: usize,
    },
    /// A split assignment would leave one side empty: it moves none, or
    /// all, of the shard's datasets.
    EmptySplitSide {
        /// The shard being split.
        shard: usize,
        /// Datasets the assignment moves to the new shard.
        moving: usize,
        /// Datasets the shard holds.
        datasets: usize,
    },
    /// A merge named the same shard on both sides.
    MergeWithSelf {
        /// The shard named twice.
        shard: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::ArityMismatch { datasets, ids } => write!(
                f,
                "need one global id per dataset in the shard: got {ids} ids for {datasets} datasets"
            ),
            IngestError::SchemaMismatch { expected, got } => write!(
                f,
                "shard schema dimension {got} differs from the served dimension {expected}"
            ),
            IngestError::DuplicateId(id) => {
                write!(f, "global id {id} repeats within the shard")
            }
            IngestError::IdInUse(id) => {
                write!(f, "global id {id} is already served by another shard")
            }
            IngestError::NoSuchShard { shard, n_shards } => {
                write!(f, "no such shard: {shard} (service has {n_shards})")
            }
            IngestError::PhiAnchorExceeded {
                anchor,
                prospective,
            } => write!(
                f,
                "phi_datasets anchor ({anchor}) must be an upper bound on the catalog \
                 ({prospective} datasets after this ingest)"
            ),
            IngestError::IdNotInShard { id, shard } => {
                write!(f, "global id {id} is not held by shard {shard}")
            }
            IngestError::EmptySplitSide {
                shard,
                moving,
                datasets,
            } => write!(
                f,
                "split of shard {shard} leaves a side empty \
                 (assignment moves {moving} of its {datasets} datasets)"
            ),
            IngestError::MergeWithSelf { shard } => {
                write!(f, "cannot merge shard {shard} with itself")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// A cheap point-in-time counter snapshot of a [`ShardedEngine`] — the
/// surface a serving layer (e.g. `dds-server`) polls per stats request
/// without touching any index structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Shards currently served.
    pub n_shards: u64,
    /// Datasets across all shards.
    pub n_datasets: u64,
    /// Underlying index queries summed across shard engines.
    pub index_queries: u64,
    /// Mask-cache hits summed across shards.
    pub cache_hits: u64,
    /// Mask-cache misses summed across shards.
    pub cache_misses: u64,
    /// (expression, shard) scatter units skipped by the bounding-box
    /// routing tier alone.
    pub shards_routed_past: u64,
    /// Scatter units additionally skipped by the synopsis mass bound
    /// (units the box tier could not prove silent).
    pub shards_routed_by_synopsis: u64,
    /// Lifecycle splits committed over the service lifetime.
    pub splits: u64,
    /// Lifecycle merges committed over the service lifetime.
    pub merges: u64,
}

/// One shard's size and query load — the per-shard counters behind
/// [`ShardedEngine::rebalance_plan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard's index.
    pub shard: usize,
    /// Datasets the shard holds.
    pub datasets: usize,
    /// (expression, shard) scatter units this shard evaluated (skipped
    /// units don't count — routing removed their load). Carried across
    /// rebuilds; reset to zero by a split or merge, so a transitioned
    /// shard re-measures its load.
    pub queries: u64,
}

/// Thresholds steering [`ShardedEngine::rebalance_plan_with`].
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// A shard holding more datasets than this proposes a split.
    pub max_datasets: usize,
    /// Two shards whose combined dataset count stays within this bound
    /// propose a merge.
    pub merge_under: usize,
    /// A shard whose evaluated scatter-unit count exceeds this multiple
    /// of the per-shard mean proposes a split even within
    /// `max_datasets` (query-load skew, not size skew).
    pub hot_factor: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            max_datasets: 128,
            merge_under: 32,
            hot_factor: 4.0,
        }
    }
}

/// One proposed lifecycle transition. A plan (`Vec<RebalanceAction>`) is
/// applied **in order** — the planner emits indices that stay valid under
/// sequential application (splits never disturb existing indices; merges
/// are ordered so no earlier merge shifts a later action's indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Split `shard`, moving the datasets named by `move_ids` to a new
    /// shard (appended at the end of the shard list).
    Split {
        /// The shard to divide.
        shard: usize,
        /// Ids moving to the new shard — the upper half of the shard's
        /// ids in ascending order.
        move_ids: Vec<GlobalId>,
    },
    /// Merge shard `b` into shard `a` (`a < b`; the merged shard lands at
    /// `a`, shards past `b` shift down by one).
    Merge {
        /// The surviving slot.
        a: usize,
        /// The absorbed shard.
        b: usize,
    },
}

/// One repository shard: its engine plus the shard map back to global ids.
#[derive(Debug)]
struct Shard {
    engine: MixedQueryEngine,
    /// `global_ids[local]` is the stable id of the shard's `local`-th
    /// dataset — the gather-side translation table.
    global_ids: Vec<GlobalId>,
    /// Schema dimension of the shard's data.
    dim: usize,
    /// Per-attribute `(min, max)` over every raw point in the shard —
    /// the routing fast path's pruning box. `None` disables routing for
    /// this shard (a NaN coordinate was seen, so containment reasoning is
    /// unsound).
    bounds: Option<Vec<(f64, f64)>>,
    /// The ingested datasets (`datasets[local]` carries id
    /// `global_ids[local]`), retained so lifecycle transitions
    /// (split/merge) can rebuild replacement engines without the caller
    /// re-supplying data.
    datasets: Vec<Dataset>,
    /// (expression, shard) scatter units this shard evaluated — the load
    /// signal behind `rebalance_plan`. Carried across rebuilds (the shard
    /// keeps its identity), reset by split/merge (a transitioned shard
    /// re-measures).
    queries: AtomicU64,
}

/// How the routing fast path disposed of one (expression, shard) unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Skip {
    /// Not provably silent — evaluate the shard.
    No,
    /// Skipped by the bounding-box tier (counted by
    /// [`ShardedEngine::shards_routed_past`], preserving its historical
    /// meaning).
    Box,
    /// Skipped only by the synopsis mass bound (counted by
    /// [`ShardedEngine::shards_routed_by_synopsis`]).
    Synopsis,
}

/// One routable percentile literal, pre-clamped for the per-shard loop:
/// the clamped threshold lower bound and the query rectangle as per-axis
/// intervals.
struct RoutingLit {
    lo: f64,
    rect: Vec<(f64, f64)>,
}

/// One DNF clause as the router sees it, computed once per query.
enum PlanClause {
    /// An empty clause — trivially proven silent on every shard.
    Vacuous,
    /// The clause's routable percentile literals (non-empty).
    Lits(Vec<RoutingLit>),
}

/// A sharded mixed-query service: one [`MixedQueryEngine`] per repository
/// shard, scatter/gather query paths, stable [`GlobalId`] answers and
/// per-shard cross-call [`MaskCache`]s.
///
/// ```
/// use dds_core::framework::{Dataset, LogicalExpr, Predicate, Repository};
/// use dds_core::pref::PrefBuildParams;
/// use dds_core::ptile::PtileBuildParams;
/// use dds_core::shard::ShardedEngine;
/// use dds_geom::Rect;
///
/// let mut svc = ShardedEngine::new(
///     &[1],
///     PtileBuildParams::exact_centralized(),
///     PrefBuildParams::exact_centralized(),
/// );
/// // Two ingest batches become two shards; ids are caller-assigned.
/// svc.add_shard(
///     &Repository::new(vec![Dataset::from_rows("a", vec![vec![1.0], vec![2.0]])]),
///     &[10],
/// );
/// svc.add_shard(
///     &Repository::new(vec![Dataset::from_rows("b", vec![vec![1.5], vec![50.0]])]),
///     &[20],
/// );
/// let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
///     Rect::interval(0.0, 3.0),
///     0.9,
/// ));
/// // Both of dataset 10's points are in [0, 3]; only half of 20's.
/// assert_eq!(svc.query(&expr), Ok(vec![10]));
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    /// Every global id currently served, for uniqueness enforcement.
    ids_in_use: HashSet<GlobalId>,
    /// Build parameters shared by every shard engine, so answers cannot
    /// drift between shards built at different times.
    ks: Vec<usize>,
    ptile_params: PtileBuildParams,
    pref_params: PrefBuildParams,
    /// Per-shard mask-cache bound (entries, not bytes).
    cache_capacity: usize,
    /// Routing fast path (see the module docs). On by default;
    /// [`with_routing`](Self::with_routing) disables it.
    route: bool,
    /// Synopsis mass-bound tier of the routing fast path. On by default;
    /// [`with_synopsis_routing`](Self::with_synopsis_routing) disables
    /// just this tier, leaving the box tier in place.
    synopsis_route: bool,
    /// (expression, shard) scatter units skipped by the box tier. Data-
    /// dependent, not timing-dependent, so the count is deterministic for
    /// a given workload.
    routed_past: AtomicU64,
    /// Scatter units skipped by the synopsis tier only (disjoint from
    /// `routed_past`; total skipped is the sum).
    routed_by_synopsis: AtomicU64,
    /// Lifecycle splits committed (`&mut self` ops, so a plain counter).
    splits: u64,
    /// Lifecycle merges committed.
    merges: u64,
    /// Wall-clock timers for the scatter path (routing decisions,
    /// per-scatter-unit execution). Lock-free atomics recorded from
    /// `&self`, like the routing counters above — but timing-dependent,
    /// so strictly observational: nothing here may influence an answer.
    telemetry: EngineTelemetry,
}

impl ShardedEngine {
    /// An empty service; shards arrive via [`add_shard`](Self::add_shard).
    /// Every shard engine is built with these parameters and Pref ranks,
    /// and a default-capacity [`MaskCache`]. Any `seed_ids` on
    /// `ptile_params` are replaced per shard with the shard's global ids
    /// (stable-identity sampling); set
    /// `ptile_params.with_phi_datasets(catalog_size)` to anchor sampled
    /// builds to a declared catalog size (see the module docs).
    ///
    /// # Panics
    /// Panics if `ks` is empty.
    pub fn new(ks: &[usize], ptile_params: PtileBuildParams, pref_params: PrefBuildParams) -> Self {
        assert!(!ks.is_empty(), "need at least one preference rank");
        ShardedEngine {
            shards: Vec::new(),
            ids_in_use: HashSet::new(),
            ks: ks.to_vec(),
            ptile_params,
            pref_params,
            cache_capacity: crate::cache::DEFAULT_MASK_CACHE_CAPACITY,
            route: true,
            synopsis_route: true,
            routed_past: AtomicU64::new(0),
            routed_by_synopsis: AtomicU64::new(0),
            splits: 0,
            merges: 0,
            telemetry: EngineTelemetry::new(),
        }
    }

    /// Sets the per-shard mask-cache capacity (builder-style; applies to
    /// shards added afterwards).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "mask cache needs capacity >= 1");
        self.cache_capacity = capacity;
        self
    }

    /// Enables or disables the routing fast path — both tiers at once
    /// (builder-style; default enabled). Routing never changes answers —
    /// disabling it only exists for A/B measurement and for the
    /// routed ≡ unrouted equivalence tests.
    pub fn with_routing(mut self, enabled: bool) -> Self {
        self.route = enabled;
        self
    }

    /// Enables or disables just the synopsis mass-bound tier of routing
    /// (builder-style; default enabled). With it off the box tier still
    /// runs — the configuration the pre-synopsis engine shipped, kept as
    /// the A/B lever for measuring how much the mass bound adds (E18).
    /// Never changes answers.
    pub fn with_synopsis_routing(mut self, enabled: bool) -> Self {
        self.synopsis_route = enabled;
        self
    }

    /// Ingests one shard with the default worker pool: builds its engine
    /// and records `global_ids[i]` as the stable id of `repo`'s `i`-th
    /// dataset. Returns the shard's index (for
    /// [`rebuild_shard`](Self::rebuild_shard)).
    ///
    /// # Panics
    /// Panics on any [`IngestError`] (`global_ids.len() != repo.len()`, an
    /// id already served by this engine, a schema mismatch, …); see
    /// [`try_add_shard`](Self::try_add_shard) for the non-panicking
    /// variant.
    pub fn add_shard(&mut self, repo: &Repository, global_ids: &[GlobalId]) -> usize {
        self.add_shard_opts(repo, global_ids, &BuildOptions::default())
    }

    /// [`add_shard`](Self::add_shard) with an explicit worker-pool
    /// configuration for the build.
    pub fn add_shard_opts(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> usize {
        self.try_add_shard_opts(repo, global_ids, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`add_shard`](Self::add_shard): a rejected ingest
    /// returns the typed [`IngestError`] and leaves the service untouched.
    pub fn try_add_shard(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<usize, IngestError> {
        self.try_add_shard_opts(repo, global_ids, &BuildOptions::default())
    }

    /// [`try_add_shard`](Self::try_add_shard) with an explicit worker-pool
    /// configuration for the build.
    pub fn try_add_shard_opts(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> Result<usize, IngestError> {
        // Validate, then build (which can still panic on pathological
        // parameters), then commit — a failing ingest leaves the service
        // state untouched.
        self.validate_ids(repo, global_ids, None)?;
        let cache = Arc::new(MaskCache::new(self.cache_capacity));
        let engine = self
            .build_engine(repo, global_ids, opts)
            .with_mask_cache(cache);
        self.ids_in_use.extend(global_ids.iter().copied());
        self.shards.push(Shard {
            engine,
            global_ids: global_ids.to_vec(),
            dim: repo.dim(),
            bounds: shard_bounds(repo),
            datasets: repo.datasets().to_vec(),
            queries: AtomicU64::new(0),
        });
        Ok(self.shards.len() - 1)
    }

    /// Replaces shard `shard`'s contents (incremental ingest: a data
    /// refresh re-lands the shard). The replacement engine **inherits the
    /// shard's mask cache with its generation bumped**: the shard's stale
    /// masks are invalidated (and its hit/miss accounting continues),
    /// while every other shard's cache is untouched.
    ///
    /// # Panics
    /// Panics on any [`IngestError`] (`shard` out of range,
    /// `global_ids.len() != repo.len()`, an id already served by a
    /// *different* shard — re-using the replaced shard's ids is the normal
    /// case); see [`try_rebuild_shard`](Self::try_rebuild_shard) for the
    /// non-panicking variant.
    pub fn rebuild_shard(&mut self, shard: usize, repo: &Repository, global_ids: &[GlobalId]) {
        self.rebuild_shard_opts(shard, repo, global_ids, &BuildOptions::default());
    }

    /// [`rebuild_shard`](Self::rebuild_shard) with an explicit worker-pool
    /// configuration for the build.
    pub fn rebuild_shard_opts(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) {
        self.try_rebuild_shard_opts(shard, repo, global_ids, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`rebuild_shard`](Self::rebuild_shard): a rejected
    /// rebuild returns the typed [`IngestError`] and leaves the service —
    /// including the shard being replaced — untouched.
    pub fn try_rebuild_shard(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<(), IngestError> {
        self.try_rebuild_shard_opts(shard, repo, global_ids, &BuildOptions::default())
    }

    /// [`try_rebuild_shard`](Self::try_rebuild_shard) with an explicit
    /// worker-pool configuration for the build.
    pub fn try_rebuild_shard_opts(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> Result<(), IngestError> {
        if shard >= self.shards.len() {
            return Err(IngestError::NoSuchShard {
                shard,
                n_shards: self.shards.len(),
            });
        }
        // Validate against every *other* shard, then build — until the
        // commit below the old shard keeps serving with intact uniqueness
        // bookkeeping.
        self.validate_ids(repo, global_ids, Some(shard))?;
        let cache = Arc::clone(self.shards[shard].engine.mask_cache());
        let engine = self
            .build_engine(repo, global_ids, opts)
            .with_mask_cache(cache);
        // Commit: swap ids, invalidate the carried-over cache, install.
        for id in &self.shards[shard].global_ids {
            self.ids_in_use.remove(id);
        }
        self.ids_in_use.extend(global_ids.iter().copied());
        self.shards[shard].engine.mask_cache().invalidate();
        let queries = self.shards[shard].queries.load(Ordering::Relaxed);
        self.shards[shard] = Shard {
            engine,
            global_ids: global_ids.to_vec(),
            dim: repo.dim(),
            bounds: shard_bounds(repo),
            datasets: repo.datasets().to_vec(),
            queries: AtomicU64::new(queries),
        };
        Ok(())
    }

    /// Divides shard `shard` in two with the default worker pool: the
    /// datasets whose global ids are in `move_ids` (the *assignment*)
    /// move to a new shard whose index is returned; the rest stay where
    /// they are. Ids and per-dataset sampling seeds are untouched, so no
    /// answer changes — pinned by `tests/shard_equivalence.rs`. The
    /// staying side inherits the shard's [`MaskCache`] with its
    /// generation bumped; the new shard starts with a fresh cache; every
    /// other shard's cache is untouched.
    ///
    /// # Panics
    /// Panics on any [`IngestError`] (`shard` out of range, an id not
    /// held by the shard, an assignment leaving a side empty); see
    /// [`try_split_shard`](Self::try_split_shard) for the non-panicking
    /// variant.
    pub fn split_shard(&mut self, shard: usize, move_ids: &[GlobalId]) -> usize {
        self.split_shard_opts(shard, move_ids, &BuildOptions::default())
    }

    /// [`split_shard`](Self::split_shard) with an explicit worker-pool
    /// configuration for the two rebuilds.
    pub fn split_shard_opts(
        &mut self,
        shard: usize,
        move_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> usize {
        self.try_split_shard_opts(shard, move_ids, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`split_shard`](Self::split_shard): a rejected split
    /// returns the typed [`IngestError`] and leaves the service —
    /// including the shard it named — untouched.
    pub fn try_split_shard(
        &mut self,
        shard: usize,
        move_ids: &[GlobalId],
    ) -> Result<usize, IngestError> {
        self.try_split_shard_opts(shard, move_ids, &BuildOptions::default())
    }

    /// [`try_split_shard`](Self::try_split_shard) with an explicit
    /// worker-pool configuration.
    pub fn try_split_shard_opts(
        &mut self,
        shard: usize,
        move_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> Result<usize, IngestError> {
        if shard >= self.shards.len() {
            return Err(IngestError::NoSuchShard {
                shard,
                n_shards: self.shards.len(),
            });
        }
        // Validate the assignment: distinct ids, every one held by the
        // split shard, neither side empty.
        let src = &self.shards[shard];
        let held: HashSet<GlobalId> = src.global_ids.iter().copied().collect();
        let mut moving = HashSet::with_capacity(move_ids.len());
        for &id in move_ids {
            if !moving.insert(id) {
                return Err(IngestError::DuplicateId(id));
            }
            if !held.contains(&id) {
                return Err(IngestError::IdNotInShard { id, shard });
            }
        }
        if move_ids.is_empty() || move_ids.len() == src.global_ids.len() {
            return Err(IngestError::EmptySplitSide {
                shard,
                moving: move_ids.len(),
                datasets: src.global_ids.len(),
            });
        }
        // Partition in shard-local order — the staying/moving orders (and
        // with them every observable detail of the two sides) depend only
        // on the assignment as a *set*, not on `move_ids`' order.
        let mut stay_sets = Vec::with_capacity(src.global_ids.len() - move_ids.len());
        let mut stay_ids = Vec::with_capacity(stay_sets.capacity());
        let mut move_sets = Vec::with_capacity(move_ids.len());
        let mut moved_ids = Vec::with_capacity(move_ids.len());
        for (ds, &id) in src.datasets.iter().zip(&src.global_ids) {
            if moving.contains(&id) {
                move_sets.push(ds.clone());
                moved_ids.push(id);
            } else {
                stay_sets.push(ds.clone());
                stay_ids.push(id);
            }
        }
        let stay_repo = Repository::new(stay_sets);
        let move_repo = Repository::new(move_sets);
        // Build both replacement engines before touching any state (a
        // build panic leaves the old shard serving).
        let stay_cache = Arc::clone(src.engine.mask_cache());
        let dim = src.dim;
        let stay_engine = self
            .build_engine(&stay_repo, &stay_ids, opts)
            .with_mask_cache(stay_cache);
        let move_engine = self
            .build_engine(&move_repo, &moved_ids, opts)
            .with_mask_cache(Arc::new(MaskCache::new(self.cache_capacity)));
        // Commit. The id set is unchanged, so `ids_in_use` needs no edit;
        // the carried-over cache is invalidated (generation bump) while
        // every other shard's cache — the fresh one included — is not.
        self.shards[shard].engine.mask_cache().invalidate();
        let stay_bounds = shard_bounds(&stay_repo);
        let move_bounds = shard_bounds(&move_repo);
        self.shards[shard] = Shard {
            engine: stay_engine,
            global_ids: stay_ids,
            dim,
            bounds: stay_bounds,
            datasets: stay_repo.into_datasets(),
            queries: AtomicU64::new(0),
        };
        self.shards.push(Shard {
            engine: move_engine,
            global_ids: moved_ids,
            dim,
            bounds: move_bounds,
            datasets: move_repo.into_datasets(),
            queries: AtomicU64::new(0),
        });
        self.splits += 1;
        Ok(self.shards.len() - 1)
    }

    /// Coalesces shards `a` and `b` into one with the default worker
    /// pool, returning the surviving index `min(a, b)` (shards past
    /// `max(a, b)` shift down by one; the merged shard holds the
    /// lower-indexed shard's datasets followed by the higher-indexed
    /// one's). No id changes, so no answer changes — pinned by
    /// `tests/shard_equivalence.rs`. The surviving slot inherits the
    /// lower-indexed shard's [`MaskCache`] with its generation bumped;
    /// the absorbed shard's cache is dropped.
    ///
    /// # Panics
    /// Panics on any [`IngestError`] (`a` or `b` out of range, `a == b`);
    /// see [`try_merge_shards`](Self::try_merge_shards) for the
    /// non-panicking variant.
    pub fn merge_shards(&mut self, a: usize, b: usize) -> usize {
        self.merge_shards_opts(a, b, &BuildOptions::default())
    }

    /// [`merge_shards`](Self::merge_shards) with an explicit worker-pool
    /// configuration for the rebuild.
    pub fn merge_shards_opts(&mut self, a: usize, b: usize, opts: &BuildOptions) -> usize {
        self.try_merge_shards_opts(a, b, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`merge_shards`](Self::merge_shards): a rejected
    /// merge returns the typed [`IngestError`] and leaves the service
    /// untouched.
    pub fn try_merge_shards(&mut self, a: usize, b: usize) -> Result<usize, IngestError> {
        self.try_merge_shards_opts(a, b, &BuildOptions::default())
    }

    /// [`try_merge_shards`](Self::try_merge_shards) with an explicit
    /// worker-pool configuration.
    pub fn try_merge_shards_opts(
        &mut self,
        a: usize,
        b: usize,
        opts: &BuildOptions,
    ) -> Result<usize, IngestError> {
        let n_shards = self.shards.len();
        for &s in &[a, b] {
            if s >= n_shards {
                return Err(IngestError::NoSuchShard { shard: s, n_shards });
            }
        }
        if a == b {
            return Err(IngestError::MergeWithSelf { shard: a });
        }
        let (lo, hi) = (a.min(b), a.max(b));
        // The merged contents are lo's datasets then hi's, regardless of
        // argument order — observable state depends on the pair, not on
        // which side was named first.
        let mut datasets = self.shards[lo].datasets.clone();
        datasets.extend(self.shards[hi].datasets.iter().cloned());
        let mut global_ids = self.shards[lo].global_ids.clone();
        global_ids.extend_from_slice(&self.shards[hi].global_ids);
        let repo = Repository::new(datasets);
        let cache = Arc::clone(self.shards[lo].engine.mask_cache());
        let dim = self.shards[lo].dim;
        let engine = self
            .build_engine(&repo, &global_ids, opts)
            .with_mask_cache(cache);
        // Commit: same id set, so `ids_in_use` is untouched; only the
        // surviving slot's (carried) cache generation is bumped.
        self.shards[lo].engine.mask_cache().invalidate();
        let bounds = shard_bounds(&repo);
        self.shards[lo] = Shard {
            engine,
            global_ids,
            dim,
            bounds,
            datasets: repo.into_datasets(),
            queries: AtomicU64::new(0),
        };
        self.shards.remove(hi);
        self.merges += 1;
        Ok(lo)
    }

    /// Per-shard size and query-load counters — the measurement side of
    /// [`rebalance_plan`](Self::rebalance_plan).
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardLoad {
                shard,
                datasets: s.global_ids.len(),
                queries: s.queries.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// [`rebalance_plan_with`](Self::rebalance_plan_with) under the
    /// default [`RebalanceConfig`].
    pub fn rebalance_plan(&self) -> Vec<RebalanceAction> {
        self.rebalance_plan_with(&RebalanceConfig::default())
    }

    /// Proposes lifecycle transitions from the current [`ShardLoad`]
    /// counters: oversized or query-hot shards propose a [`Split`]
    /// (moving the upper half of their ascending ids), and pairs of small
    /// non-splitting shards propose a [`Merge`]. The plan only *proposes*
    /// — the caller applies it (see
    /// [`apply_rebalance`](Self::apply_rebalance)), typically after
    /// policy checks of its own. Actions are ordered for sequential
    /// application: splits first (they never disturb existing indices),
    /// then merges in descending index order (removing the highest
    /// absorbed shard first never shifts a later pair).
    ///
    /// [`Split`]: RebalanceAction::Split
    /// [`Merge`]: RebalanceAction::Merge
    pub fn rebalance_plan_with(&self, cfg: &RebalanceConfig) -> Vec<RebalanceAction> {
        let loads = self.shard_loads();
        if loads.is_empty() {
            return Vec::new();
        }
        let total_q: u64 = loads.iter().map(|l| l.queries).sum();
        let mean_q = total_q as f64 / loads.len() as f64;
        let mut plan = Vec::new();
        let mut splitting = vec![false; loads.len()];
        for l in &loads {
            if l.datasets < 2 {
                continue; // nothing to divide
            }
            let hot = total_q > 0 && (l.queries as f64) > cfg.hot_factor * mean_q;
            if l.datasets > cfg.max_datasets || hot {
                let mut ids = self.shards[l.shard].global_ids.clone();
                ids.sort_unstable();
                let move_ids = ids.split_off(ids.len() / 2);
                plan.push(RebalanceAction::Split {
                    shard: l.shard,
                    move_ids,
                });
                splitting[l.shard] = true;
            }
        }
        // Merge candidates: small, non-splitting shards, paired greedily
        // smallest-first (deterministic: ties break on shard index).
        let mut small: Vec<&ShardLoad> = loads
            .iter()
            .filter(|l| !splitting[l.shard] && l.datasets <= cfg.merge_under)
            .collect();
        small.sort_by_key(|l| (l.datasets, l.shard));
        let mut merges: Vec<(usize, usize)> = Vec::new();
        for pair in small.chunks_exact(2) {
            if pair[0].datasets + pair[1].datasets <= cfg.merge_under {
                let (x, y) = (pair[0].shard, pair[1].shard);
                merges.push((x.min(y), x.max(y)));
            }
        }
        // Descending by absorbed index: each removal leaves every
        // remaining pair's (smaller) indices intact.
        merges.sort_by_key(|pair| std::cmp::Reverse(pair.1));
        plan.extend(
            merges
                .into_iter()
                .map(|(a, b)| RebalanceAction::Merge { a, b }),
        );
        plan
    }

    /// Applies a rebalance plan in order with the default worker pool,
    /// stopping at (and returning) the first rejection — by construction
    /// [`rebalance_plan`](Self::rebalance_plan)'s output applies cleanly
    /// against the state it was computed from.
    pub fn apply_rebalance(&mut self, plan: &[RebalanceAction]) -> Result<(), IngestError> {
        self.apply_rebalance_opts(plan, &BuildOptions::default())
    }

    /// [`apply_rebalance`](Self::apply_rebalance) with an explicit
    /// worker-pool configuration.
    pub fn apply_rebalance_opts(
        &mut self,
        plan: &[RebalanceAction],
        opts: &BuildOptions,
    ) -> Result<(), IngestError> {
        for action in plan {
            match action {
                RebalanceAction::Split { shard, move_ids } => {
                    self.try_split_shard_opts(*shard, move_ids, opts)?;
                }
                RebalanceAction::Merge { a, b } => {
                    self.try_merge_shards_opts(*a, *b, opts)?;
                }
            }
        }
        Ok(())
    }

    /// Number of shards currently served.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total datasets across all shards.
    pub fn n_datasets(&self) -> usize {
        self.shards.iter().map(|s| s.engine.n_datasets()).sum()
    }

    /// The schema dimension served, or `None` while no shard is loaded.
    pub fn dim(&self) -> Option<usize> {
        self.shards.first().map(|s| s.dim)
    }

    /// Checks every expression's predicate dimensionalities against the
    /// served schema, reporting the first mismatch as a typed
    /// [`EngineError::DimensionMismatch`]. A no-op while no shard is
    /// loaded (an empty service has no schema to violate). The serving
    /// tier (`dds-server`) runs this up front so a whole request —
    /// batches included — is rejected all-or-nothing before any scatter.
    pub fn schema_check(&self, exprs: &[LogicalExpr]) -> Result<(), EngineError> {
        let Some(dim) = self.dim() else {
            return Ok(());
        };
        for expr in exprs {
            if let Some((expected, got)) = expr_dim_mismatch(expr, dim) {
                return Err(EngineError::DimensionMismatch { expected, got });
            }
        }
        Ok(())
    }

    /// The stable ids of shard `shard`'s datasets, in shard-local order.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn global_ids(&self, shard: usize) -> &[GlobalId] {
        &self.shards[shard].global_ids
    }

    /// Read access to shard `shard`'s engine (per-shard instrumentation:
    /// its `index_queries`, its [`MaskCache`] bounds and counters). Hits
    /// returned by the shard engine directly are shard-local — translate
    /// them through [`global_ids`](Self::global_ids) before mixing with
    /// service-level answers.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_engine(&self, shard: usize) -> &MixedQueryEngine {
        &self.shards[shard].engine
    }

    /// Underlying index queries summed across every shard engine — each is
    /// an `AtomicU64`, so the aggregate survives concurrent scatter
    /// workers (and advances by the number of distinct *uncached*
    /// predicates per shard).
    pub fn index_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.index_queries()).sum()
    }

    /// Mask-cache `(hits, misses)` summed across every shard's
    /// [`MaskCache`] — lifetime totals, surviving shard rebuilds (a
    /// rebuilt shard keeps its cache object).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let c = s.engine.mask_cache();
            (h + c.hits(), m + c.misses())
        })
    }

    /// (expression, shard) scatter units the bounding-box routing tier
    /// skipped over the service lifetime.
    pub fn shards_routed_past(&self) -> u64 {
        self.routed_past.load(Ordering::Relaxed)
    }

    /// Scatter units the synopsis mass bound skipped that the box tier
    /// could not (disjoint from
    /// [`shards_routed_past`](Self::shards_routed_past); total skipped is
    /// the sum).
    pub fn shards_routed_by_synopsis(&self) -> u64 {
        self.routed_by_synopsis.load(Ordering::Relaxed)
    }

    /// The engine's scatter-path latency histograms (routing decisions,
    /// per-scatter-unit execution). Observational only — see
    /// [`EngineTelemetry`].
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// A cheap counter snapshot (no index structure is touched) — the
    /// per-request stats surface of a serving layer.
    pub fn stats_snapshot(&self) -> ShardedStats {
        let (cache_hits, cache_misses) = self.cache_stats();
        ShardedStats {
            n_shards: self.n_shards() as u64,
            n_datasets: self.n_datasets() as u64,
            index_queries: self.index_queries(),
            cache_hits,
            cache_misses,
            shards_routed_past: self.shards_routed_past(),
            shards_routed_by_synopsis: self.shards_routed_by_synopsis(),
            splits: self.splits,
            merges: self.merges,
        }
    }

    /// The loosest Ptile guarantee band across shards (each shard states
    /// its own achieved band; a service-level statement must take the max).
    pub fn ptile_slack(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.engine.ptile_slack())
            .fold(0.0, f64::max)
    }

    /// Answers one expression: scatters it over every shard (through each
    /// shard's cross-call mask cache) and gathers the hits as **ascending
    /// stable global ids**. A shard error (every shard is built with the
    /// same ranks, so shards fail alike) is reported once.
    pub fn query(&self, expr: &LogicalExpr) -> Result<Vec<GlobalId>, EngineError> {
        self.try_query(expr)
    }

    /// [`query`](Self::query) with caller-provided scratch (reused across
    /// the sequential per-shard scatter).
    pub fn query_with(
        &self,
        expr: &LogicalExpr,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<GlobalId>, EngineError> {
        self.try_query_with(expr, scratch)
    }

    /// The fallible single-expression path: schema-checks the expression
    /// against the served dimension (typed
    /// [`EngineError::DimensionMismatch`] instead of a panic deep inside a
    /// shard's indexes), then scatters it.
    pub fn try_query(&self, expr: &LogicalExpr) -> Result<Vec<GlobalId>, EngineError> {
        self.try_query_with(expr, &mut QueryScratch::new())
    }

    /// [`try_query`](Self::try_query) with caller-provided scratch.
    pub fn try_query_with(
        &self,
        expr: &LogicalExpr,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<GlobalId>, EngineError> {
        self.schema_check(std::slice::from_ref(expr))?;
        // One DNF expansion per expression, shared by the routing check
        // and every shard's evaluation.
        let dnf = expr.to_dnf();
        let routing_started = std::time::Instant::now();
        let skip = self.routing_skip(expr, &dnf);
        self.telemetry
            .routing
            .record_duration(routing_started.elapsed());
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            match skip.as_ref().map_or(Skip::No, |sk| sk[s]) {
                Skip::Box => {
                    self.routed_past.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Skip::Synopsis => {
                    self.routed_by_synopsis.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Skip::No => {}
            }
            shard.queries.fetch_add(1, Ordering::Relaxed);
            let unit_started = std::time::Instant::now();
            let hits = shard.engine.query_cached_dnf(&dnf, scratch);
            self.telemetry
                .scatter
                .record_duration(unit_started.elapsed());
            out.extend(hits?.into_iter().map(|j| shard.global_ids[j]));
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Answers a slice of expressions with the default worker pool: every
    /// `(expression, shard)` pair is one scatter unit over
    /// `dds_pool::par_map_with` (per-worker scratch), gathered back
    /// **input-ordered** — `result[i]` answers `exprs[i]`, as ascending
    /// global ids, bit-identical to [`query`](Self::query) on each
    /// expression at every shard count × thread count (pinned by
    /// `tests/shard_equivalence.rs`).
    pub fn query_batch(&self, exprs: &[LogicalExpr]) -> Vec<Result<Vec<GlobalId>, EngineError>> {
        self.try_query_batch(exprs)
    }

    /// [`query_batch`](Self::query_batch) with an explicit worker-pool
    /// configuration.
    pub fn query_batch_opts(
        &self,
        exprs: &[LogicalExpr],
        opts: &BuildOptions,
    ) -> Vec<Result<Vec<GlobalId>, EngineError>> {
        self.try_query_batch_opts(exprs, opts)
    }

    /// The fallible batch path: each expression is schema-checked
    /// independently, so a wrong-dimension expression yields
    /// `Err(DimensionMismatch)` *in its slot* while the rest of the batch
    /// is still scattered and answered.
    pub fn try_query_batch(
        &self,
        exprs: &[LogicalExpr],
    ) -> Vec<Result<Vec<GlobalId>, EngineError>> {
        self.try_query_batch_opts(exprs, &BuildOptions::default())
    }

    /// [`try_query_batch`](Self::try_query_batch) with an explicit
    /// worker-pool configuration.
    pub fn try_query_batch_opts(
        &self,
        exprs: &[LogicalExpr],
        opts: &BuildOptions,
    ) -> Vec<Result<Vec<GlobalId>, EngineError>> {
        let n_shards = self.shards.len();
        if n_shards == 0 {
            return exprs.iter().map(|_| Ok(Vec::new())).collect();
        }
        // Per-expression schema verdicts, taken before DNF expansion or
        // routing: a mismatched expression must neither expand nor touch
        // shard bounding boxes built for a different dimension.
        let dim = self.dim().unwrap_or(0);
        let schema_errs: Vec<Option<EngineError>> = exprs
            .iter()
            .map(|e| {
                expr_dim_mismatch(e, dim)
                    .map(|(expected, got)| EngineError::DimensionMismatch { expected, got })
            })
            .collect();
        // One DNF expansion per expression, shared read-only by the
        // routing plans and every (expression, shard) scatter unit — the
        // workers never re-expand.
        let dnfs: Vec<Vec<Vec<Predicate>>> = exprs
            .iter()
            .zip(&schema_errs)
            .map(|(e, err)| {
                if err.is_some() {
                    Vec::new()
                } else {
                    e.to_dnf()
                }
            })
            .collect();
        let plans: Vec<Option<Vec<Skip>>> = exprs
            .iter()
            .zip(&dnfs)
            .zip(&schema_errs)
            .map(|((e, dnf), err)| {
                if err.is_some() {
                    None
                } else {
                    let routing_started = std::time::Instant::now();
                    let skip = self.routing_skip(e, dnf);
                    self.telemetry
                        .routing
                        .record_duration(routing_started.elapsed());
                    skip
                }
            })
            .collect();
        // Scatter: unit (e, s) answers expression e on shard s. Flattening
        // both dimensions keeps the pool busy even when the batch is
        // smaller than the worker count.
        let units: Vec<(usize, usize)> = (0..exprs.len())
            .flat_map(|e| (0..n_shards).map(move |s| (e, s)))
            .collect();
        let partials = par_map_with(opts, &units, QueryScratch::new, |scratch, _, &(e, s)| {
            if let Some(err) = &schema_errs[e] {
                return Err(err.clone());
            }
            match plans[e].as_ref().map_or(Skip::No, |sk| sk[s]) {
                Skip::Box => {
                    self.routed_past.fetch_add(1, Ordering::Relaxed);
                    return Ok(Vec::new());
                }
                Skip::Synopsis => {
                    self.routed_by_synopsis.fetch_add(1, Ordering::Relaxed);
                    return Ok(Vec::new());
                }
                Skip::No => {}
            }
            let shard = &self.shards[s];
            shard.queries.fetch_add(1, Ordering::Relaxed);
            let unit_started = std::time::Instant::now();
            let hits = shard.engine.query_cached_dnf(&dnfs[e], scratch);
            self.telemetry
                .scatter
                .record_duration(unit_started.elapsed());
            hits.map(|hits| {
                hits.into_iter()
                    .map(|j| shard.global_ids[j])
                    .collect::<Vec<GlobalId>>()
            })
        });
        // Gather: merge each expression's per-shard partials in shard
        // order (errors are identical across shards — first one wins),
        // then canonicalize to ascending global ids.
        let mut results = Vec::with_capacity(exprs.len());
        let mut partials = partials.into_iter();
        for _ in 0..exprs.len() {
            let mut merged: Result<Vec<GlobalId>, EngineError> = Ok(Vec::new());
            for partial in partials.by_ref().take(n_shards) {
                if let Ok(acc) = &mut merged {
                    match partial {
                        Ok(mut ids) => acc.append(&mut ids),
                        Err(e) => merged = Err(e),
                    }
                }
            }
            if let Ok(ids) = &mut merged {
                ids.sort_unstable();
            }
            results.push(merged);
        }
        results
    }

    /// The routing verdicts for one expression (whose caller-expanded DNF
    /// is passed in, so the expansion is paid once per query): `skip[s]`
    /// says how shard `s` was proven silent, if it was. `None` means
    /// "scatter everywhere" (routing disabled, nothing skippable, or the
    /// expression may error — error answers must come from the shards,
    /// not be routed away).
    fn routing_skip(&self, expr: &LogicalExpr, dnf: &[Vec<Predicate>]) -> Option<Vec<Skip>> {
        if !self.route || self.shards.is_empty() || !self.ranks_indexed(expr) {
            return None;
        }
        let plan = self.routing_plan(dnf)?;
        let skip: Vec<Skip> = self
            .shards
            .iter()
            .map(|s| Self::shard_skip(&plan, s, self.synopsis_route))
            .collect();
        skip.iter().any(|&v| v != Skip::No).then_some(skip)
    }

    /// Pre-clamps one expression's DNF into per-clause routable literals,
    /// hoisting the θ clamp and the per-axis query intervals out of the
    /// per-shard loop. `None` means some clause has no routable percentile
    /// literal of the served dimension — that clause can never be proven
    /// silent, so no shard is skippable and the per-shard work would be
    /// wasted.
    fn routing_plan(&self, dnf: &[Vec<Predicate>]) -> Option<Vec<PlanClause>> {
        let dim = self.dim()?;
        let mut clauses = Vec::with_capacity(dnf.len());
        for clause in dnf {
            // An empty clause contributes nothing by the DNF evaluation
            // contract, so it never blocks a skip.
            if clause.is_empty() {
                clauses.push(PlanClause::Vacuous);
                continue;
            }
            let mut lits: Vec<RoutingLit> = Vec::new();
            for p in clause {
                if let MeasureFunction::Percentile(r) = &p.measure {
                    // A dimension mismatch panics in the engine; never
                    // route it away.
                    if r.dim() == dim {
                        lits.push(RoutingLit {
                            // Mirrors the θ clamp of the engine's mask
                            // computation exactly.
                            lo: p.theta.lo.max(0.0),
                            rect: (0..dim).map(|h| (r.lo_at(h), r.hi_at(h))).collect(),
                        });
                    }
                }
            }
            if lits.is_empty() {
                return None;
            }
            clauses.push(PlanClause::Lits(lits));
        }
        Some(clauses)
    }

    /// The verdict for one shard against a pre-clamped plan. The box tier
    /// runs first and reproduces the historical rule exactly (so
    /// `shards_routed_past` keeps its meaning); the synopsis tier only
    /// sees shards the box could not prove silent. Both require every
    /// clause to carry a skip-proving literal; see the module docs for the
    /// soundness argument.
    fn shard_skip(plan: &[PlanClause], shard: &Shard, synopsis_route: bool) -> Skip {
        let Some(bounds) = &shard.bounds else {
            // A NaN coordinate was seen: containment reasoning is unsound
            // (and the engine carries no synopsis either).
            return Skip::No;
        };
        let margin = shard.engine.ptile_margin();
        let box_skip = plan.iter().all(|c| match c {
            PlanClause::Vacuous => true,
            PlanClause::Lits(lits) => lits.iter().any(|l| {
                // Disjoint from the raw-point box in some attribute, and
                // the clamped lower bound clears the zero-mass path.
                l.lo > margin
                    && l.rect
                        .iter()
                        .zip(bounds)
                        .any(|(q, b)| q.1 < b.0 || q.0 > b.1)
            }),
        });
        if box_skip {
            return Skip::Box;
        }
        if !synopsis_route {
            return Skip::No;
        }
        let Some(syn) = shard.engine.routing_synopsis() else {
            return Skip::No;
        };
        let syn_skip = plan.iter().all(|c| match c {
            PlanClause::Vacuous => true,
            PlanClause::Lits(lits) => lits.iter().any(|l| {
                // U + margin < a_θ: neither the main reporting path nor
                // the zero-mass empty-slab path can fire for any member
                // dataset (at U = 0 this is exactly the box tier's
                // `margin < lo` precondition).
                syn.mass_bound(&l.rect) + margin < l.lo
            }),
        });
        if syn_skip {
            Skip::Synopsis
        } else {
            Skip::No
        }
    }

    /// True iff every preference rank the expression uses is indexed —
    /// i.e. no shard can answer it with `MissingRank` (shards share `ks`,
    /// so they fail alike).
    fn ranks_indexed(&self, expr: &LogicalExpr) -> bool {
        match expr {
            LogicalExpr::Pred(p) => match &p.measure {
                MeasureFunction::TopK { k, .. } => self.ks.contains(k),
                MeasureFunction::Percentile(_) => true,
            },
            LogicalExpr::And(xs) | LogicalExpr::Or(xs) => xs.iter().all(|x| self.ranks_indexed(x)),
        }
    }

    /// Validates a shard's ids without touching any state: one per
    /// dataset, distinct, and none served by another shard (ids in
    /// `exempt` — the shard being replaced — don't count). Also checks the
    /// schema dimension against the served shards and a declared φ anchor
    /// against the prospective catalog size, so the union-bound failure
    /// probability can never be silently diluted by ingesting past the
    /// anchor. An error here leaves the service exactly as it was.
    fn validate_ids(
        &self,
        repo: &Repository,
        global_ids: &[GlobalId],
        exempt: Option<usize>,
    ) -> Result<(), IngestError> {
        if global_ids.len() != repo.len() {
            return Err(IngestError::ArityMismatch {
                datasets: repo.len(),
                ids: global_ids.len(),
            });
        }
        if let Some(expected) = self
            .shards
            .iter()
            .enumerate()
            .find(|(s, _)| Some(*s) != exempt)
            .map(|(_, s)| s.dim)
        {
            if repo.dim() != expected {
                return Err(IngestError::SchemaMismatch {
                    expected,
                    got: repo.dim(),
                });
            }
        }
        if let Some(d) = self.ptile_params.phi_datasets {
            let replaced = exempt.map_or(0, |s| self.shards[s].engine.n_datasets());
            let prospective = self.n_datasets() - replaced + repo.len();
            if prospective > d {
                return Err(IngestError::PhiAnchorExceeded {
                    anchor: d,
                    prospective,
                });
            }
        }
        // Hashed exempt set: the normal rebuild reuses every replaced id,
        // so a linear scan per id would make validation quadratic in the
        // shard size.
        let exempt: HashSet<GlobalId> = exempt
            .map(|s| self.shards[s].global_ids.iter().copied().collect())
            .unwrap_or_default();
        let mut fresh = HashSet::with_capacity(global_ids.len());
        for &id in global_ids {
            if !fresh.insert(id) {
                return Err(IngestError::DuplicateId(id));
            }
            if self.ids_in_use.contains(&id) && !exempt.contains(&id) {
                return Err(IngestError::IdInUse(id));
            }
        }
        Ok(())
    }

    /// Builds one shard engine with the service-wide parameters, seeding
    /// every dataset's sampling RNG by its **global id** (not its
    /// shard-local position): a dataset draws the same sample wherever it
    /// lands, so re-sharding cannot perturb sampled builds.
    fn build_engine(
        &self,
        repo: &Repository,
        global_ids: &[GlobalId],
        opts: &BuildOptions,
    ) -> MixedQueryEngine {
        MixedQueryEngine::build_opts(
            repo,
            &self.ks,
            self.ptile_params.clone().with_seed_ids(global_ids.to_vec()),
            self.pref_params.clone(),
            opts,
        )
    }
}

/// Per-attribute `(min, max)` over every raw point in the shard, or `None`
/// when a NaN coordinate makes containment reasoning unsound (routing is
/// then disabled for the shard; answers are unaffected).
fn shard_bounds(repo: &Repository) -> Option<Vec<(f64, f64)>> {
    let d = repo.dim();
    let mut bounds = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
    for points in repo.point_sets() {
        for p in points {
            for (h, b) in bounds.iter_mut().enumerate() {
                let x = p[h];
                if x.is_nan() {
                    return None;
                }
                b.0 = b.0.min(x);
                b.1 = b.1.max(x);
            }
        }
    }
    Some(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Dataset, Predicate};
    use dds_geom::Rect;

    fn dataset(name: &str, xs: &[f64]) -> Dataset {
        Dataset::from_rows(name, xs.iter().map(|&x| vec![x]).collect())
    }

    fn service() -> ShardedEngine {
        let mut svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
        );
        // Global ids deliberately out of shard-local order and
        // non-contiguous: the shard map must do real translation.
        svc.add_shard(
            &Repository::new(vec![
                dataset("low", &[1.0, 2.0, 3.0]),
                dataset("high", &[90.0, 95.0]),
            ]),
            &[7, 3],
        );
        svc.add_shard(&Repository::new(vec![dataset("mid", &[48.0, 52.0])]), &[5]);
        svc
    }

    fn low_expr() -> LogicalExpr {
        LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 10.0),
            0.9,
        ))
    }

    /// A percentile predicate overlapping both test shards' value boxes
    /// (shard 0 spans [1, 95], shard 1 [48, 52]), for the cache-counter
    /// tests that must scatter everywhere.
    fn wide_expr() -> LogicalExpr {
        LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 60.0),
            0.9,
        ))
    }

    #[test]
    fn hits_come_back_as_sorted_global_ids() {
        let svc = service();
        assert_eq!(svc.n_shards(), 2);
        assert_eq!(svc.n_datasets(), 3);
        assert_eq!(svc.dim(), Some(1));
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
        // A predicate matching all three datasets gathers across shards in
        // ascending id order, not ingest order.
        let all = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 100.0),
            0.9,
        ));
        assert_eq!(svc.query(&all), Ok(vec![3, 5, 7]));
    }

    #[test]
    fn batch_is_input_ordered_and_matches_single_queries() {
        let svc = service();
        let exprs = vec![
            low_expr(),
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(40.0, 60.0),
                0.9,
            )),
        ];
        let singles: Vec<_> = exprs.iter().map(|e| svc.query(e)).collect();
        assert_eq!(singles, vec![Ok(vec![7]), Ok(vec![5])]);
        for threads in [1, 2, 8] {
            assert_eq!(
                svc.query_batch_opts(&exprs, &BuildOptions::with_threads(threads)),
                singles,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn missing_rank_errors_gather_once() {
        let svc = service();
        let bad = LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 9, 0.0));
        assert_eq!(svc.query(&bad), Err(EngineError::MissingRank(9)));
        let batch = svc.query_batch(&[low_expr(), bad]);
        assert_eq!(batch[0], Ok(vec![7]));
        assert_eq!(batch[1], Err(EngineError::MissingRank(9)));
    }

    #[test]
    fn empty_service_answers_empty() {
        let svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
        );
        assert_eq!(svc.dim(), None);
        assert_eq!(svc.query(&low_expr()), Ok(vec![]));
        assert_eq!(svc.query_batch(&[low_expr()]), vec![Ok(vec![])]);
        // No shards → no schema to violate: a 3-d expression passes.
        let wide = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::from_bounds(&[0.0; 3], &[1.0; 3]),
            0.5,
        ));
        assert_eq!(svc.schema_check(std::slice::from_ref(&wide)), Ok(()));
    }

    #[test]
    fn dimension_mismatch_is_typed_on_every_query_path() {
        let svc = service();
        let bad = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::from_bounds(&[0.0, 0.0], &[1.0, 1.0]),
            0.5,
        ));
        let want = EngineError::DimensionMismatch {
            expected: 1,
            got: 2,
        };
        assert_eq!(
            svc.schema_check(std::slice::from_ref(&bad)),
            Err(want.clone())
        );
        assert_eq!(svc.try_query(&bad), Err(want.clone()));
        assert_eq!(svc.query(&bad), Err(want.clone()));
        // Batch: the bad slot errs, the good slots still answer — at
        // every thread count.
        for threads in [1, 2, 8] {
            let batch = svc.try_query_batch_opts(
                &[low_expr(), bad.clone(), wide_expr()],
                &BuildOptions::with_threads(threads),
            );
            assert_eq!(batch[0], Ok(vec![7]), "threads = {threads}");
            assert_eq!(batch[1], Err(want.clone()), "threads = {threads}");
            assert_eq!(batch[2], Ok(vec![5, 7]), "threads = {threads}");
        }
        // The service keeps serving afterwards.
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
    }

    #[test]
    #[should_panic(expected = "already served")]
    fn duplicate_global_ids_are_rejected() {
        let mut svc = service();
        svc.add_shard(&Repository::new(vec![dataset("dup", &[1.0, 2.0])]), &[5]);
    }

    #[test]
    fn try_ingest_reports_typed_errors_and_leaves_state_intact() {
        let mut svc = service();
        let repo = Repository::new(vec![dataset("dup", &[1.0, 2.0])]);
        assert_eq!(svc.try_add_shard(&repo, &[5]), Err(IngestError::IdInUse(5)));
        assert_eq!(
            svc.try_add_shard(&repo, &[9, 9]),
            Err(IngestError::ArityMismatch {
                datasets: 1,
                ids: 2
            })
        );
        assert_eq!(svc.try_add_shard(&repo, &[9]), Ok(2));
        assert_eq!(
            svc.try_rebuild_shard(9, &repo, &[9]),
            Err(IngestError::NoSuchShard {
                shard: 9,
                n_shards: 3
            })
        );
        let two_d = Repository::new(vec![Dataset::from_rows("flat", vec![vec![1.0, 2.0]])]);
        assert_eq!(
            svc.try_add_shard(&two_d, &[40]),
            Err(IngestError::SchemaMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            svc.try_rebuild_shard(0, &two_d, &[40, 41]),
            Err(IngestError::ArityMismatch {
                datasets: 1,
                ids: 2
            })
        );
        // A duplicate within the shard is distinguished from a clash with
        // another shard.
        assert_eq!(
            svc.try_add_shard(
                &Repository::new(vec![dataset("a", &[1.0]), dataset("b", &[2.0])]),
                &[77, 77]
            ),
            Err(IngestError::DuplicateId(77))
        );
        // The rejections above changed nothing; only the one successful
        // add landed (its dataset "dup" spans [1, 2], so it answers the
        // low-band query under id 9).
        assert_eq!((svc.n_shards(), svc.n_datasets()), (3, 4));
        assert_eq!(svc.query(&low_expr()), Ok(vec![7, 9]));
    }

    #[test]
    fn phi_anchor_rejection_is_typed() {
        let mut svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::default().with_phi_datasets(2),
            PrefBuildParams::exact_centralized(),
        );
        svc.add_shard(
            &Repository::new(vec![dataset("a", &[1.0]), dataset("b", &[2.0])]),
            &[0, 1],
        );
        assert_eq!(
            svc.try_add_shard(&Repository::new(vec![dataset("c", &[3.0])]), &[2]),
            Err(IngestError::PhiAnchorExceeded {
                anchor: 2,
                prospective: 3
            })
        );
    }

    #[test]
    fn ingest_errors_display_and_box() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(IngestError::IdInUse(5)),
            Box::new(IngestError::DuplicateId(5)),
            Box::new(IngestError::NoSuchShard {
                shard: 9,
                n_shards: 2,
            }),
        ];
        assert!(errors[0].to_string().contains("already served"));
        assert!(errors[1].to_string().contains("repeats within"));
        assert!(errors[2].to_string().contains("no such shard: 9"));
    }

    #[test]
    fn rebuild_swaps_data_keeps_other_shards_and_reuses_ids() {
        let mut svc = service();
        // Shard 1's dataset moves from the middle to the low band; its id
        // may be reused because the rebuild releases it first.
        svc.rebuild_shard(
            1,
            &Repository::new(vec![dataset("mid2", &[4.0, 6.0])]),
            &[5],
        );
        assert_eq!(svc.query(&low_expr()), Ok(vec![5, 7]));
    }

    #[test]
    fn rebuild_invalidates_only_that_shards_cache() {
        let mut svc = service();
        // An expression overlapping both shards' value boxes, so the
        // routing fast path scatters it everywhere and the counters below
        // measure pure cache behaviour.
        let exprs = vec![wide_expr()];
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
        let (_, misses_cold) = svc.cache_stats();
        assert_eq!(misses_cold, 2, "one mask per shard, both cold");
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
        let (hits_warm, misses_warm) = svc.cache_stats();
        assert_eq!((hits_warm, misses_warm), (2, 2), "second batch all cached");
        svc.rebuild_shard(
            1,
            &Repository::new(vec![dataset("mid2", &[47.0, 53.0])]),
            &[5],
        );
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
        let (hits_after, misses_after) = svc.cache_stats();
        assert_eq!(
            (hits_after, misses_after),
            (3, 3),
            "shard 0 hits its cache; rebuilt shard 1 recomputes"
        );
        assert_eq!(svc.shards_routed_past(), 0, "wide_expr overlaps every box");
    }

    #[test]
    fn routing_skips_provably_disjoint_shards() {
        let svc = service();
        // low_expr's rectangle [0, 10] is disjoint from shard 1's value
        // box [48, 52] and the threshold 0.9 clears the (exact) margin 0,
        // so shard 1 is provably uninvolved.
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
        assert_eq!(svc.shards_routed_past(), 1);
        // Batch path skips too — and the skipped shard's cache is never
        // touched (only shard 0 records a lookup).
        let _ = svc.query_batch_opts(&[low_expr()], &BuildOptions::serial());
        assert_eq!(svc.shards_routed_past(), 2);
        let (h, m) = svc.cache_stats();
        assert_eq!(m, 1, "only shard 0 computed a mask");
        assert_eq!(h + m, 2, "two scatter-side lookups on shard 0 in total");
        // A rectangle beyond every shard: all shards skipped, empty answer.
        let far = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(200.0, 300.0),
            0.5,
        ));
        assert_eq!(svc.query(&far), Ok(vec![]));
        assert_eq!(svc.shards_routed_past(), 4);
    }

    #[test]
    fn routing_matches_unrouted_answers() {
        let routed = service();
        let unrouted = {
            let mut svc = ShardedEngine::new(
                &[1],
                PtileBuildParams::exact_centralized(),
                PrefBuildParams::exact_centralized(),
            )
            .with_routing(false);
            svc.add_shard(
                &Repository::new(vec![
                    dataset("low", &[1.0, 2.0, 3.0]),
                    dataset("high", &[90.0, 95.0]),
                ]),
                &[7, 3],
            );
            svc.add_shard(&Repository::new(vec![dataset("mid", &[48.0, 52.0])]), &[5]);
            svc
        };
        let exprs: Vec<LogicalExpr> = (0..12)
            .map(|i| {
                LogicalExpr::Pred(Predicate::percentile_at_least(
                    Rect::interval(i as f64 * 20.0 - 40.0, i as f64 * 20.0 - 20.0),
                    0.4,
                ))
            })
            .collect();
        assert_eq!(routed.query_batch(&exprs), unrouted.query_batch(&exprs));
        assert_eq!(unrouted.shards_routed_past(), 0, "routing really was off");
        assert!(routed.shards_routed_past() > 0, "routing really engaged");
    }

    #[test]
    fn routing_never_swallows_missing_rank_errors() {
        let svc = service();
        // Every shard's box is disjoint from [200, 300], but the top-k
        // literal uses an unindexed rank: the typed error must survive —
        // routing declines expressions that can error.
        let expr = LogicalExpr::And(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(200.0, 300.0),
                0.9,
            )),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 9, 0.0)),
        ]);
        assert_eq!(svc.query(&expr), Err(EngineError::MissingRank(9)));
        assert_eq!(svc.shards_routed_past(), 0);
        assert_eq!(
            svc.query_batch(&[expr]),
            vec![Err(EngineError::MissingRank(9))]
        );
    }

    #[test]
    fn routing_respects_sampling_margins() {
        // A sampled build has margin > 0: thresholds at or below it must
        // not route (the empty-slab path may legitimately report a
        // zero-mass dataset), larger thresholds may.
        let sets: Vec<Vec<f64>> = (0..2)
            .map(|i| (0..80).map(|j| (i * 200 + j) as f64).collect())
            .collect();
        let mut svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::default()
                .with_eps(0.4)
                .with_phi_datasets(2),
            PrefBuildParams::exact_centralized(),
        );
        for (i, xs) in sets.iter().enumerate() {
            svc.add_shard(
                &Repository::new(vec![dataset(&format!("d{i}"), xs)]),
                &[i as GlobalId],
            );
        }
        let margins: Vec<f64> = (0..svc.n_shards())
            .map(|s| svc.shard_engine(s).ptile_margin())
            .collect();
        let min_margin = margins.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let max_margin = margins.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(min_margin > 0.0, "sampling must be engaged");
        assert!(max_margin < 0.99, "margin left no routable threshold");
        // Disjoint rectangle, threshold below every shard's margin: no
        // skip (each shard must be consulted for the zero-mass corner
        // case).
        let below = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(500.0, 600.0),
            min_margin / 2.0,
        ));
        let _ = svc.query(&below);
        assert_eq!(svc.shards_routed_past(), 0);
        // Threshold above every shard's margin: both shards skipped.
        let above = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(500.0, 600.0),
            (max_margin + 0.01).min(1.0),
        ));
        assert_eq!(svc.query(&above), Ok(vec![]));
        assert_eq!(svc.shards_routed_past(), 2);
    }

    #[test]
    fn nan_points_disable_routing_bounds() {
        // NaN data cannot currently be *built* (the coordinate grids
        // reject it), so the scatter-everywhere guard is pinned at the
        // summary level: a NaN anywhere in the shard yields no bounding
        // box, and `shard_skip` returns `Skip::No` for a boundless shard
        // before consulting margins or synopses. The synopsis side of the
        // same guard is pinned in `ptile::routing`.
        let nan_repo = Repository::new(vec![Dataset::from_rows(
            "nan",
            vec![vec![0.0], vec![f64::NAN], vec![2.0]],
        )]);
        assert!(shard_bounds(&nan_repo).is_none());
        let clean = Repository::new(vec![dataset("clean", &[1.0, 2.0])]);
        assert_eq!(shard_bounds(&clean), Some(vec![(1.0, 2.0)]));
    }

    #[test]
    fn synopsis_routes_past_interior_gaps_the_box_cannot_see() {
        // Shard 0's datasets sit at the two extremes of the value range,
        // so its bounding box [0, 100] overlaps an interior query the
        // shard can never answer — only the mass bound can prove it
        // silent. Shard 1 lives inside the query and answers it.
        let build = || {
            let mut svc = ShardedEngine::new(
                &[1],
                PtileBuildParams::exact_centralized(),
                PrefBuildParams::exact_centralized(),
            );
            svc.add_shard(
                &Repository::new(vec![
                    dataset("lo", &[0.0, 1.0, 2.0, 3.0]),
                    dataset("hi", &[97.0, 98.0, 99.0, 100.0]),
                ]),
                &[1, 2],
            );
            svc.add_shard(
                &Repository::new(vec![dataset("mid", &[49.0, 50.0, 51.0])]),
                &[3],
            );
            svc
        };
        let interior = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(40.0, 60.0),
            0.6,
        ));
        let svc = build();
        assert_eq!(svc.query(&interior), Ok(vec![3]));
        assert_eq!(svc.shards_routed_past(), 0, "the box overlaps [40, 60]");
        assert_eq!(svc.shards_routed_by_synopsis(), 1);
        // The batch path classifies identically, and the skipped shard's
        // cache is never touched.
        let _ = svc.query_batch_opts(std::slice::from_ref(&interior), &BuildOptions::serial());
        assert_eq!(svc.shards_routed_by_synopsis(), 2);
        let (_, m) = svc.cache_stats();
        assert_eq!(m, 1, "only shard 1 ever computed a mask");
        // The box-only configuration still answers identically — the
        // synopsis tier is pure pruning.
        let box_only = build().with_synopsis_routing(false);
        assert_eq!(box_only.query(&interior), Ok(vec![3]));
        assert_eq!(box_only.shards_routed_by_synopsis(), 0);
        assert_eq!(box_only.shards_routed_past(), 0);
        assert_eq!(
            svc.stats_snapshot().shards_routed_by_synopsis,
            2,
            "snapshot carries the new counter"
        );
    }

    #[test]
    fn stats_snapshot_aggregates_counters() {
        let svc = service();
        let _ = svc.query(&low_expr());
        let snap = svc.stats_snapshot();
        assert_eq!(snap.n_shards, 2);
        assert_eq!(snap.n_datasets, 3);
        assert_eq!(snap.shards_routed_past, 1);
        assert_eq!(
            snap.shards_routed_by_synopsis, 0,
            "a box-tier skip never counts against the synopsis tier"
        );
        assert_eq!(snap.cache_misses, 1);
        assert!(snap.index_queries >= 1);
        assert_eq!((snap.splits, snap.merges), (0, 0));
    }

    #[test]
    fn split_then_merge_preserves_answers() {
        let mut svc = service();
        let all = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 100.0),
            0.9,
        ));
        let before = svc.query(&all);
        assert_eq!(before, Ok(vec![3, 5, 7]));
        // Shard 0 holds ids {7, 3}; move 3 out into its own shard.
        let new = svc.split_shard(0, &[3]);
        assert_eq!(new, 2);
        assert_eq!(svc.n_shards(), 3);
        assert_eq!(svc.global_ids(0), &[7]);
        assert_eq!(svc.global_ids(2), &[3]);
        assert_eq!(svc.n_datasets(), 3, "splits conserve the catalog");
        assert_eq!(svc.query(&all), before);
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
        // Merge it back; the surviving slot is min(0, 2) = 0 and the
        // merged shard appends the absorbed shard's datasets.
        assert_eq!(svc.merge_shards(2, 0), 0);
        assert_eq!(svc.n_shards(), 2);
        assert_eq!(svc.global_ids(0), &[7, 3]);
        assert_eq!(svc.query(&all), before);
        let snap = svc.stats_snapshot();
        assert_eq!((snap.splits, snap.merges), (1, 1));
    }

    #[test]
    fn split_rejections_are_typed_and_leave_state_intact() {
        let mut svc = service();
        assert_eq!(
            svc.try_split_shard(9, &[7]),
            Err(IngestError::NoSuchShard {
                shard: 9,
                n_shards: 2
            })
        );
        assert_eq!(
            svc.try_split_shard(0, &[5]),
            Err(IngestError::IdNotInShard { id: 5, shard: 0 })
        );
        assert_eq!(
            svc.try_split_shard(0, &[7, 7]),
            Err(IngestError::DuplicateId(7))
        );
        assert_eq!(
            svc.try_split_shard(0, &[]),
            Err(IngestError::EmptySplitSide {
                shard: 0,
                moving: 0,
                datasets: 2
            })
        );
        assert_eq!(
            svc.try_split_shard(0, &[7, 3]),
            Err(IngestError::EmptySplitSide {
                shard: 0,
                moving: 2,
                datasets: 2
            })
        );
        // A one-dataset shard can never split.
        assert_eq!(
            svc.try_split_shard(1, &[5]),
            Err(IngestError::EmptySplitSide {
                shard: 1,
                moving: 1,
                datasets: 1
            })
        );
        assert_eq!((svc.n_shards(), svc.n_datasets()), (2, 3));
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
    }

    #[test]
    fn merge_rejections_are_typed_and_leave_state_intact() {
        let mut svc = service();
        assert_eq!(
            svc.try_merge_shards(0, 9),
            Err(IngestError::NoSuchShard {
                shard: 9,
                n_shards: 2
            })
        );
        assert_eq!(
            svc.try_merge_shards(1, 1),
            Err(IngestError::MergeWithSelf { shard: 1 })
        );
        assert_eq!((svc.n_shards(), svc.n_datasets()), (2, 3));
        assert_eq!(svc.query(&low_expr()), Ok(vec![7]));
    }

    #[test]
    #[should_panic(expected = "no such shard")]
    fn split_panicking_wrapper_preserves_messages() {
        let mut svc = service();
        svc.split_shard(9, &[7]);
    }

    #[test]
    #[should_panic(expected = "cannot merge shard 0 with itself")]
    fn merge_panicking_wrapper_preserves_messages() {
        let mut svc = service();
        svc.merge_shards(0, 0);
    }

    #[test]
    fn transitions_scope_cache_invalidation_to_the_touched_shards() {
        let mut svc = service();
        let _ = svc.query_batch_opts(&[wide_expr()], &BuildOptions::serial());
        let gen0 = svc.shard_engine(0).mask_cache().generation();
        let gen1 = svc.shard_engine(1).mask_cache().generation();
        // Split shard 0: its carried cache bumps, shard 1's does not, and
        // the new shard starts on a fresh cache object.
        svc.split_shard(0, &[3]);
        assert_eq!(svc.shard_engine(0).mask_cache().generation(), gen0 + 1);
        assert_eq!(svc.shard_engine(1).mask_cache().generation(), gen1);
        assert_eq!(svc.shard_engine(2).mask_cache().len(), 0);
        // Merge shards 1 and 2: the surviving slot (1) carries shard 1's
        // cache bumped again; shard 0 is untouched.
        let merged = svc.merge_shards(1, 2);
        assert_eq!(merged, 1);
        assert_eq!(svc.shard_engine(0).mask_cache().generation(), gen0 + 1);
        assert_eq!(svc.shard_engine(1).mask_cache().generation(), gen1 + 1);
    }

    #[test]
    fn shard_loads_count_evaluated_units_and_reset_on_transition() {
        let mut svc = service();
        // low_expr routes past shard 1, so only shard 0 records load.
        let _ = svc.query(&low_expr());
        let _ = svc.query_batch_opts(&[low_expr()], &BuildOptions::serial());
        let loads = svc.shard_loads();
        assert_eq!(loads[0].queries, 2);
        assert_eq!(loads[1].queries, 0);
        assert_eq!(loads[0].datasets, 2);
        // A rebuild keeps the counter (the shard keeps its identity)...
        svc.rebuild_shard(
            0,
            &Repository::new(vec![
                dataset("low", &[1.0, 2.0, 3.0]),
                dataset("high", &[90.0, 95.0]),
            ]),
            &[7, 3],
        );
        assert_eq!(svc.shard_loads()[0].queries, 2);
        // ...while a split resets both sides.
        svc.split_shard(0, &[3]);
        assert_eq!(svc.shard_loads()[0].queries, 0);
        assert_eq!(svc.shard_loads()[2].queries, 0);
    }

    #[test]
    fn rebalance_plan_splits_hot_and_big_merges_small() {
        let mut svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
        )
        .with_routing(false);
        // Shard 0: 4 datasets (oversized for the config below); shards
        // 1 and 2: one tiny dataset each (merge candidates).
        svc.add_shard(
            &Repository::new(vec![
                dataset("a", &[1.0]),
                dataset("b", &[2.0]),
                dataset("c", &[3.0]),
                dataset("d", &[4.0]),
            ]),
            &[10, 11, 12, 13],
        );
        svc.add_shard(&Repository::new(vec![dataset("e", &[5.0])]), &[20]);
        svc.add_shard(&Repository::new(vec![dataset("f", &[6.0])]), &[21]);
        let cfg = RebalanceConfig {
            max_datasets: 3,
            merge_under: 2,
            hot_factor: 4.0,
        };
        let plan = svc.rebalance_plan_with(&cfg);
        assert_eq!(
            plan,
            vec![
                RebalanceAction::Split {
                    shard: 0,
                    move_ids: vec![12, 13],
                },
                RebalanceAction::Merge { a: 1, b: 2 },
            ]
        );
        let all = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(0.0, 100.0),
            0.9,
        ));
        let before = svc.query(&all);
        svc.apply_rebalance(&plan).expect("plan applies cleanly");
        assert_eq!(svc.n_shards(), 3, "0 split into {{0, 3}}, 2 merged into 1");
        assert_eq!(svc.n_datasets(), 6, "transitions conserve the catalog");
        assert_eq!(svc.query(&all), before);
        // With balanced shards and no query skew, the next plan is empty.
        assert_eq!(svc.rebalance_plan_with(&cfg), vec![]);
    }

    #[test]
    fn rebalance_plan_detects_query_hot_shards() {
        let mut svc = ShardedEngine::new(
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
        );
        // Two same-sized shards with value-separated data, so routing
        // concentrates load on shard 0.
        svc.add_shard(
            &Repository::new(vec![dataset("a", &[1.0, 2.0]), dataset("b", &[3.0, 4.0])]),
            &[0, 1],
        );
        svc.add_shard(
            &Repository::new(vec![
                dataset("c", &[90.0, 91.0]),
                dataset("d", &[92.0, 93.0]),
            ]),
            &[2, 3],
        );
        for _ in 0..20 {
            let _ = svc.query(&low_expr());
        }
        let loads = svc.shard_loads();
        assert_eq!((loads[0].queries, loads[1].queries), (20, 0));
        let cfg = RebalanceConfig {
            max_datasets: 100,
            merge_under: 0,
            hot_factor: 1.5,
        };
        // Shard 0 carries all the load: > 1.5× the mean of 10.
        let plan = svc.rebalance_plan_with(&cfg);
        assert_eq!(
            plan,
            vec![RebalanceAction::Split {
                shard: 0,
                move_ids: vec![1],
            }]
        );
    }
}
