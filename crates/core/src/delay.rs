//! Enumeration-delay instrumentation (Section 2 "Delay guarantees",
//! Remark 3).
//!
//! A reporting structure has `f(n)` delay if the time to the first result,
//! between consecutive results, and from the last result to termination are
//! all `O(f(n))`. [`DelayRecorder`] timestamps a callback-driven
//! enumeration; experiment E10 feeds it the `query_cb` variants of the
//! Ptile/Pref indexes and reports the maximum observed gap.

use std::time::{Duration, Instant};

/// Records inter-report gaps of an enumeration.
#[derive(Clone, Debug)]
pub struct DelayRecorder {
    start: Instant,
    last: Instant,
    gaps: Vec<Duration>,
    finished: bool,
}

impl Default for DelayRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayRecorder {
    /// Starts the clock.
    pub fn new() -> Self {
        let now = Instant::now();
        DelayRecorder {
            start: now,
            last: now,
            gaps: Vec::new(),
            finished: false,
        }
    }

    /// Marks one reported result; records the gap since the previous mark
    /// (or since the start for the first result).
    pub fn tick(&mut self) {
        let now = Instant::now();
        self.gaps.push(now - self.last);
        self.last = now;
    }

    /// Marks the end of the enumeration (the last-to-termination gap).
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let now = Instant::now();
            self.gaps.push(now - self.last);
            self.last = now;
        }
    }

    /// Number of results observed (excludes the termination gap).
    pub fn results(&self) -> usize {
        self.gaps.len().saturating_sub(usize::from(self.finished))
    }

    /// The largest observed gap — the empirical delay bound.
    pub fn max_gap(&self) -> Duration {
        self.gaps.iter().copied().max().unwrap_or_default()
    }

    /// Mean gap.
    pub fn mean_gap(&self) -> Duration {
        if self.gaps.is_empty() {
            return Duration::ZERO;
        }
        self.gaps.iter().sum::<Duration>() / self.gaps.len() as u32
    }

    /// Total enumeration time.
    pub fn total(&self) -> Duration {
        self.last - self.start
    }

    /// All recorded gaps.
    pub fn gaps(&self) -> &[Duration] {
        &self.gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_gaps_and_termination() {
        let mut rec = DelayRecorder::new();
        for _ in 0..5 {
            rec.tick();
        }
        rec.finish();
        rec.finish(); // idempotent
        assert_eq!(rec.results(), 5);
        assert_eq!(rec.gaps().len(), 6);
        assert!(rec.max_gap() >= rec.mean_gap());
    }

    #[test]
    fn empty_enumeration() {
        let mut rec = DelayRecorder::new();
        rec.finish();
        assert_eq!(rec.results(), 0);
        assert_eq!(rec.gaps().len(), 1);
    }
}
