//! Orthogonal search substrate for distribution-aware dataset search.
//!
//! Section 2 of the paper assumes dynamic range trees with the interface
//! `Report(R, I)`, `ReportFirst(R, I)`, point insertion and deletion. The
//! paper's index structures (crate `dds-core`) lift rectangles and weights
//! into points of `R^{2d}`, `R^{4d}` or `R^{4md+m}` and only interact with
//! the search structure through that interface, so the backend is pluggable:
//!
//! * [`KdTree`] — a bounding-box kd-tree with per-subtree *alive counts*.
//!   It supports `report`, `report_first`, `count`, and O(depth) tombstone
//!   `delete`/`restore`, which is exactly the enumeration pattern of
//!   Algorithms 2 and 4 (find one point, delete the reported dataset's
//!   points, continue, re-insert at the end). This is the default backend;
//!   DESIGN.md §3 documents the substitution for the literal multi-level
//!   dynamic range tree (`log^{4md} N` associated-structure blowup is not
//!   laptop-viable in the lifted dimensions).
//! * [`RangeTree`] — a faithful static multi-level range tree (De Berg et
//!   al., as cited by the paper) used for low-dimensional exact structures
//!   and as an ablation backend.
//! * [`LogStructured`] — a Bentley–Saxe logarithmic-method wrapper that adds
//!   batched insertion (plus tombstone deletion) on top of any
//!   [`BuildableIndex`], realizing the paper's dynamic-synopsis remarks.
//! * [`SortedScores`] / [`DynScores`] — the 1-dimensional structures used by
//!   the Pref index (Algorithms 5–6): threshold reporting over static or
//!   dynamic score sets.
//!
//! All query shapes are [`Region`]s: axis-parallel boxes with *per-bound
//! strictness*, because the paper's orthants mix closed and open bounds
//! (e.g. `R' = [R⁻,∞) × (−∞,R⁻) × (−∞,R⁺] × (R⁺,∞)` in Algorithm 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod kdtree;
mod logstructured;
mod rangetree;
mod region;
mod scores;

pub use brute::BruteForce;
pub use kdtree::KdTree;
pub use logstructured::{GlobalId, LogStructured};
pub use rangetree::RangeTree;
pub use region::Region;
pub use scores::{DynScores, SortedScores, TotalF64};

/// Read-only orthogonal search over a fixed point set. Item identifiers are
/// the indexes of the points in the build input (`0..n`).
pub trait OrthoIndex {
    /// Number of points the structure was built over (dead or alive).
    fn len(&self) -> usize;

    /// True if the structure holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimension of the indexed points.
    fn dim(&self) -> usize;

    /// Appends the ids of all *alive* points inside `region` to `out`.
    fn report(&self, region: &Region, out: &mut Vec<usize>);

    /// Returns the id of one arbitrary alive point inside `region`, or
    /// `None`. This is the paper's `ReportFirst` (Section 2).
    fn report_first(&self, region: &Region) -> Option<usize>;

    /// Streaming filtered reporting: calls `f(id)` for every alive point
    /// inside `region`, stopping early when `f` returns `false`. The
    /// default materializes `report`; backends override with a single-pass
    /// traversal.
    fn report_while(&self, region: &Region, f: &mut dyn FnMut(usize) -> bool) {
        let mut ids = Vec::new();
        self.report(region, &mut ids);
        for id in ids {
            if !f(id) {
                return;
            }
        }
    }

    /// Counts alive points inside `region`.
    fn count(&self, region: &Region) -> usize;
}

/// Orthogonal search with tombstone deletion, as required by the query
/// procedures of Algorithms 2 and 4 (delete the reported dataset's points,
/// keep querying, re-insert everything afterwards).
pub trait DeletableIndex: OrthoIndex {
    /// Marks a point dead. Returns `false` if it was already dead.
    fn delete(&mut self, id: usize) -> bool;

    /// Marks a point alive again. Returns `false` if it was already alive.
    fn restore(&mut self, id: usize) -> bool;

    /// Number of alive points.
    fn alive(&self) -> usize;
}

/// Indexes constructible from a batch of points.
pub trait BuildableIndex: OrthoIndex + Sized {
    /// Builds the index over `points` (row-major coordinates). Ids are
    /// assigned in input order: point `i` gets id `i`.
    fn build(dim: usize, points: Vec<Vec<f64>>) -> Self;
}
