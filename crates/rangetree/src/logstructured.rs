//! Bentley–Saxe logarithmic-method wrapper: batched insertion over any
//! static buildable index.
//!
//! The paper's structures are built once over `N` synopses, but Remark 1
//! (after Theorems 4.11 / 5.4 / C.8) notes they can be made dynamic under
//! insertion and deletion of synopses. This wrapper realizes insertion by
//! the classic logarithmic method — geometric buckets of static indexes,
//! merged on overflow — and deletion by tombstones (dead points are dropped
//! on the next merge that touches their bucket). Queries fan out over the
//! `O(log n)` buckets, preserving the decomposable-search guarantees the
//! remark relies on ([47, 48] in the paper).

use crate::{BuildableIndex, DeletableIndex, Region};

/// Identifier of a point across the lifetime of a [`LogStructured`] index.
/// Stable across merges.
pub type GlobalId = usize;

/// Smallest bucket capacity.
const BASE_CAPACITY: usize = 32;

#[derive(Clone, Debug)]
struct Bucket<I> {
    index: I,
    /// Row-major copies of the points, kept for rebuild-on-merge.
    points: Vec<Vec<f64>>,
    /// local id -> global id.
    globals: Vec<GlobalId>,
    /// Alive flags, mirroring the inner index's tombstones.
    alive: Vec<bool>,
    n_alive: usize,
}

/// A dynamic orthogonal index assembled from static buckets.
#[derive(Clone, Debug)]
pub struct LogStructured<I> {
    dim: usize,
    buckets: Vec<Option<Bucket<I>>>,
    /// global id -> (bucket, local id). `None` once dropped by a merge while
    /// dead.
    entries: Vec<Option<(u32, u32)>>,
    n_alive: usize,
}

impl<I: BuildableIndex + DeletableIndex> LogStructured<I> {
    /// Creates an empty dynamic index over `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be >= 1");
        LogStructured {
            dim,
            buckets: Vec::new(),
            entries: Vec::new(),
            n_alive: 0,
        }
    }

    /// Total number of global ids ever issued.
    pub fn issued(&self) -> usize {
        self.entries.len()
    }

    /// Number of alive points.
    pub fn alive(&self) -> usize {
        self.n_alive
    }

    /// Dimension of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn capacity(level: usize) -> usize {
        BASE_CAPACITY << level
    }

    /// Inserts a batch of points and returns their global ids.
    pub fn insert_batch(&mut self, points: Vec<Vec<f64>>) -> Vec<GlobalId> {
        for p in &points {
            assert_eq!(p.len(), self.dim, "point dimension mismatch");
        }
        let gids: Vec<GlobalId> = (self.entries.len()..self.entries.len() + points.len()).collect();
        self.entries.extend(gids.iter().map(|_| None));
        self.n_alive += points.len();

        // Find the destination level: the first empty slot whose capacity
        // holds the batch plus all alive points of the levels below it.
        let mut total: usize = points.len();
        let mut level = 0usize;
        loop {
            if level == self.buckets.len() {
                self.buckets.push(None);
            }
            let occupied = self.buckets[level].is_some();
            if !occupied && Self::capacity(level) >= total {
                break;
            }
            if let Some(b) = &self.buckets[level] {
                total += b.n_alive;
            }
            level += 1;
        }

        // Drain levels below `level` (alive points only) and merge.
        let mut merged_points: Vec<Vec<f64>> = Vec::with_capacity(total);
        let mut merged_globals: Vec<GlobalId> = Vec::with_capacity(total);
        for l in 0..level {
            if let Some(b) = self.buckets[l].take() {
                for (local, alive) in b.alive.iter().enumerate() {
                    let gid = b.globals[local];
                    if *alive {
                        merged_points.push(b.points[local].clone());
                        merged_globals.push(gid);
                    } else {
                        // Dead point dropped for good.
                        self.entries[gid] = None;
                    }
                }
            }
        }
        merged_points.extend(points);
        merged_globals.extend(gids.iter().copied());

        let n = merged_points.len();
        let index = I::build(self.dim, merged_points.clone());
        for (local, &gid) in merged_globals.iter().enumerate() {
            self.entries[gid] = Some((level as u32, local as u32));
        }
        self.buckets[level] = Some(Bucket {
            index,
            points: merged_points,
            globals: merged_globals,
            alive: vec![true; n],
            n_alive: n,
        });
        gids
    }

    /// Marks a point dead. Returns `false` if unknown, already dead, or
    /// dropped by a past merge.
    pub fn delete(&mut self, gid: GlobalId) -> bool {
        let Some(Some((bi, local))) = self.entries.get(gid).copied() else {
            return false;
        };
        let bucket = self.buckets[bi as usize]
            .as_mut()
            .expect("entry points at a live bucket");
        let local = local as usize;
        if !bucket.alive[local] {
            return false;
        }
        bucket.alive[local] = false;
        bucket.n_alive -= 1;
        bucket.index.delete(local);
        self.n_alive -= 1;
        true
    }

    /// Restores a previously deleted point (query-time re-insert pattern of
    /// Algorithms 2 and 4). Returns `false` if the point is alive or was
    /// dropped by a merge.
    pub fn restore(&mut self, gid: GlobalId) -> bool {
        let Some(Some((bi, local))) = self.entries.get(gid).copied() else {
            return false;
        };
        let bucket = self.buckets[bi as usize]
            .as_mut()
            .expect("entry points at a live bucket");
        let local = local as usize;
        if bucket.alive[local] {
            return false;
        }
        bucket.alive[local] = true;
        bucket.n_alive += 1;
        bucket.index.restore(local);
        self.n_alive += 1;
        true
    }

    /// Appends the global ids of all alive points inside `region`.
    pub fn report(&self, region: &Region, out: &mut Vec<GlobalId>) {
        let mut tmp = Vec::new();
        for bucket in self.buckets.iter().flatten() {
            tmp.clear();
            bucket.index.report(region, &mut tmp);
            out.extend(tmp.iter().map(|&local| bucket.globals[local]));
        }
    }

    /// Single-pass filtered reporting across all buckets: calls `f(gid)`
    /// for every alive point in `region`, aborting if `f` returns `false`.
    pub fn report_while(&self, region: &Region, f: &mut dyn FnMut(GlobalId) -> bool) {
        for bucket in self.buckets.iter().flatten() {
            let mut keep_going = true;
            bucket.index.report_while(region, &mut |local| {
                keep_going = f(bucket.globals[local]);
                keep_going
            });
            if !keep_going {
                return;
            }
        }
    }

    /// Returns one alive point inside `region`, if any.
    pub fn report_first(&self, region: &Region) -> Option<GlobalId> {
        self.buckets.iter().flatten().find_map(|bucket| {
            bucket
                .index
                .report_first(region)
                .map(|local| bucket.globals[local])
        })
    }

    /// Counts alive points inside `region`.
    pub fn count(&self, region: &Region) -> usize {
        self.buckets
            .iter()
            .flatten()
            .map(|b| b.index.count(region))
            .sum()
    }

    /// Number of buckets currently occupied (`O(log n)`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KdTree;

    #[test]
    fn insert_report_roundtrip() {
        let mut ls: LogStructured<KdTree> = LogStructured::new(1);
        let a = ls.insert_batch(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let b = ls.insert_batch(vec![vec![10.0], vec![11.0]]);
        assert_eq!(ls.alive(), 5);
        let mut out = vec![];
        ls.report(&Region::closed(vec![1.5], vec![10.5]), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![a[1], a[2], b[0]]);
    }

    #[test]
    fn merges_preserve_global_ids() {
        let mut ls: LogStructured<KdTree> = LogStructured::new(1);
        let mut gids = Vec::new();
        // Enough single-point batches to force several merges.
        for i in 0..200 {
            gids.extend(ls.insert_batch(vec![vec![i as f64]]));
        }
        assert!(ls.bucket_count() <= 4, "log-structured bucket count");
        let mut out = vec![];
        ls.report(&Region::closed(vec![50.0], vec![59.0]), &mut out);
        out.sort_unstable();
        assert_eq!(out, (50..60).map(|i| gids[i]).collect::<Vec<_>>());
    }

    #[test]
    fn delete_then_merge_drops_points() {
        let mut ls: LogStructured<KdTree> = LogStructured::new(1);
        let gids = ls.insert_batch((0..40).map(|i| vec![i as f64]).collect());
        for &g in &gids[..10] {
            assert!(ls.delete(g));
        }
        assert_eq!(ls.alive(), 30);
        // Force a merge that swallows the first bucket.
        ls.insert_batch((100..200).map(|i| vec![i as f64]).collect());
        // The dead points are gone for good; restore must fail.
        assert!(!ls.restore(gids[0]));
        // Alive ones survived the merge with their ids.
        let mut out = vec![];
        ls.report(&Region::closed(vec![10.0], vec![39.0]), &mut out);
        out.sort_unstable();
        assert_eq!(out, gids[10..].to_vec());
    }

    #[test]
    fn query_time_delete_restore_cycle() {
        let mut ls: LogStructured<KdTree> = LogStructured::new(1);
        let gids = ls.insert_batch((0..32).map(|i| vec![i as f64]).collect());
        let all = Region::all(1);
        let mut seen = Vec::new();
        while let Some(g) = ls.report_first(&all) {
            seen.push(g);
            ls.delete(g);
        }
        assert_eq!(seen.len(), 32);
        for &g in &seen {
            assert!(ls.restore(g));
        }
        assert_eq!(ls.alive(), 32);
        assert_eq!(ls.count(&all), 32);
        let _ = gids;
    }
}
