//! Faithful static multi-level range tree (De Berg et al., cited in
//! Section 2 of the paper).
//!
//! Level `h` is a balanced binary tree over the points sorted by coordinate
//! `h`; every node owns an *associated structure* over the same point set
//! for dimensions `h+1..d`, and the last level is a sorted array. A query
//! decomposes the interval of dimension `h` into `O(log n)` canonical nodes
//! and recurses into their associated structures, giving
//! `O(log^d n + OUT)` reporting. Space is `O(n log^{d-1} n)`, which is why
//! this backend is only used for low lifted dimensions (exact 1-d CPtile,
//! ablation A2) while [`crate::KdTree`] serves the general case.

use crate::{BuildableIndex, OrthoIndex, Region};

const LEAF_SIZE: usize = 4;

/// Static multi-level range tree.
#[derive(Clone, Debug)]
pub struct RangeTree {
    dim: usize,
    points: Vec<Vec<f64>>,
    root: Option<Level>,
}

#[derive(Clone, Debug)]
enum Level {
    /// Last dimension: ids sorted by their coordinate.
    Last {
        h: usize,
        keys: Vec<f64>,
        ids: Vec<u32>,
    },
    /// Intermediate dimension: a BST with associated structures.
    Inner { h: usize, root: Box<BstNode> },
}

#[derive(Clone, Debug)]
struct BstNode {
    min: f64,
    max: f64,
    assoc: Level,
    /// `None` for internal nodes; leaf nodes keep their ids for direct
    /// filtering.
    leaf_ids: Option<Vec<u32>>,
    children: Option<(Box<BstNode>, Box<BstNode>)>,
}

/// Binary-search helpers over a region's single dimension with strictness.
struct DimBounds {
    lo: f64,
    hi: f64,
    lo_strict: bool,
    hi_strict: bool,
}

impl DimBounds {
    fn of(region: &Region, h: usize) -> Self {
        // Region stores strictness internally; recover it via contains()
        // probes would be fragile, so Region exposes bounds and we re-derive
        // strictness from dedicated accessors below.
        DimBounds {
            lo: region.lo()[h],
            hi: region.hi()[h],
            lo_strict: region.lo_strict(h),
            hi_strict: region.hi_strict(h),
        }
    }

    #[inline]
    fn admits(&self, x: f64) -> bool {
        let lo_ok = if self.lo_strict {
            x > self.lo
        } else {
            x >= self.lo
        };
        let hi_ok = if self.hi_strict {
            x < self.hi
        } else {
            x <= self.hi
        };
        lo_ok && hi_ok
    }

    /// The whole closed interval `[min, max]` satisfies the bounds.
    #[inline]
    fn covers(&self, min: f64, max: f64) -> bool {
        self.admits(min) && self.admits(max)
    }

    /// The closed interval `[min, max]` is disjoint from the bounds.
    #[inline]
    fn disjoint(&self, min: f64, max: f64) -> bool {
        let below = if self.lo_strict {
            max <= self.lo
        } else {
            max < self.lo
        };
        let above = if self.hi_strict {
            min >= self.hi
        } else {
            min > self.hi
        };
        below || above
    }

    /// Index range of satisfying keys in a sorted array.
    fn key_range(&self, keys: &[f64]) -> (usize, usize) {
        let start = if self.lo_strict {
            keys.partition_point(|k| *k <= self.lo)
        } else {
            keys.partition_point(|k| *k < self.lo)
        };
        let end = if self.hi_strict {
            keys.partition_point(|k| *k < self.hi)
        } else {
            keys.partition_point(|k| *k <= self.hi)
        };
        (start, end.max(start))
    }
}

impl RangeTree {
    fn build_level(points: &[Vec<f64>], idxs: &[u32], h: usize, dim: usize) -> Level {
        debug_assert!(!idxs.is_empty());
        let mut sorted: Vec<u32> = idxs.to_vec();
        sorted.sort_unstable_by(|&a, &b| points[a as usize][h].total_cmp(&points[b as usize][h]));
        if h + 1 == dim {
            let keys = sorted.iter().map(|&i| points[i as usize][h]).collect();
            Level::Last {
                h,
                keys,
                ids: sorted,
            }
        } else {
            let root = Self::build_bst(points, &sorted, h, dim);
            Level::Inner {
                h,
                root: Box::new(root),
            }
        }
    }

    fn build_bst(points: &[Vec<f64>], sorted: &[u32], h: usize, dim: usize) -> BstNode {
        let min = points[sorted[0] as usize][h];
        let max = points[sorted[sorted.len() - 1] as usize][h];
        let assoc = Self::build_level(points, sorted, h + 1, dim);
        if sorted.len() <= LEAF_SIZE {
            return BstNode {
                min,
                max,
                assoc,
                leaf_ids: Some(sorted.to_vec()),
                children: None,
            };
        }
        let mid = sorted.len() / 2;
        let left = Self::build_bst(points, &sorted[..mid], h, dim);
        let right = Self::build_bst(points, &sorted[mid..], h, dim);
        BstNode {
            min,
            max,
            assoc,
            leaf_ids: None,
            children: Some((Box::new(left), Box::new(right))),
        }
    }

    fn report_level(&self, level: &Level, region: &Region, out: &mut Vec<usize>) {
        match level {
            Level::Last { h, keys, ids } => {
                let b = DimBounds::of(region, *h);
                let (s, e) = b.key_range(keys);
                out.extend(ids[s..e].iter().map(|&i| i as usize));
            }
            Level::Inner { h, root } => self.report_bst(root, *h, region, out),
        }
    }

    fn report_bst(&self, node: &BstNode, h: usize, region: &Region, out: &mut Vec<usize>) {
        let b = DimBounds::of(region, h);
        if b.disjoint(node.min, node.max) {
            return;
        }
        if b.covers(node.min, node.max) {
            self.report_level(&node.assoc, region, out);
            return;
        }
        if let Some(ids) = &node.leaf_ids {
            out.extend(
                ids.iter()
                    .filter(|&&i| region.contains(&self.points[i as usize]))
                    .map(|&i| i as usize),
            );
            return;
        }
        let (l, r) = node.children.as_ref().expect("internal node has children");
        self.report_bst(l, h, region, out);
        self.report_bst(r, h, region, out);
    }

    fn first_level(&self, level: &Level, region: &Region) -> Option<usize> {
        match level {
            Level::Last { h, keys, ids } => {
                let b = DimBounds::of(region, *h);
                let (s, e) = b.key_range(keys);
                ids.get(s..e).and_then(|r| r.first()).map(|&i| i as usize)
            }
            Level::Inner { h, root } => self.first_bst(root, *h, region),
        }
    }

    fn first_bst(&self, node: &BstNode, h: usize, region: &Region) -> Option<usize> {
        let b = DimBounds::of(region, h);
        if b.disjoint(node.min, node.max) {
            return None;
        }
        if b.covers(node.min, node.max) {
            return self.first_level(&node.assoc, region);
        }
        if let Some(ids) = &node.leaf_ids {
            return ids
                .iter()
                .find(|&&i| region.contains(&self.points[i as usize]))
                .map(|&i| i as usize);
        }
        let (l, r) = node.children.as_ref().expect("internal node has children");
        self.first_bst(l, h, region)
            .or_else(|| self.first_bst(r, h, region))
    }

    fn count_level(&self, level: &Level, region: &Region) -> usize {
        match level {
            Level::Last { h, keys, .. } => {
                let b = DimBounds::of(region, *h);
                let (s, e) = b.key_range(keys);
                e - s
            }
            Level::Inner { h, root } => self.count_bst(root, *h, region),
        }
    }

    fn count_bst(&self, node: &BstNode, h: usize, region: &Region) -> usize {
        let b = DimBounds::of(region, h);
        if b.disjoint(node.min, node.max) {
            return 0;
        }
        if b.covers(node.min, node.max) {
            return self.count_level(&node.assoc, region);
        }
        if let Some(ids) = &node.leaf_ids {
            return ids
                .iter()
                .filter(|&&i| region.contains(&self.points[i as usize]))
                .count();
        }
        let (l, r) = node.children.as_ref().expect("internal node has children");
        self.count_bst(l, h, region) + self.count_bst(r, h, region)
    }

    /// Estimated heap footprint in bytes (space experiments, E8/A2).
    pub fn memory_bytes(&self) -> usize {
        fn level_bytes(level: &Level) -> usize {
            match level {
                Level::Last { keys, ids, .. } => keys.len() * 8 + ids.len() * 4 + 48,
                Level::Inner { root, .. } => bst_bytes(root),
            }
        }
        fn bst_bytes(node: &BstNode) -> usize {
            let mut b = std::mem::size_of::<BstNode>() + level_bytes(&node.assoc);
            if let Some(ids) = &node.leaf_ids {
                b += ids.len() * 4;
            }
            if let Some((l, r)) = &node.children {
                b += bst_bytes(l) + bst_bytes(r);
            }
            b
        }
        let base: usize = self.points.iter().map(|p| p.len() * 8 + 24).sum();
        base + self.root.as_ref().map_or(0, level_bytes)
    }
}

impl BuildableIndex for RangeTree {
    fn build(dim: usize, points: Vec<Vec<f64>>) -> Self {
        assert!(dim >= 1, "range tree requires dim >= 1");
        assert!(
            points.len() < u32::MAX as usize,
            "too many points for u32 ids"
        );
        for p in &points {
            assert_eq!(p.len(), dim, "point dimension mismatch");
            assert!(p.iter().all(|c| !c.is_nan()), "NaN coordinate");
        }
        let root = if points.is_empty() {
            None
        } else {
            let idxs: Vec<u32> = (0..points.len() as u32).collect();
            Some(Self::build_level(&points, &idxs, 0, dim))
        };
        RangeTree { dim, points, root }
    }
}

impl OrthoIndex for RangeTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn report(&self, region: &Region, out: &mut Vec<usize>) {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        if let Some(root) = &self.root {
            self.report_level(root, region, out);
        }
    }

    fn report_first(&self, region: &Region) -> Option<usize> {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        self.root.as_ref().and_then(|r| self.first_level(r, region))
    }

    fn count(&self, region: &Region) -> usize {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        self.root
            .as_ref()
            .map_or(0, |r| self.count_level(r, region))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_scan_on_small_grid() {
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
            .collect();
        let t = RangeTree::build(2, pts.clone());
        let region = Region::closed(vec![1.0, 2.0], vec![4.0, 5.0]);
        let mut got = vec![];
        t.report(&region, &mut got);
        got.sort_unstable();
        let want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains(p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
        assert_eq!(t.count(&region), want.len());
        assert!(t.report_first(&region).is_some());
    }

    #[test]
    fn strictness_in_last_level() {
        let pts = vec![vec![1.0, 5.0], vec![1.0, 6.0], vec![1.0, 7.0]];
        let t = RangeTree::build(2, pts);
        let region = Region::all(2).with_lo(1, 5.0, true).with_hi(1, 7.0, true);
        let mut out = vec![];
        t.report(&region, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(t.count(&region), 1);
    }

    #[test]
    fn empty_tree() {
        let t = RangeTree::build(4, vec![]);
        assert_eq!(t.report_first(&Region::all(4)), None);
        assert_eq!(t.count(&Region::all(4)), 0);
    }
}
