//! Linear-scan reference implementation of the search traits.
//!
//! Used as ground truth in tests and as the Ω(N)-style baseline in
//! micro-benchmarks of the substrate itself.

use crate::{BuildableIndex, DeletableIndex, OrthoIndex, Region};

/// A brute-force orthogonal "index": stores the points and scans them.
#[derive(Clone, Debug)]
pub struct BruteForce {
    dim: usize,
    points: Vec<Vec<f64>>,
    alive: Vec<bool>,
    n_alive: usize,
}

impl BuildableIndex for BruteForce {
    fn build(dim: usize, points: Vec<Vec<f64>>) -> Self {
        for p in &points {
            assert_eq!(p.len(), dim, "point dimension mismatch");
        }
        let n = points.len();
        BruteForce {
            dim,
            points,
            alive: vec![true; n],
            n_alive: n,
        }
    }
}

impl OrthoIndex for BruteForce {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn report(&self, region: &Region, out: &mut Vec<usize>) {
        for (i, p) in self.points.iter().enumerate() {
            if self.alive[i] && region.contains(p) {
                out.push(i);
            }
        }
    }

    fn report_first(&self, region: &Region) -> Option<usize> {
        self.points
            .iter()
            .enumerate()
            .find(|(i, p)| self.alive[*i] && region.contains(p))
            .map(|(i, _)| i)
    }

    fn count(&self, region: &Region) -> usize {
        self.points
            .iter()
            .enumerate()
            .filter(|(i, p)| self.alive[*i] && region.contains(p))
            .count()
    }
}

impl DeletableIndex for BruteForce {
    fn delete(&mut self, id: usize) -> bool {
        if self.alive[id] {
            self.alive[id] = false;
            self.n_alive -= 1;
            true
        } else {
            false
        }
    }

    fn restore(&mut self, id: usize) -> bool {
        if !self.alive[id] {
            self.alive[id] = true;
            self.n_alive += 1;
            true
        } else {
            false
        }
    }

    fn alive(&self) -> usize {
        self.n_alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_and_tombstones() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let mut b = BruteForce::build(1, pts);
        let region = Region::closed(vec![1.5], vec![3.5]);
        let mut out = vec![];
        b.report(&region, &mut out);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(b.count(&region), 2);
        assert!(b.delete(1));
        assert!(!b.delete(1));
        assert_eq!(b.report_first(&region), Some(2));
        assert!(b.restore(1));
        assert_eq!(b.count(&region), 2);
        assert_eq!(b.alive(), 3);
    }
}
