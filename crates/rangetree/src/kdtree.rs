//! Bounding-box kd-tree with per-subtree alive counts.
//!
//! This is the default backend behind the paper's `DRangeTreeConstruct` /
//! `Report` / `ReportFirst` interface (Section 2). Points live in a
//! reordered contiguous array; every node covers a contiguous range and
//! stores its bounding box plus the number of *alive* points below it, so
//! `ReportFirst` can skip exhausted subtrees in `O(1)` and deletions are
//! `O(depth)` count updates along the leaf-to-root path. The query loops of
//! Algorithms 2 and 4 use the single-pass `report_while` traversal (each
//! node visited once per query); the tombstone machinery serves the eager
//! Algorithm-2 variant, the dynamic wrapper and the ablations.

use crate::{BuildableIndex, DeletableIndex, OrthoIndex, Region};

const LEAF_SIZE: usize = 8;
const NONE: u32 = u32::MAX;
/// Subtrees smaller than this are built on the current thread: below a few
/// thousand points the spawn/join cost exceeds the partitioning work.
const PAR_BUILD_THRESHOLD: usize = 4096;

#[derive(Clone, Debug)]
struct Node {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
    start: u32,
    end: u32,
    left: u32,
    right: u32,
    parent: u32,
    alive: u32,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == NONE
    }
}

/// A kd-tree over points in `R^D` with tombstone deletion.
#[derive(Clone, Debug)]
pub struct KdTree {
    dim: usize,
    /// Row-major coordinates in tree order (`n * dim`).
    coords: Vec<f64>,
    /// `ids[pos]` = original input index of the point at `pos`.
    ids: Vec<u32>,
    /// Inverse of `ids`.
    pos_of_id: Vec<u32>,
    /// Alive flag per position.
    alive: Vec<bool>,
    /// Leaf node index per position.
    leaf_of_pos: Vec<u32>,
    nodes: Vec<Node>,
    n_alive: usize,
}

impl KdTree {
    #[inline]
    fn point(&self, pos: usize) -> &[f64] {
        &self.coords[pos * self.dim..(pos + 1) * self.dim]
    }

    fn build_rec(
        nodes: &mut Vec<Node>,
        points: &[Vec<f64>],
        perm: &mut [u32],
        offset: usize,
        parent: u32,
        dim: usize,
        threads: usize,
    ) -> u32 {
        debug_assert!(!perm.is_empty());
        // Bounding box of the subtree.
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for &i in perm.iter() {
            let p = &points[i as usize];
            for h in 0..dim {
                lo[h] = lo[h].min(p[h]);
                hi[h] = hi[h].max(p[h]);
            }
        }
        let ni = nodes.len() as u32;
        let n_points = perm.len();
        nodes.push(Node {
            lo: lo.clone().into_boxed_slice(),
            hi: hi.clone().into_boxed_slice(),
            start: offset as u32,
            end: (offset + n_points) as u32,
            left: NONE,
            right: NONE,
            parent,
            alive: n_points as u32,
        });
        if n_points <= LEAF_SIZE {
            return ni;
        }
        // Split on the widest axis at the median. NaN-free by construction
        // (asserted at build); ±∞ coordinates order fine under total_cmp.
        let axis = (0..dim)
            .max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b])))
            .expect("dim >= 1");
        let mid = n_points / 2;
        perm.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        let (left_perm, right_perm) = perm.split_at_mut(mid);
        if threads >= 2 && n_points >= PAR_BUILD_THRESHOLD {
            // Build the left subtree on a scoped worker and the right on the
            // current thread, splitting the thread budget. Each subtree is
            // built into a fresh node arena with local indices and spliced
            // back in serial DFS-preorder position, so the resulting node
            // array is bit-identical to the single-threaded build.
            let lt = threads / 2;
            let rt = threads - lt;
            let (left_nodes, right_nodes) = std::thread::scope(|s| {
                let handle = s.spawn(move || {
                    let mut ln = Vec::new();
                    Self::build_rec(&mut ln, points, left_perm, offset, NONE, dim, lt);
                    ln
                });
                let mut rn = Vec::new();
                Self::build_rec(&mut rn, points, right_perm, offset + mid, NONE, dim, rt);
                (handle.join().expect("kd-tree build worker panicked"), rn)
            });
            let l = Self::splice_subtree(nodes, left_nodes, ni);
            let r = Self::splice_subtree(nodes, right_nodes, ni);
            nodes[ni as usize].left = l;
            nodes[ni as usize].right = r;
            return ni;
        }
        let l = Self::build_rec(nodes, points, left_perm, offset, ni, dim, threads);
        let r = Self::build_rec(nodes, points, right_perm, offset + mid, ni, dim, threads);
        nodes[ni as usize].left = l;
        nodes[ni as usize].right = r;
        ni
    }

    /// Appends a subtree arena (indices local, root at 0 with parent
    /// `NONE`) to `nodes`, rebasing node links and attaching the root to
    /// `parent`. Returns the root's absolute index.
    fn splice_subtree(nodes: &mut Vec<Node>, subtree: Vec<Node>, parent: u32) -> u32 {
        let base = nodes.len() as u32;
        nodes.extend(subtree.into_iter().map(|mut node| {
            node.parent = if node.parent == NONE {
                parent
            } else {
                node.parent + base
            };
            if node.left != NONE {
                node.left += base;
                node.right += base;
            }
            node
        }));
        base
    }

    fn report_rec(&self, ni: u32, region: &Region, out: &mut Vec<usize>) {
        let node = &self.nodes[ni as usize];
        if node.alive == 0 || !region.intersects_bbox(&node.lo, &node.hi) {
            return;
        }
        if region.contains_bbox(&node.lo, &node.hi) {
            for pos in node.start..node.end {
                if self.alive[pos as usize] {
                    out.push(self.ids[pos as usize] as usize);
                }
            }
            return;
        }
        if node.is_leaf() {
            for pos in node.start..node.end {
                let pos = pos as usize;
                if self.alive[pos] && region.contains(self.point(pos)) {
                    out.push(self.ids[pos] as usize);
                }
            }
            return;
        }
        self.report_rec(node.left, region, out);
        self.report_rec(node.right, region, out);
    }

    fn report_first_rec(&self, ni: u32, region: &Region) -> Option<usize> {
        let node = &self.nodes[ni as usize];
        if node.alive == 0 || !region.intersects_bbox(&node.lo, &node.hi) {
            return None;
        }
        if region.contains_bbox(&node.lo, &node.hi) {
            // alive > 0, so an alive position exists in the range.
            for pos in node.start..node.end {
                if self.alive[pos as usize] {
                    return Some(self.ids[pos as usize] as usize);
                }
            }
            unreachable!("alive count positive but no alive point in range");
        }
        if node.is_leaf() {
            for pos in node.start..node.end {
                let pos = pos as usize;
                if self.alive[pos] && region.contains(self.point(pos)) {
                    return Some(self.ids[pos] as usize);
                }
            }
            return None;
        }
        self.report_first_rec(node.left, region)
            .or_else(|| self.report_first_rec(node.right, region))
    }

    fn count_rec(&self, ni: u32, region: &Region) -> usize {
        let node = &self.nodes[ni as usize];
        if node.alive == 0 || !region.intersects_bbox(&node.lo, &node.hi) {
            return 0;
        }
        if region.contains_bbox(&node.lo, &node.hi) {
            return node.alive as usize;
        }
        if node.is_leaf() {
            return (node.start..node.end)
                .filter(|&pos| {
                    let pos = pos as usize;
                    self.alive[pos] && region.contains(self.point(pos))
                })
                .count();
        }
        self.count_rec(node.left, region) + self.count_rec(node.right, region)
    }

    /// Marks every point alive again and recomputes all subtree counts in
    /// one `O(n + #nodes)` pass — much cheaper than per-point restores when
    /// a query session tombstoned a large fraction of the structure.
    pub fn restore_all(&mut self) {
        for a in &mut self.alive {
            *a = true;
        }
        self.n_alive = self.ids.len();
        // Children are created after their parent, so a reverse scan sees
        // children before parents.
        for ni in (0..self.nodes.len()).rev() {
            let node = &self.nodes[ni];
            let alive = if node.is_leaf() {
                node.end - node.start
            } else {
                self.nodes[node.left as usize].alive + self.nodes[node.right as usize].alive
            };
            self.nodes[ni].alive = alive;
        }
    }

    /// Estimated heap footprint in bytes (used by the space experiments).
    pub fn memory_bytes(&self) -> usize {
        self.coords.len() * 8
            + self.ids.len() * 4
            + self.pos_of_id.len() * 4
            + self.alive.len()
            + self.leaf_of_pos.len() * 4
            + self.nodes.len() * (std::mem::size_of::<Node>() + 2 * self.dim * 8)
    }
}

impl KdTree {
    /// Builds the tree with up to `threads` scoped worker threads splitting
    /// the subtree recursion. The node array, point order and every query
    /// answer are **bit-identical** to [`BuildableIndex::build`] regardless
    /// of `threads` (the parallel path splices subtrees back in serial
    /// DFS-preorder position).
    pub fn build_par(dim: usize, points: Vec<Vec<f64>>, threads: usize) -> Self {
        assert!(dim >= 1, "kd-tree requires dim >= 1");
        let n = points.len();
        assert!(n < u32::MAX as usize, "too many points for u32 ids");
        for p in &points {
            assert_eq!(p.len(), dim, "point dimension mismatch");
            assert!(p.iter().all(|c| !c.is_nan()), "NaN coordinate");
        }
        if n == 0 {
            return KdTree {
                dim,
                coords: vec![],
                ids: vec![],
                pos_of_id: vec![],
                alive: vec![],
                leaf_of_pos: vec![],
                nodes: vec![],
                n_alive: 0,
            };
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * n / LEAF_SIZE + 1);
        Self::build_rec(&mut nodes, &points, &mut perm, 0, NONE, dim, threads.max(1));
        // Materialize tree order.
        let mut coords = Vec::with_capacity(n * dim);
        let mut ids = Vec::with_capacity(n);
        for &i in &perm {
            coords.extend_from_slice(&points[i as usize]);
            ids.push(i);
        }
        let mut pos_of_id = vec![0u32; n];
        for (pos, &id) in ids.iter().enumerate() {
            pos_of_id[id as usize] = pos as u32;
        }
        let mut leaf_of_pos = vec![NONE; n];
        for (ni, node) in nodes.iter().enumerate() {
            if node.is_leaf() {
                for pos in node.start..node.end {
                    leaf_of_pos[pos as usize] = ni as u32;
                }
            }
        }
        debug_assert!(leaf_of_pos.iter().all(|&l| l != NONE));
        KdTree {
            dim,
            coords,
            ids,
            pos_of_id,
            alive: vec![true; n],
            leaf_of_pos,
            nodes,
            n_alive: n,
        }
    }
}

impl BuildableIndex for KdTree {
    fn build(dim: usize, points: Vec<Vec<f64>>) -> Self {
        Self::build_par(dim, points, 1)
    }
}

impl OrthoIndex for KdTree {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn report(&self, region: &Region, out: &mut Vec<usize>) {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        if !self.nodes.is_empty() {
            self.report_rec(0, region, out);
        }
    }

    fn report_first(&self, region: &Region) -> Option<usize> {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        if self.nodes.is_empty() {
            return None;
        }
        self.report_first_rec(0, region)
    }

    fn count(&self, region: &Region) -> usize {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        if self.nodes.is_empty() {
            return 0;
        }
        self.count_rec(0, region)
    }

    /// Single-pass filtered reporting: calls `f(id)` for every alive point
    /// inside `region`, in DFS order, aborting the whole traversal if `f`
    /// returns `false`. Visits every tree node at most once per call, so a
    /// whole query session costs one traversal — the enumeration loops of
    /// Algorithms 2 and 4 use this with a reported-dataset mask instead of
    /// physical deletions (same answers; see DESIGN.md ablation A3).
    fn report_while(&self, region: &Region, f: &mut dyn FnMut(usize) -> bool) {
        assert_eq!(region.dim(), self.dim, "region dimension mismatch");
        if self.nodes.is_empty() {
            return;
        }
        let mut stack: Vec<u32> = vec![0];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if node.alive == 0 || !region.intersects_bbox(&node.lo, &node.hi) {
                continue;
            }
            let full = region.contains_bbox(&node.lo, &node.hi);
            if full || node.is_leaf() {
                let (start, end) = (node.start, node.end);
                for pos in start..end {
                    let pos = pos as usize;
                    if !self.alive[pos] {
                        continue;
                    }
                    if !full && !region.contains(self.point(pos)) {
                        continue;
                    }
                    if !f(self.ids[pos] as usize) {
                        return;
                    }
                }
                continue;
            }
            let (l, r) = (node.left, node.right);
            stack.push(r);
            stack.push(l);
        }
    }
}

impl DeletableIndex for KdTree {
    fn delete(&mut self, id: usize) -> bool {
        let pos = self.pos_of_id[id] as usize;
        if !self.alive[pos] {
            return false;
        }
        self.alive[pos] = false;
        self.n_alive -= 1;
        let mut ni = self.leaf_of_pos[pos];
        while ni != NONE {
            self.nodes[ni as usize].alive -= 1;
            ni = self.nodes[ni as usize].parent;
        }
        true
    }

    fn restore(&mut self, id: usize) -> bool {
        let pos = self.pos_of_id[id] as usize;
        if self.alive[pos] {
            return false;
        }
        self.alive[pos] = true;
        self.n_alive += 1;
        let mut ni = self.leaf_of_pos[pos];
        while ni != NONE {
            self.nodes[ni as usize].alive += 1;
            ni = self.nodes[ni as usize].parent;
        }
        true
    }

    fn alive(&self) -> usize {
        self.n_alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points_2d(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect()
    }

    #[test]
    fn empty_tree_is_silent() {
        let t = KdTree::build(3, vec![]);
        let region = Region::all(3);
        let mut out = vec![];
        t.report(&region, &mut out);
        assert!(out.is_empty());
        assert_eq!(t.report_first(&region), None);
        assert_eq!(t.count(&region), 0);
    }

    #[test]
    fn report_matches_scan_on_grid() {
        let pts = grid_points_2d(100);
        let t = KdTree::build(2, pts.clone());
        let region = Region::closed(vec![2.0, 3.0], vec![5.0, 6.0]);
        let mut got = vec![];
        t.report(&region, &mut got);
        got.sort_unstable();
        let want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains(p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
        assert_eq!(t.count(&region), want.len());
    }

    #[test]
    fn delete_restore_roundtrip() {
        let pts = grid_points_2d(50);
        let mut t = KdTree::build(2, pts);
        let region = Region::closed(vec![0.0, 0.0], vec![9.0, 9.0]);
        assert_eq!(t.count(&region), 50);
        for id in 0..25 {
            assert!(t.delete(id));
        }
        assert!(!t.delete(3), "double delete must be a no-op");
        assert_eq!(t.count(&region), 25);
        assert_eq!(t.alive(), 25);
        let mut out = vec![];
        t.report(&region, &mut out);
        assert!(out.iter().all(|&id| id >= 25));
        for id in 0..25 {
            assert!(t.restore(id));
        }
        assert_eq!(t.count(&region), 50);
    }

    #[test]
    fn report_first_exhausts_without_duplicates() {
        // The Algorithm-2 usage pattern: repeatedly take one point and
        // delete it; every alive point must be produced exactly once.
        let pts = grid_points_2d(40);
        let mut t = KdTree::build(2, pts);
        let region = Region::closed(vec![0.0, 0.0], vec![4.0, 3.0]); // 5 x 4 grid corner
        let mut seen = std::collections::BTreeSet::new();
        while let Some(id) = t.report_first(&region) {
            assert!(seen.insert(id), "duplicate id {id}");
            assert!(t.delete(id));
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn strict_bounds_respected() {
        let pts = vec![vec![5.0], vec![6.0], vec![7.0]];
        let t = KdTree::build(1, pts);
        let strict = Region::all(1).with_lo(0, 5.0, true).with_hi(0, 7.0, true);
        let mut out = vec![];
        t.report(&strict, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Enough points to cross PAR_BUILD_THRESHOLD several levels deep.
        let n = 20_000;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.7371) % 97.0;
                let y = (i as f64 * 1.3113) % 53.0;
                vec![x, y, (x * y) % 11.0]
            })
            .collect();
        let serial = KdTree::build(3, pts.clone());
        for threads in [2, 3, 8] {
            let par = KdTree::build_par(3, pts.clone(), threads);
            assert_eq!(par.ids, serial.ids, "threads = {threads}");
            assert_eq!(par.coords, serial.coords, "threads = {threads}");
            assert_eq!(par.nodes.len(), serial.nodes.len());
            for (a, b) in par.nodes.iter().zip(&serial.nodes) {
                assert_eq!(a.lo, b.lo);
                assert_eq!(a.hi, b.hi);
                assert_eq!(
                    (a.start, a.end, a.left, a.right, a.parent, a.alive),
                    (b.start, b.end, b.left, b.right, b.parent, b.alive)
                );
            }
            let region = Region::all(3)
                .with_lo(0, 30.0, false)
                .with_hi(1, 20.0, true);
            let mut got = vec![];
            let mut want = vec![];
            par.report(&region, &mut got);
            serial.report(&region, &mut want);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn infinite_coordinates_are_indexable() {
        // Lifted one-step expansions can have ±∞ facets.
        let pts = vec![
            vec![f64::NEG_INFINITY, 1.0],
            vec![2.0, f64::INFINITY],
            vec![3.0, 4.0],
        ];
        let t = KdTree::build(2, pts);
        let region = Region::all(2).with_hi(0, 0.0, false);
        let mut out = vec![];
        t.report(&region, &mut out);
        assert_eq!(out, vec![0]);
    }
}
