//! One-dimensional score structures for the Pref index (Section 5).
//!
//! Algorithm 5 builds, per ε-net vector `v`, a "1-dimensional static range
//! tree" over the scores `γ_v^(i)`; Algorithm 6 reports all indexes with
//! score in `[a_θ − ε − δ, ∞)`. A sorted array with binary search is exactly
//! that structure ([`SortedScores`]); the dynamic variant (Remark 1 of
//! Theorem 5.4) is an ordered set ([`DynScores`]).

use std::cmp::Ordering;
use std::collections::BTreeSet;

/// `f64` wrapper with a total order (via `f64::total_cmp`), usable as an
/// ordered-collection key. NaN sorts above +∞ and is rejected at the API
/// boundary of the structures below.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Static sorted score array: the per-vector structure `T_v` of Algorithm 5.
#[derive(Clone, Debug)]
pub struct SortedScores {
    /// Scores in ascending order.
    keys: Vec<f64>,
    /// `ids[i]` is the dataset index whose score is `keys[i]`.
    ids: Vec<u32>,
}

impl SortedScores {
    /// Builds from `scores[i]` = score of dataset `i`.
    ///
    /// # Panics
    /// Panics on NaN scores.
    pub fn build(scores: &[f64]) -> Self {
        assert!(scores.iter().all(|s| !s.is_nan()), "NaN score");
        assert!(scores.len() < u32::MAX as usize, "too many scores");
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]));
        let keys = order.iter().map(|&i| scores[i as usize]).collect();
        SortedScores { keys, ids: order }
    }

    /// Number of scores.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends every dataset index with score `≥ t` — the `T_v.Report(I')`
    /// call of Algorithm 6. Output-sensitive: `O(log N + OUT)`.
    pub fn report_at_least(&self, t: f64, out: &mut Vec<usize>) {
        let start = self.keys.partition_point(|k| *k < t);
        out.extend(self.ids[start..].iter().map(|&i| i as usize));
    }

    /// Appends every dataset index with score in the closed interval
    /// `[lo, hi]`.
    pub fn report_in(&self, lo: f64, hi: f64, out: &mut Vec<usize>) {
        let start = self.keys.partition_point(|k| *k < lo);
        let end = self.keys.partition_point(|k| *k <= hi);
        if start < end {
            out.extend(self.ids[start..end].iter().map(|&i| i as usize));
        }
    }

    /// Counts scores `≥ t`.
    pub fn count_at_least(&self, t: f64) -> usize {
        self.keys.len() - self.keys.partition_point(|k| *k < t)
    }

    /// The scores in ascending order.
    pub fn keys(&self) -> &[f64] {
        &self.keys
    }
}

/// Dynamic ordered score set supporting synopsis insertion/deletion.
#[derive(Clone, Debug, Default)]
pub struct DynScores {
    set: BTreeSet<(TotalF64, usize)>,
}

impl DynScores {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Inserts `(score, id)`. Returns `false` if the exact pair is present.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn insert(&mut self, id: usize, score: f64) -> bool {
        assert!(!score.is_nan(), "NaN score");
        self.set.insert((TotalF64(score), id))
    }

    /// Removes `(score, id)`. Returns `false` if absent.
    pub fn remove(&mut self, id: usize, score: f64) -> bool {
        self.set.remove(&(TotalF64(score), id))
    }

    /// Appends every id with score `≥ t` in `O(log N + OUT)`.
    pub fn report_at_least(&self, t: f64, out: &mut Vec<usize>) {
        out.extend(self.set.range((TotalF64(t), 0)..).map(|&(_, id)| id));
    }

    /// Counts entries with score `≥ t` (linear tail walk; used in tests).
    pub fn count_at_least(&self, t: f64) -> usize {
        self.set.range((TotalF64(t), 0)..).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_scores_threshold_reporting() {
        let s = SortedScores::build(&[0.5, 0.9, 0.1, 0.7]);
        let mut out = vec![];
        s.report_at_least(0.6, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 3]);
        assert_eq!(s.count_at_least(0.6), 2);
        assert_eq!(s.count_at_least(2.0), 0);
        // Closed boundary included.
        let mut out2 = vec![];
        s.report_at_least(0.7, &mut out2);
        out2.sort_unstable();
        assert_eq!(out2, vec![1, 3]);
    }

    #[test]
    fn sorted_scores_interval_reporting() {
        let s = SortedScores::build(&[0.5, 0.9, 0.1, 0.7]);
        let mut out = vec![];
        s.report_in(0.4, 0.8, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 3]);
    }

    #[test]
    fn dyn_scores_insert_remove() {
        let mut d = DynScores::new();
        d.insert(0, 0.5);
        d.insert(1, 0.9);
        d.insert(2, 0.1);
        assert!(d.remove(2, 0.1));
        assert!(!d.remove(2, 0.1));
        let mut out = vec![];
        d.report_at_least(0.5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        assert_eq!(d.count_at_least(0.0), 2);
    }

    #[test]
    fn duplicate_scores_are_kept_per_id() {
        let mut d = DynScores::new();
        d.insert(0, 0.5);
        d.insert(1, 0.5);
        let mut out = vec![];
        d.report_at_least(0.5, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn total_f64_orders_negative_zero_and_infinities() {
        let mut v = [
            TotalF64(f64::INFINITY),
            TotalF64(-0.0),
            TotalF64(0.0),
            TotalF64(f64::NEG_INFINITY),
        ];
        v.sort();
        assert_eq!(v[0].0, f64::NEG_INFINITY);
        assert_eq!(v[3].0, f64::INFINITY);
    }
}
