//! Axis-parallel query regions with per-bound strictness.

/// An axis-parallel box query `∏_h (lo_h, hi_h)` where each bound is
/// independently closed or open. Open bounds are required to express the
/// paper's query orthants faithfully (Algorithm 4 uses `(−∞, R⁻_h)` and
/// `(R⁺_h, ∞)` factors) without floating-point nudging.
#[derive(Clone, Debug, PartialEq)]
pub struct Region {
    lo: Vec<f64>,
    hi: Vec<f64>,
    lo_strict: Vec<bool>,
    hi_strict: Vec<bool>,
}

impl Region {
    /// Builds a region with explicit strictness flags.
    ///
    /// # Panics
    /// Panics on arity mismatches or empty dimension.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>, lo_strict: Vec<bool>, hi_strict: Vec<bool>) -> Self {
        assert!(!lo.is_empty(), "regions must have dimension >= 1");
        assert_eq!(lo.len(), hi.len(), "bound arity mismatch");
        assert_eq!(lo.len(), lo_strict.len(), "lo_strict arity mismatch");
        assert_eq!(lo.len(), hi_strict.len(), "hi_strict arity mismatch");
        Region {
            lo,
            hi,
            lo_strict,
            hi_strict,
        }
    }

    /// A fully closed box `[lo_1, hi_1] × … × [lo_d, hi_d]`.
    pub fn closed(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        let d = lo.len();
        Region::new(lo, hi, vec![false; d], vec![false; d])
    }

    /// The unbounded region over `dim` dimensions.
    pub fn all(dim: usize) -> Self {
        Region::closed(vec![f64::NEG_INFINITY; dim], vec![f64::INFINITY; dim])
    }

    /// Dimension of the region.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// True if the lower bound of dimension `h` is strict (open).
    #[inline]
    pub fn lo_strict(&self, h: usize) -> bool {
        self.lo_strict[h]
    }

    /// True if the upper bound of dimension `h` is strict (open).
    #[inline]
    pub fn hi_strict(&self, h: usize) -> bool {
        self.hi_strict[h]
    }

    /// Restricts dimension `h` to the (closed or strict) lower bound `v`.
    pub fn with_lo(mut self, h: usize, v: f64, strict: bool) -> Self {
        self.set_lo(h, v, strict);
        self
    }

    /// Restricts dimension `h` to the (closed or strict) upper bound `v`.
    pub fn with_hi(mut self, h: usize, v: f64, strict: bool) -> Self {
        self.set_hi(h, v, strict);
        self
    }

    /// In-place variant of [`with_lo`](Self::with_lo) for reused regions.
    #[inline]
    pub fn set_lo(&mut self, h: usize, v: f64, strict: bool) {
        self.lo[h] = v;
        self.lo_strict[h] = strict;
    }

    /// In-place variant of [`with_hi`](Self::with_hi) for reused regions.
    #[inline]
    pub fn set_hi(&mut self, h: usize, v: f64, strict: bool) {
        self.hi[h] = v;
        self.hi_strict[h] = strict;
    }

    /// Resets this region to [`Region::all`]`(dim)` **reusing its buffers**
    /// (no allocation once the buffers have grown to `dim`). Query scratch
    /// holds one `Region` and resets it per query instead of building a
    /// fresh orthant on the heap.
    pub fn reset(&mut self, dim: usize) {
        assert!(dim >= 1, "regions must have dimension >= 1");
        self.lo.clear();
        self.lo.resize(dim, f64::NEG_INFINITY);
        self.hi.clear();
        self.hi.resize(dim, f64::INFINITY);
        self.lo_strict.clear();
        self.lo_strict.resize(dim, false);
        self.hi_strict.clear();
        self.hi_strict.resize(dim, false);
    }

    /// True if the point `p` satisfies every bound.
    #[inline]
    pub fn contains(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        for (h, &x) in p.iter().enumerate() {
            if self.lo_strict[h] {
                if x <= self.lo[h] {
                    return false;
                }
            } else if x < self.lo[h] {
                return false;
            }
            if self.hi_strict[h] {
                if x >= self.hi[h] {
                    return false;
                }
            } else if x > self.hi[h] {
                return false;
            }
        }
        true
    }

    /// True if the closed box `[blo, bhi]` can contain a point of the
    /// region (used for subtree pruning).
    #[inline]
    pub fn intersects_bbox(&self, blo: &[f64], bhi: &[f64]) -> bool {
        debug_assert_eq!(blo.len(), self.dim());
        for h in 0..self.dim() {
            // Highest value available in the box must clear the lower bound…
            if self.lo_strict[h] {
                if bhi[h] <= self.lo[h] {
                    return false;
                }
            } else if bhi[h] < self.lo[h] {
                return false;
            }
            // …and the lowest value must clear the upper bound.
            if self.hi_strict[h] {
                if blo[h] >= self.hi[h] {
                    return false;
                }
            } else if blo[h] > self.hi[h] {
                return false;
            }
        }
        true
    }

    /// True if every point of the closed box `[blo, bhi]` satisfies the
    /// region (used to report whole subtrees without per-point checks).
    #[inline]
    pub fn contains_bbox(&self, blo: &[f64], bhi: &[f64]) -> bool {
        debug_assert_eq!(blo.len(), self.dim());
        for h in 0..self.dim() {
            if self.lo_strict[h] {
                if blo[h] <= self.lo[h] {
                    return false;
                }
            } else if blo[h] < self.lo[h] {
                return false;
            }
            if self.hi_strict[h] {
                if bhi[h] >= self.hi[h] {
                    return false;
                }
            } else if bhi[h] > self.hi[h] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_region_includes_boundary() {
        let r = Region::closed(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(r.contains(&[0.0, 1.0]));
        assert!(!r.contains(&[1.0001, 0.5]));
    }

    #[test]
    fn strict_bounds_exclude_boundary() {
        let r = Region::closed(vec![0.0], vec![1.0])
            .with_lo(0, 0.0, true)
            .with_hi(0, 1.0, true);
        assert!(!r.contains(&[0.0]));
        assert!(!r.contains(&[1.0]));
        assert!(r.contains(&[0.5]));
    }

    #[test]
    fn bbox_pruning_respects_strictness() {
        // Region: x > 5 (strict).
        let r = Region::all(1).with_lo(0, 5.0, true);
        // A box ending exactly at 5 cannot contain a satisfying point.
        assert!(!r.intersects_bbox(&[0.0], &[5.0]));
        assert!(r.intersects_bbox(&[0.0], &[5.0001]));
        // Containment: box starting exactly at 5 is not fully inside.
        assert!(!r.contains_bbox(&[5.0], &[9.0]));
        assert!(r.contains_bbox(&[5.0001], &[9.0]));
        // Closed variant accepts boundary.
        let rc = Region::all(1).with_lo(0, 5.0, false);
        assert!(rc.intersects_bbox(&[0.0], &[5.0]));
        assert!(rc.contains_bbox(&[5.0], &[9.0]));
    }

    #[test]
    fn reset_reuses_buffers_across_dimensions() {
        let mut r = Region::all(4).with_lo(0, 3.0, true).with_hi(2, 8.0, false);
        r.reset(2);
        assert_eq!(r, Region::all(2));
        r.reset(6);
        assert_eq!(r, Region::all(6));
        r.set_lo(5, 1.0, false);
        assert!(!r.contains(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.5]));
        assert!(r.contains(&[0.0, 0.0, 0.0, 0.0, 0.0, 1.0]));
    }

    #[test]
    fn algorithm4_style_orthant() {
        // d = 1 lifted to R^4: (rho_lo, rhohat_lo, rho_hi, rhohat_hi) with
        // conditions rho_lo >= 3, rhohat_lo < 3, rho_hi <= 8, rhohat_hi > 8.
        let r = Region::all(4)
            .with_lo(0, 3.0, false)
            .with_hi(1, 3.0, true)
            .with_hi(2, 8.0, false)
            .with_lo(3, 8.0, true);
        // The running example pair ([7,7],[1,9]) lifted to (7,1,7,9).
        assert!(r.contains(&[7.0, 1.0, 7.0, 9.0]));
        // A pair whose expansion stops exactly at the query boundary fails.
        assert!(!r.contains(&[7.0, 3.0, 7.0, 9.0]));
        assert!(!r.contains(&[7.0, 1.0, 7.0, 8.0]));
    }
}
