//! Randomized equivalence of all orthogonal-search backends against the
//! brute-force reference, including strict bounds, tombstones and the
//! ReportFirst exhaustion pattern used by the paper's query procedures.

use dds_rangetree::{
    BruteForce, BuildableIndex, DeletableIndex, KdTree, LogStructured, OrthoIndex, RangeTree,
    Region,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect()
}

/// Points with heavy coordinate ties, to exercise strict-bound handling.
fn gridded_points(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-4i32..5) as f64).collect())
        .collect()
}

fn random_region(rng: &mut StdRng, dim: usize) -> Region {
    let mut region = Region::all(dim);
    for h in 0..dim {
        if rng.gen_bool(0.8) {
            let a = rng.gen_range(-6.0..6.0);
            let b = rng.gen_range(-6.0..6.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            region = region
                .with_lo(h, lo, rng.gen_bool(0.5))
                .with_hi(h, hi, rng.gen_bool(0.5));
        }
    }
    region
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

#[test]
fn kdtree_and_rangetree_match_bruteforce() {
    let mut rng = StdRng::seed_from_u64(42);
    for dim in [1usize, 2, 3, 4] {
        for trial in 0..8 {
            let pts = if trial % 2 == 0 {
                random_points(&mut rng, 300, dim)
            } else {
                gridded_points(&mut rng, 300, dim)
            };
            let brute = BruteForce::build(dim, pts.clone());
            let kd = KdTree::build(dim, pts.clone());
            let rt = RangeTree::build(dim, pts.clone());
            for _ in 0..25 {
                let region = random_region(&mut rng, dim);
                let mut want = vec![];
                brute.report(&region, &mut want);
                let want = sorted(want);
                let mut got_kd = vec![];
                kd.report(&region, &mut got_kd);
                assert_eq!(sorted(got_kd), want, "kd report dim={dim}");
                let mut got_rt = vec![];
                rt.report(&region, &mut got_rt);
                assert_eq!(sorted(got_rt), want, "rt report dim={dim}");
                assert_eq!(kd.count(&region), want.len(), "kd count dim={dim}");
                assert_eq!(rt.count(&region), want.len(), "rt count dim={dim}");
                // report_first returns a member of the answer set.
                match kd.report_first(&region) {
                    Some(id) => assert!(want.contains(&id)),
                    None => assert!(want.is_empty()),
                }
                match rt.report_first(&region) {
                    Some(id) => assert!(want.contains(&id)),
                    None => assert!(want.is_empty()),
                }
            }
        }
    }
}

#[test]
fn kdtree_tombstones_match_bruteforce() {
    let mut rng = StdRng::seed_from_u64(7);
    let dim = 3;
    let pts = gridded_points(&mut rng, 400, dim);
    let mut brute = BruteForce::build(dim, pts.clone());
    let mut kd = KdTree::build(dim, pts.clone());
    for step in 0..600 {
        let id = rng.gen_range(0..pts.len());
        if rng.gen_bool(0.5) {
            assert_eq!(brute.delete(id), kd.delete(id), "delete step {step}");
        } else {
            assert_eq!(brute.restore(id), kd.restore(id), "restore step {step}");
        }
        if step % 50 == 0 {
            let region = random_region(&mut rng, dim);
            let mut want = vec![];
            brute.report(&region, &mut want);
            let mut got = vec![];
            kd.report(&region, &mut got);
            assert_eq!(sorted(got), sorted(want));
            assert_eq!(kd.alive(), brute.alive());
        }
    }
}

#[test]
fn report_first_exhaustion_enumerates_answer_set_exactly() {
    // The exact enumeration loop of Algorithm 2: ReportFirst + delete until
    // empty must produce the answer set with no duplicates, on every backend.
    let mut rng = StdRng::seed_from_u64(99);
    let dim = 2;
    let pts = gridded_points(&mut rng, 250, dim);
    let region = random_region(&mut rng, dim);
    let brute = BruteForce::build(dim, pts.clone());
    let mut want = vec![];
    brute.report(&region, &mut want);
    let want = sorted(want);

    let mut kd = KdTree::build(dim, pts.clone());
    let mut got = vec![];
    while let Some(id) = kd.report_first(&region) {
        got.push(id);
        assert!(kd.delete(id));
    }
    assert_eq!(sorted(got.clone()), want);
    for id in got {
        assert!(kd.restore(id));
    }
    assert_eq!(kd.alive(), pts.len());
}

#[test]
fn report_while_visits_exactly_the_answer_set() {
    let mut rng = StdRng::seed_from_u64(77);
    for dim in [1usize, 3] {
        let pts = gridded_points(&mut rng, 300, dim);
        let kd = KdTree::build(dim, pts.clone());
        let rt = RangeTree::build(dim, pts.clone());
        for _ in 0..20 {
            let region = random_region(&mut rng, dim);
            let mut want = vec![];
            BruteForce::build(dim, pts.clone()).report(&region, &mut want);
            let want = sorted(want);
            for index in [&kd as &dyn OrthoIndex, &rt as &dyn OrthoIndex] {
                // Full traversal: the visited set equals the answer set.
                let mut got = vec![];
                index.report_while(&region, &mut |id| {
                    got.push(id);
                    true
                });
                assert_eq!(sorted(got), want);
                // Early abort stops after exactly one callback.
                let mut count = 0;
                index.report_while(&region, &mut |_| {
                    count += 1;
                    false
                });
                assert_eq!(count, usize::from(!want.is_empty()));
            }
        }
    }
}

#[test]
fn logstructured_matches_bruteforce_under_churn() {
    let mut rng = StdRng::seed_from_u64(5);
    let dim = 2;
    let mut ls: LogStructured<KdTree> = LogStructured::new(dim);
    // Mirror of alive points: gid -> coords.
    let mut mirror: Vec<(usize, Vec<f64>)> = Vec::new();
    for _ in 0..30 {
        let batch_len = rng.gen_range(1..40);
        let batch = gridded_points(&mut rng, batch_len, dim);
        let gids = ls.insert_batch(batch.clone());
        mirror.extend(gids.into_iter().zip(batch));
        // Random deletions.
        for _ in 0..rng.gen_range(0..10) {
            if mirror.is_empty() {
                break;
            }
            let k = rng.gen_range(0..mirror.len());
            let (gid, _) = mirror.swap_remove(k);
            assert!(ls.delete(gid));
        }
        let region = random_region(&mut rng, dim);
        let mut got = vec![];
        ls.report(&region, &mut got);
        let want: Vec<usize> = mirror
            .iter()
            .filter(|(_, p)| region.contains(p))
            .map(|(g, _)| *g)
            .collect();
        assert_eq!(sorted(got), sorted(want));
        assert_eq!(ls.alive(), mirror.len());
    }
}
