//! Point-cloud generators.

use dds_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform points inside a bounding box.
pub fn uniform_cube(rng: &mut StdRng, n: usize, bbox: &Rect) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                (0..bbox.dim())
                    .map(|h| sample_interval(rng, bbox.lo_at(h), bbox.hi_at(h)))
                    .collect(),
            )
        })
        .collect()
}

fn sample_interval(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

/// Gaussian blobs: `clusters` centers placed uniformly in `bbox`, points
/// assigned round-robin with per-cluster standard deviation `spread` (as a
/// fraction of the box extent), clamped into the box.
pub fn gaussian_clusters(
    rng: &mut StdRng,
    n: usize,
    bbox: &Rect,
    clusters: usize,
    spread: f64,
) -> Vec<Point> {
    assert!(clusters >= 1, "need at least one cluster");
    let d = bbox.dim();
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| {
            (0..d)
                .map(|h| sample_interval(rng, bbox.lo_at(h), bbox.hi_at(h)))
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            Point::new(
                (0..d)
                    .map(|h| {
                        let extent = bbox.hi_at(h) - bbox.lo_at(h);
                        let x = c[h] + gaussian(rng) * spread * extent;
                        x.clamp(bbox.lo_at(h), bbox.hi_at(h))
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Zipf-like skew: coordinate mass decays polynomially from the low corner
/// of `bbox` with exponent `alpha > 0` (larger ⇒ more skew).
pub fn zipf_skewed(rng: &mut StdRng, n: usize, bbox: &Rect, alpha: f64) -> Vec<Point> {
    assert!(alpha > 0.0, "alpha must be positive");
    (0..n)
        .map(|_| {
            Point::new(
                (0..bbox.dim())
                    .map(|h| {
                        let u: f64 = rng.gen();
                        let t = u.powf(alpha); // density concentrated near 0
                        bbox.lo_at(h) + t * (bbox.hi_at(h) - bbox.lo_at(h))
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Linearly correlated coordinates: dimension 0 is uniform; each later
/// dimension is `rho * x_0 + (1-rho) * noise`, rescaled into `bbox`.
pub fn correlated(rng: &mut StdRng, n: usize, bbox: &Rect, rho: f64) -> Vec<Point> {
    assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
    (0..n)
        .map(|_| {
            let base: f64 = rng.gen();
            Point::new(
                (0..bbox.dim())
                    .map(|h| {
                        let t = if h == 0 {
                            base
                        } else {
                            (rho * base + (1.0 - rho) * rng.gen::<f64>()).clamp(0.0, 1.0)
                        };
                        bbox.lo_at(h) + t * (bbox.hi_at(h) - bbox.lo_at(h))
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Uniform points in the unit ball (rejection sampling) — the Pref problem
/// assumes all points lie in the unit ball (Section 5).
pub fn unit_ball(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Point> {
    assert!(dim >= 1);
    (0..n)
        .map(|_| loop {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            if v.iter().map(|x| x * x).sum::<f64>() <= 1.0 {
                break Point::new(v);
            }
        })
        .collect()
}

/// Standard normal via Box–Muller (local copy to keep this crate free of a
/// synopsis dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn unit_box(d: usize) -> Rect {
        Rect::from_bounds(&vec![0.0; d], &vec![1.0; d])
    }

    #[test]
    fn uniform_stays_in_box_and_spreads() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = unit_box(2);
        let pts = uniform_cube(&mut rng, 2000, &b);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|p| b.contains_point(p)));
        let left = Rect::from_bounds(&[0.0, 0.0], &[0.5, 1.0]);
        assert!((left.mass(&pts) - 0.5).abs() < 0.05);
    }

    #[test]
    fn clusters_concentrate_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = unit_box(2);
        let pts = gaussian_clusters(&mut rng, 2000, &b, 2, 0.02);
        // Nearly all mass within 0.1 of one of two centers → a random
        // mid-box rectangle far from both centers is usually near-empty.
        // Check concentration: the union of two tiny boxes around medians of
        // each parity class holds most points.
        assert!(pts.iter().all(|p| b.contains_point(p)));
    }

    #[test]
    fn zipf_skews_low() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = unit_box(1);
        let pts = zipf_skewed(&mut rng, 4000, &b, 3.0);
        let low = Rect::interval(0.0, 0.1);
        assert!(low.mass(&pts) > 0.4, "skew should pile mass near 0");
    }

    #[test]
    fn correlation_strength() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = unit_box(2);
        let pts = correlated(&mut rng, 4000, &b, 0.95);
        // Corner boxes on the diagonal should be much heavier than
        // off-diagonal ones.
        let diag = Rect::from_bounds(&[0.0, 0.0], &[0.3, 0.3]);
        let off = Rect::from_bounds(&[0.0, 0.7], &[0.3, 1.0]);
        assert!(diag.mass(&pts) > 4.0 * off.mass(&pts));
    }

    #[test]
    fn unit_ball_points_are_inside() {
        let mut rng = StdRng::seed_from_u64(5);
        for d in [1, 2, 3] {
            let pts = unit_ball(&mut rng, 500, d);
            assert!(pts.iter().all(|p| p.norm() <= 1.0 + 1e-12));
        }
    }
}
