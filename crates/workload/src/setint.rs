//! Uniform set-intersection instances (Definition 3.1 / Lemma 3.3).
//!
//! A collection of sets is *uniform* if every universe element belongs to
//! the same number of sets. The lower-bound reduction of Appendix B.1 maps
//! such instances to CPtile repositories; this module generates them and
//! answers intersection queries brute-force for validation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform collection of sets over universe `{0, …, universe-1}`.
#[derive(Clone, Debug)]
pub struct UniformSetInstance {
    /// `sets[i]` is sorted ascending.
    pub sets: Vec<Vec<u64>>,
    /// Universe size `q`.
    pub universe: u64,
    /// Number of sets each element belongs to.
    pub replication: usize,
}

impl UniformSetInstance {
    /// Generates `g` sets over `universe` elements, each element placed in
    /// exactly `replication` distinct sets.
    ///
    /// # Panics
    /// Panics if `replication > g` or any argument is zero.
    pub fn generate(g: usize, universe: u64, replication: usize, seed: u64) -> Self {
        assert!(g >= 1 && universe >= 1 && replication >= 1);
        assert!(
            replication <= g,
            "cannot replicate into more sets than exist"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets = vec![Vec::new(); g];
        let mut slots: Vec<usize> = (0..g).collect();
        for u in 0..universe {
            // Choose `replication` distinct sets by partial shuffle.
            for pick in 0..replication {
                let j = rng.gen_range(pick..g);
                slots.swap(pick, j);
                sets[slots[pick]].push(u);
            }
        }
        for s in &mut sets {
            s.sort_unstable();
        }
        UniformSetInstance {
            sets,
            universe,
            replication,
        }
    }

    /// Total input size `M = Σ |S_i|`.
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Brute-force `S_i ∩ S_j` (sorted), the ground truth for the reduction
    /// tests.
    pub fn intersect(&self, i: usize, j: usize) -> Vec<u64> {
        let (a, b) = (&self.sets[i], &self.sets[j]);
        let mut out = Vec::new();
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[x]);
                    x += 1;
                    y += 1;
                }
            }
        }
        out
    }

    /// Checks the uniformity invariant (every element in exactly
    /// `replication` sets).
    pub fn is_uniform(&self) -> bool {
        let mut counts = vec![0usize; self.universe as usize];
        for s in &self.sets {
            for &u in s {
                counts[u as usize] += 1;
            }
        }
        counts.iter().all(|&c| c == self.replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_uniform() {
        let inst = UniformSetInstance::generate(8, 100, 3, 1);
        assert!(inst.is_uniform());
        assert_eq!(inst.total_size(), 300);
    }

    #[test]
    fn intersections_are_correct() {
        let inst = UniformSetInstance::generate(5, 50, 2, 2);
        for i in 0..5 {
            for j in 0..5 {
                let got = inst.intersect(i, j);
                let brute: Vec<u64> = inst.sets[i]
                    .iter()
                    .filter(|u| inst.sets[j].contains(u))
                    .copied()
                    .collect();
                assert_eq!(got, brute);
            }
        }
    }

    #[test]
    fn self_intersection_is_the_set() {
        let inst = UniformSetInstance::generate(4, 30, 2, 3);
        for i in 0..4 {
            assert_eq!(inst.intersect(i, i), inst.sets[i]);
        }
    }
}
