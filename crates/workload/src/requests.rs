//! Served-request stream generators.
//!
//! A network-facing catalog sees *traffic*, not a query list: a small pool
//! of popular filter shapes repeats across many requests (the read-mostly
//! regime the cross-call mask caches exploit), with the occasional
//! malformed ask — here, a preference rank the service never indexed, so
//! error paths are exercised inside the same streams. Everything is
//! deterministic given the seed, like the rest of this crate.

use crate::queries;
use crate::repository::RepoSpec;
use dds_core::framework::{Interval, LogicalExpr, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic fault schedule to drive a request stream through:
/// consumers map it onto `dds_server::FaultPlan::seeded(seed)` (adjusted
/// to `fault_per_mille`) and run the stream behind a chaos proxy or a
/// fault-injecting client. Kept as a plain spec here so the workload
/// crate stays server-agnostic — it describes *what chaos*, not *how*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultScheduleSpec {
    /// Seed every injected fault derives from (same seed ⇒ same faults,
    /// connection by connection).
    pub seed: u64,
    /// Per-mille of connections that suffer a fault (`0..=1000`).
    pub fault_per_mille: u32,
}

impl FaultScheduleSpec {
    /// A schedule faulting roughly 40% of connections — aggressive
    /// enough that soaks exercise every fault kind, sparse enough that
    /// retries find clean connections.
    pub fn seeded(seed: u64) -> Self {
        FaultScheduleSpec {
            seed,
            fault_per_mille: 400,
        }
    }
}

/// Shape parameters of a *selective* request stream: narrow interior
/// rectangles with a threshold lower bound chosen well above typical
/// sampling margins. This is the regime where the routing synopsis earns
/// its keep — most shards hold little mass inside so small a window, yet
/// at realistic shard mixes every shard's bounding box still overlaps it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectiveShape {
    /// Per-axis rectangle width as a fraction of the repository span
    /// (`0 < width_pct ≤ 1`).
    pub width_pct: f64,
    /// Threshold lower bound every shape asks for (`percentile_at_least`).
    pub theta_lo: f64,
}

impl Default for SelectiveShape {
    fn default() -> Self {
        SelectiveShape {
            width_pct: 0.03,
            theta_lo: 0.6,
        }
    }
}

/// Specification of a deterministic request stream over a repository's
/// value space: `n_requests` expressions cycling through `n_shapes`
/// popular shapes, optionally salting in queries for an unindexed rank.
#[derive(Clone, Debug)]
pub struct RequestStreamSpec {
    /// Requests in the stream.
    pub n_requests: usize,
    /// Distinct popular shapes the stream cycles through.
    pub n_shapes: usize,
    /// Preference rank used by the well-formed shapes (must be indexed by
    /// the serving engine for those requests to succeed).
    pub rank: usize,
    /// Every `missing_rank_every`-th request (1-based) swaps in this rank
    /// instead of [`rank`](Self::rank); `0` disables error salting.
    pub missing_rank_every: usize,
    /// The rank the error-salted requests ask for (expected unindexed).
    pub missing_rank: usize,
    /// RNG seed for the shape pool.
    pub seed: u64,
    /// Optional fault schedule for consumers that serve this stream over
    /// a faulty transport; `None` (the default) means a clean network.
    /// Purely descriptive — [`exprs`](Self::exprs) ignores it.
    pub faults: Option<FaultScheduleSpec>,
    /// `Some` switches the shape pool to pure narrow-rectangle
    /// percentile shapes (see [`SelectiveShape`]); `None` (the default)
    /// keeps the mixed `(percentile ∧ top-k) ∨ percentile` pool.
    pub selective: Option<SelectiveShape>,
}

impl RequestStreamSpec {
    /// A stream of `n_requests` over 6 popular shapes, rank 1, no error
    /// salting.
    pub fn new(n_requests: usize, seed: u64) -> Self {
        RequestStreamSpec {
            n_requests,
            n_shapes: 6,
            rank: 1,
            missing_rank_every: 0,
            missing_rank: 7,
            seed,
            faults: None,
            selective: None,
        }
    }

    /// A *selective* stream of `n_requests` over 6 narrow interior
    /// percentile shapes (default [`SelectiveShape`]), no error salting —
    /// the routing-heavy traffic of the E18 experiment and the synopsis
    /// equivalence proptests.
    pub fn selective(n_requests: usize, seed: u64) -> Self {
        let mut spec = RequestStreamSpec::new(n_requests, seed);
        spec.selective = Some(SelectiveShape::default());
        spec
    }

    /// Overrides the selective shape parameters (builder-style); also
    /// switches the stream to selective shapes if it wasn't already.
    ///
    /// # Panics
    /// Panics unless `0 < width_pct ≤ 1` and `0 ≤ theta_lo ≤ 1`.
    pub fn with_selective_shape(mut self, shape: SelectiveShape) -> Self {
        assert!(
            shape.width_pct > 0.0 && shape.width_pct <= 1.0,
            "width_pct must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&shape.theta_lo),
            "theta_lo must be in [0, 1]"
        );
        self.selective = Some(shape);
        self
    }

    /// Attaches a fault schedule (builder-style): consumers serving this
    /// stream over the network inject `schedule`'s seeded chaos.
    pub fn with_faults(mut self, schedule: FaultScheduleSpec) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Sets the popular-shape pool size (builder-style).
    ///
    /// # Panics
    /// Panics if `n_shapes == 0`.
    pub fn with_shapes(mut self, n_shapes: usize) -> Self {
        assert!(n_shapes >= 1, "need at least one shape");
        self.n_shapes = n_shapes;
        self
    }

    /// Makes every `every`-th request ask for `missing_rank`
    /// (builder-style); `every == 0` disables salting.
    pub fn with_missing_rank_every(mut self, every: usize, missing_rank: usize) -> Self {
        self.missing_rank_every = every;
        self.missing_rank = missing_rank;
        self
    }

    /// Materializes the stream against `repo`'s value space: request `i`
    /// is shape `i % n_shapes`, except the error-salted slots. Each shape
    /// is a mixed expression — `(percentile ∧ top-k) ∨ percentile` — whose
    /// rectangles are drawn inside the repository bounding box, so streams
    /// exercise overlapping and disjoint shards alike.
    pub fn exprs(&self, repo: &RepoSpec) -> Vec<LogicalExpr> {
        assert!(self.n_shapes >= 1, "need at least one shape");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bbox = repo.bbox();
        let dim = repo.dim;
        if let Some(shape) = self.selective {
            // Narrow rectangles centered on interior points (20–80% of
            // each axis span): they overlap typical shard bounding boxes
            // while holding little of any one dataset's mass.
            let shapes: Vec<LogicalExpr> = (0..self.n_shapes)
                .map(|_| {
                    let mut lo = Vec::with_capacity(dim);
                    let mut hi = Vec::with_capacity(dim);
                    for h in 0..dim {
                        let span = bbox.hi_at(h) - bbox.lo_at(h);
                        let c = bbox.lo_at(h) + span * rng.gen_range(0.2..0.8);
                        let half = 0.5 * shape.width_pct * span;
                        lo.push(c - half);
                        hi.push(c + half);
                    }
                    LogicalExpr::Pred(Predicate::percentile_at_least(
                        dds_geom::Rect::from_bounds(&lo, &hi),
                        shape.theta_lo,
                    ))
                })
                .collect();
            // No top-k literals, so error salting has nothing to rewrite;
            // the cycle structure matches the mixed pool's.
            return (0..self.n_requests)
                .map(|i| shapes[i % shapes.len()].clone())
                .collect();
        }
        let shapes: Vec<LogicalExpr> = (0..self.n_shapes)
            .map(|_| {
                let band = queries::random_rect(&mut rng, &bbox);
                let narrow = queries::random_rect(&mut rng, &bbox);
                let v = queries::random_unit_vector(&mut rng, dim);
                let a: f64 = rng.gen_range(0.05..0.6);
                let score = rng.gen_range(bbox.lo_at(0)..=bbox.hi_at(0));
                LogicalExpr::Or(vec![
                    LogicalExpr::And(vec![
                        LogicalExpr::Pred(Predicate::percentile(
                            band,
                            Interval::new(a, (a + 0.5).min(1.0)),
                        )),
                        LogicalExpr::Pred(Predicate::topk_at_least(v, self.rank, score)),
                    ]),
                    LogicalExpr::Pred(Predicate::percentile_at_least(narrow, a)),
                ])
            })
            .collect();
        (0..self.n_requests)
            .map(|i| {
                let mut expr = shapes[i % shapes.len()].clone();
                if self.missing_rank_every != 0 && (i + 1) % self.missing_rank_every == 0 {
                    expr = swap_rank(expr, self.missing_rank);
                }
                expr
            })
            .collect()
    }
}

/// Rewrites every top-k literal in the expression to ask for `rank`.
fn swap_rank(expr: LogicalExpr, rank: usize) -> LogicalExpr {
    match expr {
        LogicalExpr::Pred(mut p) => {
            if let dds_core::framework::MeasureFunction::TopK { k, .. } = &mut p.measure {
                *k = rank;
            }
            LogicalExpr::Pred(p)
        }
        LogicalExpr::And(xs) => {
            LogicalExpr::And(xs.into_iter().map(|x| swap_rank(x, rank)).collect())
        }
        LogicalExpr::Or(xs) => {
            LogicalExpr::Or(xs.into_iter().map(|x| swap_rank(x, rank)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_cycle_shapes() {
        let repo = RepoSpec::mixed(8, 40, 2, 5);
        let spec = RequestStreamSpec::new(20, 99).with_shapes(4);
        let a = spec.exprs(&repo);
        let b = spec.exprs(&repo);
        assert_eq!(a.len(), 20);
        // Deterministic (structural compare via Debug: expressions carry
        // no NaN, and f64 Debug round-trips).
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Shape cycle: request 0 and 4 share a shape, 0 and 1 do not.
        assert_eq!(format!("{:?}", a[0]), format!("{:?}", a[4]));
        assert_ne!(format!("{:?}", a[0]), format!("{:?}", a[1]));
    }

    #[test]
    fn fault_schedules_are_value_types_and_do_not_perturb_the_stream() {
        let repo = RepoSpec::mixed(4, 30, 1, 5);
        let clean = RequestStreamSpec::new(12, 7);
        let faulty = RequestStreamSpec::new(12, 7).with_faults(FaultScheduleSpec::seeded(42));
        // Attaching a schedule never changes the expressions themselves.
        assert_eq!(
            format!("{:?}", clean.exprs(&repo)),
            format!("{:?}", faulty.exprs(&repo))
        );
        assert_eq!(faulty.faults, Some(FaultScheduleSpec::seeded(42)));
        assert_eq!(FaultScheduleSpec::seeded(42), FaultScheduleSpec::seeded(42));
        assert_ne!(FaultScheduleSpec::seeded(42), FaultScheduleSpec::seeded(43));
    }

    #[test]
    fn selective_streams_are_narrow_interior_and_deterministic() {
        let repo = RepoSpec::mixed(6, 30, 2, 11);
        let spec = RequestStreamSpec::selective(10, 21);
        let a = spec.exprs(&repo);
        let b = spec.exprs(&repo);
        assert_eq!(a.len(), 10);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let bbox = repo.bbox();
        for e in &a {
            let LogicalExpr::Pred(p) = e else {
                panic!("selective shapes are single predicates");
            };
            let dds_core::framework::MeasureFunction::Percentile(r) = &p.measure else {
                panic!("selective shapes are percentile predicates");
            };
            assert_eq!(p.theta.lo, SelectiveShape::default().theta_lo);
            for h in 0..repo.dim {
                let span = bbox.hi_at(h) - bbox.lo_at(h);
                let width = r.hi_at(h) - r.lo_at(h);
                assert!(
                    (width - SelectiveShape::default().width_pct * span).abs() < 1e-9,
                    "width {width} at axis {h}"
                );
                assert!(
                    r.lo_at(h) > bbox.lo_at(h) && r.hi_at(h) < bbox.hi_at(h),
                    "interior"
                );
            }
        }
        // The width override threads through and stays deterministic.
        let wide = RequestStreamSpec::selective(4, 21).with_selective_shape(SelectiveShape {
            width_pct: 0.3,
            theta_lo: 0.7,
        });
        let w = wide.exprs(&repo);
        assert_eq!(format!("{w:?}"), format!("{:?}", wide.exprs(&repo)));
        assert_ne!(format!("{:?}", w[0]), format!("{:?}", a[0]));
    }

    #[test]
    fn missing_rank_salting_hits_the_requested_slots() {
        let repo = RepoSpec::mixed(4, 30, 1, 7);
        let exprs = RequestStreamSpec::new(9, 3)
            .with_missing_rank_every(3, 11)
            .exprs(&repo);
        for (i, e) in exprs.iter().enumerate() {
            let has_missing = format!("{e:?}").contains("k: 11");
            assert_eq!(has_missing, (i + 1) % 3 == 0, "request {i}");
        }
    }
}
