//! Seeded workload generators for the distribution-aware dataset search
//! experiments.
//!
//! The paper's evaluation substrate (open-data-style repositories, Example
//! 1.1) is substituted by controllable synthetic workloads — see DESIGN.md
//! §3. Everything here is deterministic given a seed, so tests, examples and
//! benchmarks reproduce exactly.
//!
//! * [`datasets`] — point-cloud generators (uniform, Gaussian clusters,
//!   Zipf-skewed, correlated, unit-ball) used as repository datasets.
//! * [`repository`] — whole-repository builders mixing dataset flavours with
//!   varying sizes.
//! * [`scenario`] — the economist scenario of Example 1.1: city crime
//!   incidents for percentile queries and neighborhood quality-of-life
//!   vectors for preference queries.
//! * [`queries`] — query-workload generators: rectangles with target
//!   selectivity, random unit vectors, thresholds from score quantiles.
//! * [`requests`] — served-request streams: popular mixed-expression
//!   shapes repeating across many requests, optionally salted with
//!   unindexed-rank errors (the traffic a `dds-server` instance sees).
//! * [`setint`] — uniform set-intersection instances for the lower-bound
//!   reduction (Section 3.1 / Appendix B.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod queries;
pub mod repository;
pub mod requests;
pub mod scenario;
pub mod setint;

pub use repository::{RepoFlavor, RepoShard, RepoSpec};
pub use requests::{FaultScheduleSpec, RequestStreamSpec, SelectiveShape};
pub use scenario::CityScenario;
pub use setint::UniformSetInstance;
