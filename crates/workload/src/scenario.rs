//! The economist scenario of Example 1.1.
//!
//! A repository of city crime datasets: every dataset holds incident
//! locations `(x, y)` of one city (one borough is the "Brooklyn" analog),
//! plus a parallel repository of neighborhood quality-of-life vectors
//! `(−crime, −pollution, healthcare)` in the unit ball, for preference
//! queries of the form "cities with at least k neighborhoods scoring ≥ τ on
//! my linear notion of quality of life".

use crate::datasets;
use dds_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Materialized economist scenario.
#[derive(Clone, Debug)]
pub struct CityScenario {
    /// City names (`city-0`, `city-1`, …).
    pub names: Vec<String>,
    /// Per-city incident locations in `[0, 100]²`.
    pub incidents: Vec<Vec<Point>>,
    /// Per-city neighborhood quality vectors in the unit ball of `R³`
    /// (coordinates: safety, air quality, healthcare — larger is better).
    pub quality: Vec<Vec<Point>>,
    /// The "Brooklyn" analog: a geographic rectangle that a known subset of
    /// cities concentrates incidents in.
    pub brooklyn: Rect,
    /// Indexes of the cities whose incident share inside [`Self::brooklyn`]
    /// was forced to be at least `target_fraction`.
    pub focused_cities: Vec<usize>,
    /// The incident fraction forced into the focus region for
    /// [`Self::focused_cities`].
    pub target_fraction: f64,
}

impl CityScenario {
    /// Generates the scenario: `n_cities` cities with `incidents_per_city`
    /// incident records and 20–60 neighborhoods each. One in four cities is
    /// *focused*: at least `target_fraction` of its incidents fall inside
    /// the Brooklyn-analog rectangle.
    pub fn generate(
        n_cities: usize,
        incidents_per_city: usize,
        target_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(n_cities >= 1 && incidents_per_city >= 4);
        assert!((0.0..=1.0).contains(&target_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let map = Rect::from_bounds(&[0.0, 0.0], &[100.0, 100.0]);
        let brooklyn = Rect::from_bounds(&[20.0, 20.0], &[35.0, 35.0]);
        let mut names = Vec::with_capacity(n_cities);
        let mut incidents = Vec::with_capacity(n_cities);
        let mut quality = Vec::with_capacity(n_cities);
        let mut focused_cities = Vec::new();
        for i in 0..n_cities {
            names.push(format!("city-{i}"));
            let focused = i % 4 == 0;
            let mut pts = Vec::with_capacity(incidents_per_city);
            if focused {
                focused_cities.push(i);
                let inside = ((incidents_per_city as f64) * target_fraction).ceil() as usize;
                pts.extend(datasets::uniform_cube(&mut rng, inside, &brooklyn));
                pts.extend(datasets::uniform_cube(
                    &mut rng,
                    incidents_per_city - inside,
                    &map,
                ));
            } else {
                // Unfocused cities: clustered somewhere random; their mass in
                // the focus region is whatever falls there by chance.
                let clusters = rng.gen_range(2..=5);
                pts.extend(datasets::gaussian_clusters(
                    &mut rng,
                    incidents_per_city,
                    &map,
                    clusters,
                    0.08,
                ));
            }
            incidents.push(pts);

            // Neighborhood quality vectors: focused (high-crime) cities skew
            // towards lower quality-of-life scores.
            let n_hoods = rng.gen_range(20..=60);
            let bias = if focused { -0.25 } else { 0.2 };
            let hoods: Vec<Point> = (0..n_hoods)
                .map(|_| {
                    let mut v: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5) + bias).collect();
                    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                    if norm > 1.0 {
                        for x in &mut v {
                            *x /= norm + 1e-9;
                        }
                    }
                    Point::new(v)
                })
                .collect();
            quality.push(hoods);
        }
        CityScenario {
            names,
            incidents,
            quality,
            brooklyn,
            focused_cities,
            target_fraction,
        }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the scenario is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focused_cities_meet_the_fraction() {
        let sc = CityScenario::generate(16, 400, 0.15, 42);
        assert_eq!(sc.len(), 16);
        for &i in &sc.focused_cities {
            let frac = sc.brooklyn.mass(&sc.incidents[i]);
            assert!(
                frac >= 0.15,
                "city {i} has only {frac:.3} of incidents in focus region"
            );
        }
    }

    #[test]
    fn quality_vectors_live_in_unit_ball() {
        let sc = CityScenario::generate(8, 100, 0.1, 7);
        for hoods in &sc.quality {
            assert!(!hoods.is_empty());
            assert!(hoods.iter().all(|p| p.norm() <= 1.0 + 1e-9));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CityScenario::generate(6, 100, 0.1, 3);
        let b = CityScenario::generate(6, 100, 0.1, 3);
        assert_eq!(a.incidents[0][0].as_slice(), b.incidents[0][0].as_slice());
    }
}
