//! Query-workload generators.

use dds_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::Rng;

/// A random rectangle with corners drawn uniformly in `bbox`.
pub fn random_rect(rng: &mut StdRng, bbox: &Rect) -> Rect {
    let d = bbox.dim();
    let mut lo = Vec::with_capacity(d);
    let mut hi = Vec::with_capacity(d);
    for h in 0..d {
        let a = rng.gen_range(bbox.lo_at(h)..=bbox.hi_at(h));
        let b = rng.gen_range(bbox.lo_at(h)..=bbox.hi_at(h));
        let (l, u) = if a <= b { (a, b) } else { (b, a) };
        lo.push(l);
        hi.push(u);
    }
    Rect::from_bounds(&lo, &hi)
}

/// A rectangle centered on a random point of `anchor` whose mass in `anchor`
/// is approximately `target` (binary search on the half-width). Used to
/// control output sizes in the Ptile experiments.
pub fn rect_with_selectivity(rng: &mut StdRng, anchor: &[Point], target: f64) -> Rect {
    assert!(!anchor.is_empty());
    assert!((0.0..=1.0).contains(&target));
    let d = anchor[0].dim();
    let bbox = Rect::bounding(anchor);
    let center = &anchor[rng.gen_range(0..anchor.len())];
    let max_half: f64 = (0..d)
        .map(|h| bbox.hi_at(h) - bbox.lo_at(h))
        .fold(0.0, f64::max);
    let rect_at = |half: f64| {
        let lo: Vec<f64> = (0..d).map(|h| center[h] - half).collect();
        let hi: Vec<f64> = (0..d).map(|h| center[h] + half).collect();
        Rect::from_bounds(&lo, &hi)
    };
    let mut lo_w = 0.0f64;
    let mut hi_w = max_half;
    for _ in 0..40 {
        let mid = 0.5 * (lo_w + hi_w);
        if rect_at(mid).mass(anchor) < target {
            lo_w = mid;
        } else {
            hi_w = mid;
        }
    }
    rect_at(0.5 * (lo_w + hi_w))
}

/// A uniformly random unit vector.
pub fn random_unit_vector(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-3 && n <= 1.0 {
            return v.iter().map(|x| x / n).collect();
        }
    }
}

/// Exact `ω_k(P, v)` — k-th largest inner product (−∞ if `k > |P|`).
pub fn exact_kth_score(points: &[Point], v: &[f64], k: usize) -> f64 {
    if k == 0 || k > points.len() {
        return f64::NEG_INFINITY;
    }
    let mut scores: Vec<f64> = points.iter().map(|p| p.dot(v)).collect();
    let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    *kth
}

/// A Pref threshold `a_θ` chosen so that roughly a `target` fraction of the
/// repository qualifies: the `1 − target` quantile of the per-dataset
/// scores `ω_k(P_i, v)`.
pub fn threshold_with_selectivity(repo: &[Vec<Point>], v: &[f64], k: usize, target: f64) -> f64 {
    assert!(!repo.is_empty());
    assert!((0.0..=1.0).contains(&target));
    let mut scores: Vec<f64> = repo
        .iter()
        .map(|p| exact_kth_score(p, v, k))
        .filter(|s| s.is_finite())
        .collect();
    if scores.is_empty() {
        return 0.0;
    }
    scores.sort_unstable_by(|a, b| a.total_cmp(b));
    let idx = (((1.0 - target) * (scores.len() - 1) as f64).round() as usize).min(scores.len() - 1);
    scores[idx]
}

/// A random percentile interval `θ = [a, b] ⊆ [0, 1]` with width at least
/// `min_width`.
pub fn random_theta(rng: &mut StdRng, min_width: f64) -> (f64, f64) {
    let a: f64 = rng.gen_range(0.0..(1.0 - min_width).max(1e-9));
    let b: f64 = rng.gen_range((a + min_width).min(1.0)..=1.0);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn selectivity_search_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<Point> = (0..5000)
            .map(|_| Point::two(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        for target in [0.05, 0.2, 0.5] {
            let r = rect_with_selectivity(&mut rng, &pts, target);
            let got = r.mass(&pts);
            assert!((got - target).abs() < 0.05, "target {target} got {got}");
        }
    }

    #[test]
    fn kth_scores_and_thresholds() {
        let repo: Vec<Vec<Point>> = (0..10)
            .map(|i| {
                (0..50)
                    .map(|j| Point::one((i * 50 + j) as f64 / 500.0))
                    .collect()
            })
            .collect();
        let v = [1.0];
        // Dataset 9 holds the largest values.
        let top = exact_kth_score(&repo[9], &v, 1);
        assert!(top > exact_kth_score(&repo[0], &v, 1));
        // A 20% selectivity threshold should admit about 2 of 10 datasets.
        let t = threshold_with_selectivity(&repo, &v, 5, 0.2);
        let qualifying = repo
            .iter()
            .filter(|p| exact_kth_score(p, &v, 5) >= t)
            .count();
        assert!((1..=3).contains(&qualifying), "qualifying {qualifying}");
    }

    #[test]
    fn random_theta_is_ordered() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let (a, b) = random_theta(&mut rng, 0.1);
            assert!(a < b && b <= 1.0 && a >= 0.0 && b - a >= 0.1 - 1e-9);
        }
    }

    #[test]
    fn unit_vectors_are_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in [1, 2, 4] {
            let v = random_unit_vector(&mut rng, d);
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }
}
