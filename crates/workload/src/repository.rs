//! Whole-repository builders.

use crate::datasets;
use dds_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flavour of a generated dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepoFlavor {
    /// Uniform over the repository box.
    Uniform,
    /// Gaussian blobs (2–4 clusters).
    Clustered,
    /// Zipf-skewed towards the low corner.
    Skewed,
    /// Correlated coordinates.
    Correlated,
    /// Uniform in the unit ball (for Pref workloads).
    UnitBall,
}

/// One shard of a partitioned repository: the datasets assigned to it plus
/// their **stable global ids** (the dataset's index in the unsharded
/// [`RepoSpec::build`] order), ready to feed a sharded engine's
/// `add_shard(repo, global_ids)` ingest path.
#[derive(Clone, Debug)]
pub struct RepoShard {
    /// `global_ids[i]` is the unsharded index of `sets[i]`.
    pub global_ids: Vec<u64>,
    /// The shard's datasets, in shard-local order.
    pub sets: Vec<Vec<Point>>,
}

/// Specification of a synthetic repository `P = {P_1, …, P_N}`.
#[derive(Clone, Debug)]
pub struct RepoSpec {
    /// Number of datasets `N`.
    pub n_datasets: usize,
    /// Minimum dataset size `n_i`.
    pub min_points: usize,
    /// Maximum dataset size `n_i` (inclusive).
    pub max_points: usize,
    /// Dimension `d` (constant across the repository — shared schema).
    pub dim: usize,
    /// Flavour cycle: dataset `i` uses `flavors[i % len]`.
    pub flavors: Vec<RepoFlavor>,
    /// RNG seed.
    pub seed: u64,
}

impl RepoSpec {
    /// A mixed-flavour repository in `[0, 100]^d` — the default workload of
    /// experiments E1–E5 and E8–E11.
    pub fn mixed(n_datasets: usize, points: usize, dim: usize, seed: u64) -> Self {
        RepoSpec {
            n_datasets,
            min_points: points / 2,
            max_points: points.max(2),
            dim,
            flavors: vec![
                RepoFlavor::Uniform,
                RepoFlavor::Clustered,
                RepoFlavor::Skewed,
                RepoFlavor::Correlated,
            ],
            seed,
        }
    }

    /// A unit-ball repository for Pref workloads (E6, E7).
    pub fn unit_ball(n_datasets: usize, points: usize, dim: usize, seed: u64) -> Self {
        RepoSpec {
            n_datasets,
            min_points: points / 2,
            max_points: points.max(2),
            dim,
            flavors: vec![RepoFlavor::UnitBall],
            seed,
        }
    }

    /// The data bounding box implied by the flavours.
    pub fn bbox(&self) -> Rect {
        if self.flavors == [RepoFlavor::UnitBall] {
            Rect::from_bounds(&vec![-1.0; self.dim], &vec![1.0; self.dim])
        } else {
            Rect::from_bounds(&vec![0.0; self.dim], &vec![100.0; self.dim])
        }
    }

    /// Materializes the repository.
    pub fn build(&self) -> Vec<Vec<Point>> {
        assert!(self.n_datasets > 0, "empty repository");
        assert!(self.min_points >= 1 && self.min_points <= self.max_points);
        assert!(!self.flavors.is_empty(), "need at least one flavour");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bbox = self.bbox();
        (0..self.n_datasets)
            .map(|i| {
                let n = if self.min_points == self.max_points {
                    self.min_points
                } else {
                    rng.gen_range(self.min_points..=self.max_points)
                };
                match self.flavors[i % self.flavors.len()] {
                    RepoFlavor::Uniform => datasets::uniform_cube(&mut rng, n, &bbox),
                    RepoFlavor::Clustered => {
                        let c = rng.gen_range(2..=4);
                        datasets::gaussian_clusters(&mut rng, n, &bbox, c, 0.05)
                    }
                    RepoFlavor::Skewed => {
                        let alpha = rng.gen_range(1.5..4.0);
                        datasets::zipf_skewed(&mut rng, n, &bbox, alpha)
                    }
                    RepoFlavor::Correlated => {
                        let rho = rng.gen_range(0.6..0.99);
                        datasets::correlated(&mut rng, n, &bbox, rho)
                    }
                    RepoFlavor::UnitBall => datasets::unit_ball(&mut rng, n, self.dim),
                }
            })
            .collect()
    }

    /// Materializes the repository partitioned **round-robin** into at most
    /// `k` shards: dataset `i` of [`build`](Self::build) lands in shard
    /// `i % k` with global id `i`. Round-robin deliberately interleaves the
    /// flavour cycle across shards (each shard sees the realistic mix) and
    /// makes shard-local order differ from global order, so a sharded
    /// engine's id translation is actually exercised. The union of the
    /// shards is exactly the unsharded build; shards that would be empty
    /// (`k > n_datasets`) are dropped.
    pub fn shards(&self, k: usize) -> Vec<RepoShard> {
        assert!(k >= 1, "need at least one shard");
        let mut shards: Vec<RepoShard> = (0..k.min(self.n_datasets))
            .map(|_| RepoShard {
                global_ids: Vec::new(),
                sets: Vec::new(),
            })
            .collect();
        for (i, ds) in self.build().into_iter().enumerate() {
            let s = i % shards.len();
            shards[s].global_ids.push(i as u64);
            shards[s].sets.push(ds);
        }
        shards
    }

    /// Materializes the repository partitioned **geometrically skewed**
    /// into at most `k` shards: shard 0 takes about half the datasets,
    /// shard 1 about half the rest, and so on (contiguous over the build
    /// order, so dataset `i` keeps global id `i`). The result is the
    /// realistic bad case a rebalance plan's splits exist to fix — a few
    /// oversized head shards and a tail of small ones — while the union
    /// is still exactly the unsharded build. Every shard holds at least
    /// one dataset; shards that would be empty (`k > n_datasets`) are
    /// dropped.
    pub fn shards_skewed(&self, k: usize) -> Vec<RepoShard> {
        assert!(k >= 1, "need at least one shard");
        let k = k.min(self.n_datasets);
        let mut sets = self.build().into_iter().enumerate();
        let mut remaining = self.n_datasets;
        (0..k)
            .map(|s| {
                let tail = k - 1 - s; // shards still to fill after this one
                let take = if tail == 0 {
                    remaining
                } else {
                    // Half the remainder, but always leave one dataset for
                    // each later shard.
                    remaining.div_ceil(2).max(1).min(remaining - tail)
                };
                remaining -= take;
                let mut shard = RepoShard {
                    global_ids: Vec::with_capacity(take),
                    sets: Vec::with_capacity(take),
                };
                for (i, ds) in sets.by_ref().take(take) {
                    shard.global_ids.push(i as u64);
                    shard.sets.push(ds);
                }
                shard
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repositories_are_deterministic() {
        let spec = RepoSpec::mixed(10, 200, 2, 77);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            assert!(x.iter().zip(y).all(|(p, q)| p.as_slice() == q.as_slice()));
        }
    }

    #[test]
    fn sizes_respect_bounds() {
        let spec = RepoSpec::mixed(20, 100, 1, 5);
        for ds in spec.build() {
            assert!(ds.len() >= 50 && ds.len() <= 100);
        }
    }

    #[test]
    fn shards_partition_the_unsharded_build() {
        let spec = RepoSpec::mixed(11, 60, 2, 31);
        let whole = spec.build();
        for k in [1, 2, 3, 8, 20] {
            let shards = spec.shards(k);
            assert_eq!(shards.len(), k.min(11), "k = {k}");
            let mut seen = vec![false; whole.len()];
            for (s, shard) in shards.iter().enumerate() {
                assert_eq!(shard.global_ids.len(), shard.sets.len());
                for (&gid, ds) in shard.global_ids.iter().zip(&shard.sets) {
                    assert_eq!(gid as usize % shards.len(), s, "round-robin assignment");
                    assert!(!std::mem::replace(&mut seen[gid as usize], true));
                    let orig = &whole[gid as usize];
                    assert_eq!(ds.len(), orig.len());
                    assert!(ds
                        .iter()
                        .zip(orig)
                        .all(|(p, q)| p.as_slice() == q.as_slice()));
                }
            }
            assert!(seen.iter().all(|&s| s), "every dataset lands in a shard");
        }
    }

    #[test]
    fn skewed_shards_partition_with_a_heavy_head() {
        let spec = RepoSpec::mixed(16, 60, 2, 31);
        let whole = spec.build();
        for k in [1, 2, 3, 4, 8, 20] {
            let shards = spec.shards_skewed(k);
            assert_eq!(shards.len(), k.min(16), "k = {k}");
            // Contiguous coverage: ids run 0..n in order across shards,
            // datasets identical to the unsharded build.
            let mut next = 0u64;
            for shard in &shards {
                assert!(!shard.sets.is_empty(), "no empty shards");
                assert_eq!(shard.global_ids.len(), shard.sets.len());
                for (&gid, ds) in shard.global_ids.iter().zip(&shard.sets) {
                    assert_eq!(gid, next);
                    next += 1;
                    let orig = &whole[gid as usize];
                    assert_eq!(ds.len(), orig.len());
                    assert!(ds
                        .iter()
                        .zip(orig)
                        .all(|(p, q)| p.as_slice() == q.as_slice()));
                }
            }
            assert_eq!(next, 16, "every dataset lands in a shard");
            // Skew: sizes never increase along the shard list, and with
            // enough room the head is strictly heavier than the tail.
            for pair in shards.windows(2) {
                assert!(pair[0].sets.len() >= pair[1].sets.len());
            }
            if (3..=4).contains(&k) {
                assert!(shards[0].sets.len() > shards[k - 1].sets.len());
            }
        }
        // The canonical halving: 16 datasets over 3 shards → 8, 4, 4.
        let sizes: Vec<usize> = spec.shards_skewed(3).iter().map(|s| s.sets.len()).collect();
        assert_eq!(sizes, vec![8, 4, 4]);
    }

    #[test]
    fn unit_ball_repo_is_in_ball() {
        let spec = RepoSpec::unit_ball(5, 100, 3, 9);
        for ds in spec.build() {
            assert!(ds.iter().all(|p| p.norm() <= 1.0 + 1e-12));
        }
    }
}
