//! Scoped std-thread worker pool for parallel index construction.
//!
//! The paper's build paths are embarrassingly parallel per dataset (canonical
//! rectangle enumeration, Algorithms 1/3) and per net direction (score
//! tables, Algorithm 5). This crate provides the one primitive they all
//! share: [`par_map`], a *deterministic* parallel map over indexed work
//! units. `rayon` is unavailable offline, so the pool is built directly on
//! [`std::thread::scope`]:
//!
//! * the input is cut into contiguous chunks of indexes;
//! * workers *steal* chunks from a shared atomic cursor (no static
//!   partitioning — a worker that lands on cheap datasets just takes more
//!   chunks);
//! * each chunk's results are kept together and the chunks are merged back
//!   in index order after the scope joins.
//!
//! Because every work unit is a pure function of its index and the merge
//! order is fixed, the output is **bit-identical to the serial map for every
//! thread count** — the property the parallel-equivalence test layer pins
//! for all index families.
//!
//! [`BuildOptions`] carries the thread count through the build APIs; its
//! `Default` resolves `DDS_THREADS` (env override) and falls back to
//! [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Work units claimed per cursor increment aim for this many chunks per
/// worker, so fast workers can steal the tail of a slow worker's share.
const CHUNKS_PER_WORKER: usize = 4;

/// Options controlling parallel index construction.
///
/// The thread count **never** affects results — every build path using the
/// pool is bit-identical to its serial counterpart — so the default can
/// safely exploit all available cores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildOptions {
    /// Number of worker threads (≥ 1). `1` means build serially on the
    /// calling thread.
    pub threads: usize,
}

impl BuildOptions {
    /// Serial build: everything on the calling thread.
    pub fn serial() -> Self {
        BuildOptions { threads: 1 }
    }

    /// Build with exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        BuildOptions { threads }
    }

    /// Resolves the thread count from the environment: the `DDS_THREADS`
    /// variable when set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let env = std::env::var("DDS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1);
        let threads = env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        BuildOptions { threads }
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Derives an independent, collision-free RNG seed for work unit `index`
/// from a build seed (SplitMix64 finalizer over a golden-ratio stride; the
/// map `index → mix_seed(seed, index)` is injective for fixed `seed`).
///
/// Builders seed one `StdRng` per dataset with this instead of threading a
/// single sequential generator through the dataset loop — that is what makes
/// per-dataset sampling independent of both the thread count and the order
/// in which workers claim datasets.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic parallel map: `out[i] = f(i, &items[i])`, computed on up to
/// `opts.threads` scoped workers stealing contiguous index chunks.
///
/// Guarantees, for any thread count:
/// * the output is exactly `items.iter().enumerate().map(f).collect()`;
/// * `f` is called exactly once per item;
/// * a panic in any worker propagates to the caller after the scope joins.
pub fn par_map<T, U, F>(opts: &BuildOptions, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(opts, items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with **per-worker reusable state**: every worker thread calls
/// `init()` exactly once and threads the resulting value through all the
/// work units it claims (`out[i] = f(&mut state, i, &items[i])`).
///
/// This is the primitive behind the batch *query* APIs: the state is a query
/// scratch (bitsets, hit buffers, memo maps) that would otherwise be
/// re-allocated per query. The determinism contract is inherited from
/// [`par_map`] **provided `f`'s output does not depend on the state's
/// history** — scratch must be reset per unit, which every caller in this
/// workspace does.
pub fn par_map_with<T, U, S, I, F>(opts: &BuildOptions, items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    // Fast path: a singleton (or empty) input, or an explicitly serial
    // configuration, runs inline on the calling thread — no workers are
    // spawned, no cursor, no chunk merge. Results are identical by
    // construction (it *is* the serial map the guarantee is stated
    // against); the pool's own tests pin that the caller thread does all
    // the work here.
    let threads = opts.threads.max(1).min(n.max(1));
    if n <= 1 || threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    // Chunk granularity: small enough that workers can steal meaningfully,
    // large enough to amortize the cursor traffic.
    let chunk = (n / (threads * CHUNKS_PER_WORKER)).max(1);
    let n_chunks = n.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let init = &init;
    let mut by_chunk: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        let mut out = Vec::with_capacity(end - start);
                        for (j, item) in items[start..end].iter().enumerate() {
                            out.push(f(&mut state, start + j, item));
                        }
                        local.push((c, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    // Deterministic merge: chunks back into index order, then flatten.
    by_chunk.sort_unstable_by_key(|(c, _)| *c);
    let mut out = Vec::with_capacity(n);
    for (_, mut v) in by_chunk {
        out.append(&mut v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 4, 7, 8, 64] {
            let got = par_map(&BuildOptions::with_threads(threads), &items, |i, x| {
                x * 3 + i as u64
            });
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let opts = BuildOptions::with_threads(8);
        let empty: Vec<u32> = vec![];
        assert!(par_map(&opts, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(&opts, &[42u32], |i, x| (i, *x)), vec![(0, 42)]);
        // More threads than items.
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&opts, &items, |_, x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let n = 257; // deliberately not a multiple of any chunk size
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        let out = par_map(&BuildOptions::with_threads(5), &items, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, items);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_with_reuses_state_and_matches_serial() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for threads in [1, 2, 3, 8] {
            // State is a scratch buffer reset per unit; reuse must be
            // invisible in the output.
            let got = par_map_with(
                &BuildOptions::with_threads(threads),
                &items,
                Vec::<u64>::new,
                |buf, _, &x| {
                    buf.clear();
                    buf.extend(std::iter::repeat_n(x, 7));
                    buf.iter().sum::<u64>()
                },
            );
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_with_calls_init_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_with(
            &BuildOptions::with_threads(4),
            &items,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i, _| i,
        );
        assert_eq!(out, items);
        assert!(inits.load(Ordering::Relaxed) <= 4, "one init per worker");
    }

    /// The inline fast path: singleton/empty inputs and `threads == 1`
    /// run entirely on the calling thread (no workers spawned), with
    /// results unchanged from the general pooled path.
    #[test]
    fn fast_path_runs_inline_on_caller_thread() {
        let caller = std::thread::current().id();
        let observe = |items: &[u64], threads: usize| {
            let ids = std::sync::Mutex::new(Vec::new());
            let out = par_map(&BuildOptions::with_threads(threads), items, |i, x| {
                ids.lock().unwrap().push(std::thread::current().id());
                x * 5 + i as u64
            });
            (out, ids.into_inner().unwrap())
        };
        // threads == 1 over many items; one item (or none) over many
        // threads — every shape must stay on the caller.
        for (items, threads) in [
            ((0..100).collect::<Vec<u64>>(), 1),
            (vec![42], 8),
            (vec![], 8),
        ] {
            let serial: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, x)| x * 5 + i as u64)
                .collect();
            let (out, ids) = observe(&items, threads);
            assert_eq!(out, serial, "inline results unchanged");
            assert_eq!(ids.len(), items.len(), "one call per item");
            assert!(
                ids.iter().all(|&id| id == caller),
                "fast path must not leave the calling thread"
            );
        }
        // Control: the pooled path really does use other threads (so the
        // assertion above is meaningful).
        let (out, ids) = observe(&(0..4096).collect::<Vec<u64>>(), 8);
        assert_eq!(out.len(), 4096);
        assert!(
            ids.iter().any(|&id| id != caller),
            "pooled path should recruit workers"
        );
    }

    #[test]
    fn mix_seed_is_injective_per_index() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix_seed(0x5EED, i)), "collision at {i}");
        }
        // Different build seeds give different streams.
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&BuildOptions::with_threads(4), &items, |i, _| {
                if i == 33 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn options_resolve_env_override() {
        // Whatever the ambient environment, explicit construction wins.
        assert_eq!(BuildOptions::serial().threads, 1);
        assert_eq!(BuildOptions::with_threads(6).threads, 6);
        assert!(BuildOptions::from_env().threads >= 1);
    }
}
