//! Deterministic fault injection: seeded plans, a faulting stream
//! wrapper, and a chaos proxy.
//!
//! Networks fail in a handful of characteristic ways — a write torn
//! mid-frame, a read that stalls, an abrupt reset, a connect that takes
//! its time, a peer that trickles bytes — and every one of them must be
//! *reproducible* to be debuggable. This module makes chaos a pure
//! function of a seed:
//!
//! * [`FaultPlan`] is a seed plus a fault rate; [`FaultPlan::conn`] maps a
//!   connection index to that connection's [`ConnPlan`] deterministically
//!   (an inline splitmix64, no RNG dependency), so a failing soak run is
//!   re-run exactly from its printed seed.
//! * [`FaultStream`] wraps a `TcpStream` and applies one [`ConnPlan`] at
//!   exact byte offsets: a torn write really puts the first `k` bytes on
//!   the wire before failing, a reset really cuts the read at byte `k`,
//!   a trickle caps every transfer. A plan with no fault delegates
//!   straight through — [`crate::DdsClient`] wraps every connection in
//!   one, clean or not.
//! * [`ChaosProxy`] is the server-side harness: a loopback listener that
//!   forwards every accepted connection to an upstream [`crate::DdsServer`]
//!   with the connection's plan applied on the client-facing socket, so a
//!   fault soak exercises the *real* server over real sockets while the
//!   client's retry policy heals around the chaos.
//!
//! Everything here is deterministic except thread scheduling; the fault
//! *positions* never depend on timing.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The splitmix64 step: a tiny, well-mixed PRNG over a `u64` state. All
/// fault-plan derivation runs on this so `dds-server` needs no RNG
/// dependency and a plan is a pure function of (seed, connection index).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One concrete fault a connection suffers, at an exact byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The first `at` bytes of the write direction reach the wire; the
    /// next write fails `BrokenPipe` and the socket is shut down — the
    /// peer sees a frame cut mid-body.
    TornWrite {
        /// Bytes allowed out before the cut.
        at: u64,
    },
    /// The read direction delivers `at` bytes, then fails
    /// `ConnectionReset` and the socket is shut down.
    ResetRead {
        /// Bytes allowed in before the reset.
        at: u64,
    },
    /// One-shot stall: the read crossing byte `at` sleeps `ms` first
    /// (the connection survives — this exercises deadlines, not retries).
    ReadStall {
        /// Byte offset the stall precedes.
        at: u64,
        /// Stall length in milliseconds.
        ms: u32,
    },
    /// One-shot stall on the write direction, like [`Fault::ReadStall`].
    WriteStall {
        /// Byte offset the stall precedes.
        at: u64,
        /// Stall length in milliseconds.
        ms: u32,
    },
    /// Every read and write is capped at `chunk` bytes — the short-read
    /// trickle that exercises partial-frame resumption end to end.
    Trickle {
        /// Transfer cap per call, ≥ 1.
        chunk: usize,
    },
}

/// What one connection suffers: an optional connect delay plus at most
/// one [`Fault`]. Applied by [`FaultStream`]; the connect delay is the
/// *dialer's* business (the client and the proxy sleep before
/// establishing the upstream connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnPlan {
    /// Milliseconds to wait before the connection is usable.
    pub connect_delay_ms: u32,
    /// The fault this connection suffers, if any.
    pub fault: Option<Fault>,
}

impl ConnPlan {
    /// A connection with no faults at all — [`FaultStream`] under this
    /// plan is a transparent passthrough.
    pub const CLEAN: ConnPlan = ConnPlan {
        connect_delay_ms: 0,
        fault: None,
    };
}

/// A seeded schedule of per-connection faults.
///
/// The plan itself is two words; [`conn`](Self::conn) derives connection
/// `i`'s [`ConnPlan`] on demand. Most connections are clean (default
/// fault rate 400‰) so a retrying client always finds a working path —
/// chaos that faults *every* connection proves nothing except that
/// nothing works.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    fault_per_mille: u32,
}

impl FaultPlan {
    /// A plan with the default fault rate (400 of 1000 connections).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fault_per_mille: 400,
        }
    }

    /// Overrides how many connections per 1000 suffer a fault
    /// (1000 = every connection).
    pub fn with_fault_per_mille(mut self, per_mille: u32) -> FaultPlan {
        self.fault_per_mille = per_mille.min(1000);
        self
    }

    /// The seed this plan derives everything from — print it on failure;
    /// re-running with the same seed replays the same faults.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Connection `conn`'s fate, a pure function of (seed, conn).
    pub fn conn(&self, conn: u64) -> ConnPlan {
        let mut s = self
            .seed
            .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // One warm-up step so near-identical seeds decorrelate.
        let _ = splitmix64(&mut s);
        let connect_delay_ms = if splitmix64(&mut s).is_multiple_of(10) {
            1 + (splitmix64(&mut s) % 40) as u32
        } else {
            0
        };
        let fault = if splitmix64(&mut s) % 1000 < u64::from(self.fault_per_mille) {
            Some(match splitmix64(&mut s) % 5 {
                // Offsets land inside the first few frames: requests are
                // tens-to-hundreds of bytes, ingest frames far larger, so
                // cuts hit prefixes, bodies and frame boundaries alike.
                0 => Fault::TornWrite {
                    at: 1 + splitmix64(&mut s) % 256,
                },
                1 => Fault::ResetRead {
                    at: splitmix64(&mut s) % 256,
                },
                2 => Fault::ReadStall {
                    at: splitmix64(&mut s) % 128,
                    ms: 10 + (splitmix64(&mut s) % 80) as u32,
                },
                3 => Fault::WriteStall {
                    at: splitmix64(&mut s) % 128,
                    ms: 10 + (splitmix64(&mut s) % 80) as u32,
                },
                _ => Fault::Trickle {
                    chunk: 1 + (splitmix64(&mut s) % 6) as usize,
                },
            })
        } else {
            None
        };
        ConnPlan {
            connect_delay_ms,
            fault,
        }
    }
}

/// A `TcpStream` that misbehaves exactly as its [`ConnPlan`] says.
///
/// Positions are tracked per direction; faults trip at exact byte
/// offsets, so a torn write puts precisely `at` bytes on the wire before
/// the `BrokenPipe`. Under [`ConnPlan::CLEAN`] every call delegates
/// straight to the inner stream.
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    plan: ConnPlan,
    read_pos: u64,
    write_pos: u64,
    read_stalled: bool,
    write_stalled: bool,
}

impl FaultStream {
    /// Wraps `inner` under `plan`. The plan's connect delay is **not**
    /// applied here — the dialer sleeps before establishing the
    /// connection, so wrapping an accepted socket twice (one wrapper per
    /// pump direction, as the proxy does) doesn't double the delay.
    pub fn new(inner: TcpStream, plan: ConnPlan) -> FaultStream {
        FaultStream {
            inner,
            plan,
            read_pos: 0,
            write_pos: 0,
            read_stalled: false,
            write_stalled: false,
        }
    }

    /// The wrapped stream (for `shutdown`, peer addresses, socket
    /// options).
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let mut cap = buf.len();
        match self.plan.fault {
            Some(Fault::ResetRead { at }) => {
                if self.read_pos >= at {
                    let _ = self.inner.shutdown(Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected fault: connection reset",
                    ));
                }
                cap = cap.min((at - self.read_pos) as usize);
            }
            Some(Fault::ReadStall { at, ms }) if !self.read_stalled && self.read_pos >= at => {
                self.read_stalled = true;
                std::thread::sleep(Duration::from_millis(u64::from(ms)));
            }
            Some(Fault::Trickle { chunk }) => cap = cap.min(chunk.max(1)),
            _ => {}
        }
        let n = self.inner.read(&mut buf[..cap])?;
        self.read_pos += n as u64;
        Ok(n)
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let mut cap = buf.len();
        match self.plan.fault {
            Some(Fault::TornWrite { at }) => {
                if self.write_pos >= at {
                    // Cut the socket for real so the peer observes the
                    // torn frame, not just this side's error.
                    let _ = self.inner.shutdown(Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "injected fault: write torn",
                    ));
                }
                cap = cap.min((at - self.write_pos) as usize);
            }
            Some(Fault::WriteStall { at, ms }) if !self.write_stalled && self.write_pos >= at => {
                self.write_stalled = true;
                std::thread::sleep(Duration::from_millis(u64::from(ms)));
            }
            Some(Fault::Trickle { chunk }) => cap = cap.min(chunk.max(1)),
            _ => {}
        }
        let n = self.inner.write(&buf[..cap])?;
        self.write_pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A loopback TCP proxy that forwards every connection to an upstream
/// server through a [`FaultStream`] — the chaos harness the fault soak
/// puts in front of a real [`crate::DdsServer`].
///
/// Connection `i` (in accept order) gets `plan.conn(i)` applied on the
/// **client-facing** socket: its request bytes suffer the read-side
/// faults on the way in, its response bytes the write-side faults on the
/// way out, while the upstream leg stays clean — the server under test
/// sees exactly what a flaky client looks like, the client exactly what
/// a flaky server looks like.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts forwarding to
    /// `upstream` under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("dds-chaos-accept".into())
                .spawn(move || {
                    let mut conn = 0u64;
                    for down in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let down = match down {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        let conn_plan = plan.conn(conn);
                        conn += 1;
                        let _ = std::thread::Builder::new()
                            .name("dds-chaos-conn".into())
                            .spawn(move || forward_conn(down, upstream, conn_plan));
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to instead of the server's.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and reaps the accept thread. Connections already
    /// forwarded run to completion (their pumps exit when either side
    /// closes). Dropping the proxy does the same.
    pub fn shutdown(self) {}
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// One proxied connection: two pumps, the client-facing socket wrapped in
/// a [`FaultStream`] in each direction (independent wrappers — positions
/// are per direction anyway).
fn forward_conn(down: TcpStream, upstream: SocketAddr, plan: ConnPlan) {
    if plan.connect_delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(u64::from(plan.connect_delay_ms)));
    }
    let up = match TcpStream::connect(upstream) {
        Ok(s) => s,
        Err(_) => {
            let _ = down.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = down.set_nodelay(true);
    let _ = up.set_nodelay(true);
    let (down_w, up_r) = match (down.try_clone(), up.try_clone()) {
        (Ok(d), Ok(u)) => (d, u),
        _ => {
            let _ = down.shutdown(Shutdown::Both);
            let _ = up.shutdown(Shutdown::Both);
            return;
        }
    };
    // Client → server: downstream reads are faulted.
    let c2s = std::thread::Builder::new()
        .name("dds-chaos-c2s".into())
        .spawn(move || {
            let mut from = FaultStream::new(down, plan);
            let mut to = up;
            pump(&mut from, &mut to);
            let _ = from.get_ref().shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        });
    // Server → client: downstream writes are faulted (this half runs on
    // the per-connection thread itself).
    {
        let mut from = up_r;
        let mut to = FaultStream::new(down_w, plan);
        pump(&mut from, &mut to);
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.get_ref().shutdown(Shutdown::Both);
    }
    if let Ok(t) = c2s {
        let _ = t.join();
    }
}

fn pump(from: &mut impl Read, to: &mut impl Write) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected loopback socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = l.accept().expect("accept");
        a.set_nodelay(true).ok();
        b.set_nodelay(true).ok();
        (a, b)
    }

    #[test]
    fn plans_are_deterministic_and_seeds_differ() {
        let p = FaultPlan::seeded(7);
        for i in 0..64 {
            assert_eq!(p.conn(i), p.conn(i), "same (seed, conn) → same plan");
        }
        let q = FaultPlan::seeded(8);
        assert!(
            (0..64).any(|i| p.conn(i) != q.conn(i)),
            "different seeds must differ somewhere in 64 connections"
        );
        // The default rate leaves a healthy share of clean connections.
        let clean = (0..1000).filter(|&i| p.conn(i).fault.is_none()).count();
        assert!(
            clean > 400,
            "expected mostly-clean connections, got {clean}"
        );
        let all = FaultPlan::seeded(7).with_fault_per_mille(1000);
        assert!((0..100).all(|i| all.conn(i).fault.is_some()));
    }

    #[test]
    fn torn_write_cuts_at_the_exact_byte() {
        let (a, mut b) = pair();
        let mut fs = FaultStream::new(
            a,
            ConnPlan {
                connect_delay_ms: 0,
                fault: Some(Fault::TornWrite { at: 5 }),
            },
        );
        let err = fs.write_all(&[0xAB; 16]).expect_err("write must tear");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Exactly 5 bytes made it out, then the peer sees EOF.
        let mut got = Vec::new();
        b.read_to_end(&mut got).expect("peer reads the torn prefix");
        assert_eq!(got, vec![0xAB; 5]);
    }

    #[test]
    fn reset_read_cuts_at_the_exact_byte() {
        let (a, mut b) = pair();
        b.write_all(&[0xCD; 16]).expect("peer writes");
        let mut fs = FaultStream::new(
            a,
            ConnPlan {
                connect_delay_ms: 0,
                fault: Some(Fault::ResetRead { at: 3 }),
            },
        );
        let mut buf = [0u8; 16];
        let mut got = 0;
        // Reads are capped at the fault boundary, then the reset lands.
        loop {
            match fs.read(&mut buf) {
                Ok(n) => got += n,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                    break;
                }
            }
        }
        assert_eq!(got, 3);
    }

    #[test]
    fn trickle_caps_every_transfer() {
        let (a, mut b) = pair();
        let mut fs = FaultStream::new(
            a,
            ConnPlan {
                connect_delay_ms: 0,
                fault: Some(Fault::Trickle { chunk: 2 }),
            },
        );
        assert_eq!(fs.write(&[1; 10]).expect("capped write"), 2);
        b.write_all(&[2; 10]).expect("peer writes");
        let mut buf = [0u8; 10];
        assert_eq!(fs.read(&mut buf).expect("capped read"), 2);
    }

    #[test]
    fn clean_plan_is_a_passthrough() {
        let (a, mut b) = pair();
        let mut fs = FaultStream::new(a, ConnPlan::CLEAN);
        fs.write_all(b"hello").expect("clean write");
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).expect("peer reads");
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn chaos_proxy_forwards_clean_connections() {
        // An "upstream" echo: accept one connection, echo 4 bytes back.
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let upstream = l.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let (mut s, _) = l.accept().expect("accept");
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).expect("read");
            s.write_all(&buf).expect("write");
        });
        let proxy = ChaosProxy::spawn(upstream, FaultPlan::seeded(1).with_fault_per_mille(0))
            .expect("spawn proxy");
        let mut c = TcpStream::connect(proxy.local_addr()).expect("connect via proxy");
        c.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf)
            .expect("echoed back through the proxy");
        assert_eq!(&buf, b"ping");
        echo.join().expect("echo thread");
        proxy.shutdown();
    }
}
