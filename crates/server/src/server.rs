//! The serving loop: readiness-driven sessions, bounded admission,
//! executors, shutdown.
//!
//! Thread anatomy (all `std::thread`, no async runtime):
//!
//! * one **listener** accepts connections, flips them nonblocking, and
//!   hands each to an I/O thread round-robin;
//! * a fixed pool of **I/O threads** (`cfg.io_threads`, independent of
//!   the connection count) each run a level-triggered readiness loop
//!   ([`crate::reactor`], `poll(2)` under the hood). Every session is a
//!   small state machine — reading the length prefix, reading the body,
//!   awaiting its executor result, or flushing a response — so one
//!   thread holds thousands of idle connections at the cost of one
//!   `pollfd` each. Cheap control ops (stats/ping/shutdown) are answered
//!   in place; real work — queries, batches, ingests — goes into the
//!   **bounded admission queue** (`mpsc::sync_channel(queue_depth)`). A
//!   full queue answers [`Response::Busy`] immediately: the server never
//!   buffers more than `queue_depth` requests, which is the whole
//!   backpressure story. Session buffers come from a shared size-classed
//!   [`BufferPool`], so steady-state serving allocates nothing per frame
//!   (and, warm, nothing per session);
//! * a fixed pool of **executors** drains the queue and runs jobs against
//!   the shared [`ShardedEngine`] — queries under a read lock (the
//!   engine's `&self` paths fan out over `dds_pool` internally via
//!   `query_batch`), ingests under a write lock through the non-panicking
//!   `try_*` paths. Results travel back to the owning I/O thread through
//!   its completion queue plus a waker.
//!
//! Optionally each session carries a token-bucket **rate limit**
//! ([`ServerConfig::rate_limit`]): work ops beyond the budget are
//! answered with a typed `throttled` error without ever touching the
//! admission queue, so one hot client cannot starve the executor pool.
//!
//! Graceful shutdown (remote [`Request::Shutdown`] or local
//! [`DdsServer::shutdown`]) flips the admission gate — late requests get a
//! typed `Unavailable` error — then **drains**: executors exit only once
//! the gate is up *and* the queue reads empty, so everything admitted is
//! executed and answered first (a request racing the gate edge is
//! answered with a typed `Unavailable` when the queue drops — answered,
//! never hung). Only after the executors are gone do the I/O threads get
//! the reap signal: they flush every pending response, close every
//! session, and exit.

use crate::buffer::BufferPool;
use crate::protocol::{
    MetricsReport, Request, Response, ServerError, ServerErrorKind, ServerStats, MAX_SLEEP_MS,
    PANIC_DRILL_MS,
};
use crate::reactor::{Interest, Reactor, Ready, Waker};
use crate::wire::{
    encode_frame_into, WireError, DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN, PROTOCOL_VERSION,
};
use dds_core::framework::Repository;
use dds_core::pool::BuildOptions;
use dds_core::shard::ShardedEngine;
use dds_core::telemetry::{QueryTrace, SlowQueryLog, StageTimings};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A per-session token-bucket rate limit (see
/// [`ServerConfig::rate_limit`]).
///
/// Each session starts with `burst` tokens; a work op costs one, and
/// tokens flow back at `per_sec` per second up to the `burst` cap. A
/// session out of tokens gets a typed
/// [`throttled`](ServerErrorKind::Throttled) error — transient by
/// contract, like `Busy`: back off and retry. Control ops (stats, ping,
/// shutdown) are never throttled. `per_sec: 0` means the burst is all a
/// session ever gets — useful for deterministic drills.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Bucket capacity: the largest back-to-back run of work ops.
    pub burst: u32,
    /// Sustained work ops per second flowing back into the bucket.
    pub per_sec: u32,
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission-queue depth: at most this many requests wait for an
    /// executor; the next one is answered [`Response::Busy`].
    pub queue_depth: usize,
    /// Executor threads draining the queue.
    pub executors: usize,
    /// Session I/O threads. Each runs a readiness loop over its share of
    /// the connections, so this bounds I/O parallelism, **not** the
    /// connection count — two threads serve thousands of idle sessions.
    pub io_threads: usize,
    /// Worker threads each executed query fans out over
    /// (`ShardedEngine::query_batch_opts`); `None` uses the engine
    /// default (`DDS_THREADS` / all cores). Builds triggered by ingest use
    /// the same setting.
    pub query_threads: Option<usize>,
    /// Upper bound on a frame body, both directions.
    pub max_frame_len: u32,
    /// Whether [`Request::Sleep`] is honoured. Off by default: it exists
    /// for backpressure drills in tests, and a production server must not
    /// hand unauthenticated clients a free executor-occupancy primitive.
    pub allow_sleep: bool,
    /// Per-session work-op budget; `None` (the default) serves
    /// unthrottled.
    pub rate_limit: Option<RateLimit>,
    /// How long a session may sit **mid-I/O** without moving a byte
    /// before it is reaped: stuck inside a frame (a partial prefix or
    /// body that never completes — a torn client write looks exactly
    /// like this from the server) or stuck flushing a response to a
    /// peer that stopped reading. Fully idle sessions (between frames)
    /// and sessions awaiting an executor are exempt — idle connections
    /// stay cheap and long-running jobs don't kill their session. Reaped
    /// sessions increment the `sessions_reaped` counter.
    pub stall_timeout: Duration,
    /// A request whose end-to-end time (decode + queue wait + execute +
    /// response write) meets this threshold leaves a structured
    /// [`QueryTrace`] in the slow-query log (served by
    /// [`Request::Metrics`]). `Duration::ZERO` traces every request —
    /// useful for tests and latency harnesses.
    pub slow_query_threshold: Duration,
    /// Most slow-query traces retained (a bounded ring; oldest fall out).
    /// `0` disables tracing entirely. The ring is preallocated, so
    /// tracing never allocates at steady state.
    pub slow_log_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            executors: 2,
            io_threads: 2,
            query_threads: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            allow_sleep: false,
            rate_limit: None,
            stall_timeout: Duration::from_secs(30),
            slow_query_threshold: Duration::from_millis(100),
            slow_log_capacity: 64,
        }
    }
}

/// Internal counter block (the mutable half of [`ServerStats`]).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    batch_exprs: AtomicU64,
    admin_ops: AtomicU64,
    busy_rejections: AtomicU64,
    unavailable_rejections: AtomicU64,
    wire_errors: AtomicU64,
    jobs_admitted: AtomicU64,
    jobs_dequeued: AtomicU64,
    jobs_completed: AtomicU64,
    executor_panics: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_active: AtomicU64,
    sessions_throttled: AtomicU64,
    sessions_reaped: AtomicU64,
    retries_attempted: AtomicU64,
    requests_deduped: AtomicU64,
}

/// Most request ids the dedup window remembers; beyond this the oldest
/// entries age out (a retransmission older than a thousand ingests is a
/// bug in the client, not a duplicate the server still owes an answer).
const DEDUP_WINDOW_CAP: usize = 1024;

/// One remembered retry token.
enum DedupEntry {
    /// The original is still executing; a duplicate arriving now is
    /// answered with a transient `unavailable` ("still in flight") so
    /// the client backs off and re-asks — replaying would require
    /// blocking an executor on another executor's job.
    InFlight,
    /// The original finished; duplicates replay this recorded answer
    /// (boxed: answers dwarf the zero-sized `InFlight` marker).
    Done(Box<Response>),
}

/// The server-global ingest dedup window: `request_id` → fate.
///
/// Server-global, not per-session, on purpose: a retry that follows a
/// torn write arrives on a **fresh connection** (the old one is dead —
/// that is why the client is retrying), so a per-session window could
/// never catch the duplicate. Bounded FIFO: insertion order is tracked
/// and the oldest **finished** entries fall out past
/// [`DEDUP_WINDOW_CAP`]. `InFlight` entries are never evicted — aging
/// one out while its ingest still executes would let a duplicate
/// re-execute concurrently, the exact double-ingest the window exists to
/// prevent; their count is bounded by the executor pool, far below the
/// cap, so exempting them cannot grow the window unboundedly.
#[derive(Default)]
struct DedupWindow {
    map: std::collections::HashMap<u64, DedupEntry>,
    order: std::collections::VecDeque<u64>,
}

impl DedupWindow {
    fn insert(&mut self, id: u64, entry: DedupEntry) {
        if self.map.insert(id, entry).is_none() {
            self.order.push_back(id);
        }
        // Evict the oldest Done entries past the cap; InFlight entries
        // rotate to the back instead (re-examined once they finish). The
        // rotation budget bounds the scan so a window somehow full of
        // InFlight ids degrades to exceeding the cap, never to spinning.
        let mut rotations = self.order.len();
        while self.map.len() > DEDUP_WINDOW_CAP && rotations > 0 {
            rotations -= 1;
            match self.order.pop_front() {
                Some(old) => match self.map.get(&old) {
                    Some(DedupEntry::InFlight) => self.order.push_back(old),
                    _ => {
                        self.map.remove(&old);
                    }
                },
                None => break,
            }
        }
    }

    /// Drops an `InFlight` entry whose execution panicked: ingest is
    /// validate→build→commit, so a panicking ingest committed nothing
    /// and the retry must be allowed to execute for real.
    fn forget(&mut self, id: u64) {
        self.map.remove(&id);
    }
}

/// The executor side of one session's pending request: delivers the
/// response to the owning I/O thread's completion queue. Dropping an
/// unsent reply (executor pool died, job dropped with the queue at the
/// drain edge) delivers a typed `Unavailable` instead — a session that
/// got its job admitted is *answered*, never hung.
struct JobReply {
    io: Arc<IoShared>,
    session: u64,
    done: bool,
}

/// Executor-side timing of one job, delivered alongside its response so
/// the owning I/O thread can finish the request's [`QueryTrace`].
/// Best-effort under concurrency: the shard counts are deltas of global
/// engine counters read around this job's execution, so concurrent jobs
/// can bleed into each other's counts — fine for a trace, meaningless for
/// accounting (the exact totals live in the stats frame).
#[derive(Clone, Copy, Debug, Default)]
struct JobTiming {
    queue_ns: u64,
    execute_ns: u64,
    shards_scattered: u32,
    shards_skipped_box: u32,
    shards_skipped_synopsis: u32,
}

impl JobReply {
    fn deliver(&self, resp: Response, timing: JobTiming) {
        self.io
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((self.session, resp, timing));
        self.io.waker.wake();
    }

    fn send(mut self, resp: Response, timing: JobTiming) {
        self.done = true;
        self.deliver(resp, timing);
    }

    /// Disarms the drop-side `Unavailable` for a job that was *not*
    /// admitted (the session answers Busy/Unavailable itself).
    fn defuse(mut self) {
        self.done = true;
    }
}

impl Drop for JobReply {
    fn drop(&mut self) {
        if !self.done {
            self.deliver(unavailable(), JobTiming::default());
        }
    }
}

/// One admitted unit of work: the decoded request plus the reply handle
/// of the session waiting on it.
struct Job {
    req: Request,
    reply: JobReply,
    /// When the job entered the admission queue; the executor's dequeue
    /// minus this is the queue-wait stage.
    admitted_at: Instant,
}

/// One I/O thread's mailboxes, shared with the listener (fresh
/// connections) and the executors (finished jobs). The waker interrupts
/// the thread's `poll` whenever either queue gains an entry.
struct IoShared {
    intake: Mutex<Vec<(u64, TcpStream)>>,
    completions: Mutex<Vec<(u64, Response, JobTiming)>>,
    waker: Waker,
}

/// State shared by every server thread.
struct Shared {
    engine: RwLock<ShardedEngine>,
    counters: Counters,
    cfg: ServerConfig,
    /// The bound listener address (signal_shutdown pokes it to unblock
    /// accept).
    local_addr: std::net::SocketAddr,
    /// Once set, sessions stop admitting work (typed `Unavailable`).
    shutting_down: AtomicBool,
    /// Set after the executors drained: I/O threads flush, close
    /// everything, and exit.
    reap: AtomicBool,
    /// Wakes [`DdsServer::wait_shutdown`] when a remote shutdown arrives.
    shutdown_cv: (Mutex<bool>, Condvar),
    /// Admission queue sender.
    queue: SyncSender<Job>,
    /// One mailbox per I/O thread; the listener deals connections across
    /// them round-robin.
    ios: Vec<Arc<IoShared>>,
    /// Session read/write buffers, recycled across sessions.
    buffer_pool: BufferPool,
    /// Ingest retry tokens → fate (see [`DedupWindow`]).
    dedup: Mutex<DedupWindow>,
    /// Request-lifecycle stage histograms (lock-free atomics; recording
    /// on the hot path is an `Instant::now` pair and one relaxed add).
    stages: StageTimings,
    /// Bounded ring of slow-request traces (see
    /// [`ServerConfig::slow_query_threshold`]). Only touched *after* a
    /// response has fully left the socket — never on the answer path.
    slow_log: SlowQueryLog,
}

impl Shared {
    /// Recover from a poisoned engine lock: ingest is validate→build→
    /// commit, so state is consistent even if a build panicked mid-way.
    fn engine_read(&self) -> std::sync::RwLockReadGuard<'_, ShardedEngine> {
        self.engine.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn engine_write(&self) -> std::sync::RwLockWriteGuard<'_, ShardedEngine> {
        self.engine.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn build_opts(&self) -> BuildOptions {
        match self.cfg.query_threads {
            Some(t) => BuildOptions::with_threads(t),
            None => BuildOptions::default(),
        }
    }

    fn signal_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            // Unblock the listener's accept with a throwaway connection.
            // An unspecified bind address (0.0.0.0 / [::]) is not
            // self-connectable on every platform — poke via loopback.
            let mut poke = self.local_addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect(poke);
            let (lock, cv) = &self.shutdown_cv;
            *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cv.notify_all();
        }
    }

    fn stats(&self) -> ServerStats {
        let c = &self.counters;
        let engine = self.engine_read().stats_snapshot();
        ServerStats {
            requests: c.requests.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            batch_queries: c.batch_queries.load(Ordering::Relaxed),
            batch_exprs: c.batch_exprs.load(Ordering::Relaxed),
            admin_ops: c.admin_ops.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            unavailable_rejections: c.unavailable_rejections.load(Ordering::Relaxed),
            wire_errors: c.wire_errors.load(Ordering::Relaxed),
            jobs_admitted: c.jobs_admitted.load(Ordering::Relaxed),
            jobs_dequeued: c.jobs_dequeued.load(Ordering::Relaxed),
            jobs_completed: c.jobs_completed.load(Ordering::Relaxed),
            executor_panics: c.executor_panics.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_active: c.sessions_active.load(Ordering::Relaxed),
            sessions_throttled: c.sessions_throttled.load(Ordering::Relaxed),
            sessions_reaped: c.sessions_reaped.load(Ordering::Relaxed),
            retries_attempted: c.retries_attempted.load(Ordering::Relaxed),
            requests_deduped: c.requests_deduped.load(Ordering::Relaxed),
            buffers_reused: self.buffer_pool.reused(),
            cache_hits: engine.cache_hits,
            cache_misses: engine.cache_misses,
            index_queries: engine.index_queries,
            shards_routed_past: engine.shards_routed_past,
            shards_routed_by_synopsis: engine.shards_routed_by_synopsis,
            n_shards: engine.n_shards,
            n_datasets: engine.n_datasets,
            shard_splits: engine.splits,
            shard_merges: engine.merges,
        }
    }

    /// Assembles the [`Request::Metrics`] answer: snapshots of the
    /// server-side stage histograms, the engine's scatter-path
    /// histograms, and the retained slow-query traces.
    fn metrics_report(&self) -> MetricsReport {
        let engine = self.engine_read();
        let engine_t = engine.telemetry();
        MetricsReport {
            decode: self.stages.decode.snapshot(),
            queue: self.stages.queue.snapshot(),
            execute: self.stages.execute.snapshot(),
            write: self.stages.write.snapshot(),
            routing: engine_t.routing.snapshot(),
            scatter: engine_t.scatter.snapshot(),
            slow_queries: self.slow_log.recent(),
        }
    }
}

/// A running server: a [`ShardedEngine`] behind a TCP boundary.
///
/// Dropping the handle does **not** stop the server; call
/// [`shutdown`](Self::shutdown) (or send [`Request::Shutdown`] from a
/// client and then [`shutdown`](Self::shutdown) to reap the threads).
pub struct DdsServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    listener_thread: Option<JoinHandle<()>>,
    executor_threads: Vec<JoinHandle<()>>,
    io_threads: Vec<JoinHandle<()>>,
}

impl DdsServer {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// serving `engine`.
    pub fn serve(
        engine: ShardedEngine,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<DdsServer> {
        assert!(cfg.queue_depth >= 1, "admission queue needs depth >= 1");
        assert!(cfg.executors >= 1, "need at least one executor");
        assert!(cfg.io_threads >= 1, "need at least one I/O thread");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let mut reactors = Vec::with_capacity(cfg.io_threads);
        let mut ios = Vec::with_capacity(cfg.io_threads);
        for _ in 0..cfg.io_threads {
            let (reactor, waker) = Reactor::new()?;
            reactors.push(reactor);
            ios.push(Arc::new(IoShared {
                intake: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                waker,
            }));
        }
        let (queue_tx, queue_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        let slow_log = SlowQueryLog::new(
            u64::try_from(cfg.slow_query_threshold.as_nanos()).unwrap_or(u64::MAX),
            cfg.slow_log_capacity,
        );
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            counters: Counters::default(),
            cfg,
            local_addr,
            shutting_down: AtomicBool::new(false),
            reap: AtomicBool::new(false),
            shutdown_cv: (Mutex::new(false), Condvar::new()),
            queue: queue_tx,
            ios,
            buffer_pool: BufferPool::new(),
            dedup: Mutex::new(DedupWindow::default()),
            stages: StageTimings::new(),
            slow_log,
        });
        let queue_rx = Arc::new(Mutex::new(queue_rx));
        let executor_threads = (0..shared.cfg.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&queue_rx);
                std::thread::Builder::new()
                    .name(format!("dds-exec-{i}"))
                    .spawn(move || executor_loop(&shared, &rx))
                    .expect("spawn executor")
            })
            .collect();
        let io_threads = reactors
            .into_iter()
            .enumerate()
            .map(|(i, reactor)| {
                let shared = Arc::clone(&shared);
                let io = Arc::clone(&shared.ios[i]);
                std::thread::Builder::new()
                    .name(format!("dds-io-{i}"))
                    .spawn(move || io_loop(&shared, &io, reactor))
                    .expect("spawn io thread")
            })
            .collect();
        let listener_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dds-listener".into())
                .spawn(move || listener_loop(&shared, &listener))
                .expect("spawn listener")
        };
        Ok(DdsServer {
            shared,
            local_addr,
            listener_thread: Some(listener_thread),
            executor_threads,
            io_threads,
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// A stats snapshot, identical to what a client's stats call returns.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// A telemetry snapshot, identical to what a client's
    /// [`metrics`](crate::DdsClient::metrics) call returns.
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics_report()
    }

    /// Blocks until a shutdown has been signalled (remotely via
    /// [`Request::Shutdown`] or locally via [`shutdown`](Self::shutdown)
    /// from another thread).
    pub fn wait_shutdown(&self) {
        let (lock, cv) = &self.shared.shutdown_cv;
        let mut flagged = lock.lock().unwrap_or_else(PoisonError::into_inner);
        while !*flagged {
            flagged = cv.wait(flagged).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Graceful shutdown: gate admissions, drain the queue (executors
    /// finish and answer everything still queued before exiting; a
    /// request racing the gate edge gets a typed `Unavailable`, never
    /// silence), flush and close every session, reap every thread, and
    /// return the final stats. Idempotent with a remote shutdown —
    /// calling this after a client-initiated shutdown just performs the
    /// reaping half.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.signal_shutdown();
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        // Drain: executors poll the gate between jobs and exit only once
        // it is up AND the queue reads empty, so everything admitted
        // before (or racing into) the drain window is executed first.
        for t in self.executor_threads.drain(..) {
            let _ = t.join();
        }
        // Every response is in some completion queue by now (the last
        // executor's exit dropped the channel, which answered any job
        // racing the drain edge via JobReply::drop). Tell the I/O threads
        // to deliver what is pending, flush, and close up shop.
        self.shared.reap.store(true, Ordering::Release);
        for io in &self.shared.ios {
            io.waker.wake();
        }
        for t in self.io_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

/// Whether an `accept` error signals exhausted process/system resources
/// (worth a backoff) rather than a single failed connection (not worth
/// one). `EMFILE` (24), `ENFILE` (23) and `ENOBUFS` have no stable
/// [`io::ErrorKind`] mapping, so they are matched by number — the first
/// two are identical across Linux and the BSDs, `ENOBUFS` is not.
fn accept_error_is_resource_exhaustion(e: &io::Error) -> bool {
    const ENOBUFS: i32 = if cfg!(target_os = "linux") {
        105
    } else {
        55 // the BSDs / macOS
    };
    e.kind() == io::ErrorKind::OutOfMemory
        || matches!(e.raw_os_error(), Some(n) if n == 23 || n == 24 || n == ENOBUFS)
}

fn listener_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut next_id = 0u64;
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                // Resource exhaustion (EMFILE/ENFILE or out-of-memory) is
                // persistent: without a pause the listener would spin at
                // 100% CPU until an fd frees up. Per-connection failures
                // (e.g. ECONNABORTED, a peer resetting mid-handshake)
                // must NOT pay that pause, or cheap aborted connects
                // would throttle accepts for legitimate clients. The
                // shutdown gate is re-checked on the next iteration, so
                // the pause never delays shutdown by more than one tick.
                if accept_error_is_resource_exhaustion(&e) {
                    std::thread::sleep(Duration::from_millis(25));
                }
                continue;
            }
        };
        // The whole session layer is readiness-driven; a socket that
        // cannot go nonblocking cannot be served.
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = next_id;
        next_id += 1;
        shared
            .counters
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .sessions_active
            .fetch_add(1, Ordering::Relaxed);
        let io = &shared.ios[(id % shared.ios.len() as u64) as usize];
        io.intake
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((id, stream));
        io.waker.wake();
    }
}

/// A per-session token bucket ([`RateLimit`] instantiated). Refill
/// happens lazily on take, capped at the burst; fractional tokens
/// accumulate so low rates still make steady progress.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
    burst: f64,
    per_sec: f64,
}

impl TokenBucket {
    fn new(rl: &RateLimit) -> TokenBucket {
        TokenBucket {
            tokens: rl.burst as f64,
            last: Instant::now(),
            burst: rl.burst as f64,
            per_sec: rl.per_sec as f64,
        }
    }

    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Where a session currently is in its request/response cycle. `Copy` on
/// purpose: the fields are a couple of words, and the drive loop reads
/// the state by value before mutating the session.
#[derive(Clone, Copy, Debug)]
enum SessionState {
    /// Accumulating the 4-byte length prefix.
    ReadPrefix { filled: usize },
    /// Accumulating the frame body (`read_buf`, already sized).
    ReadBody { filled: usize },
    /// A job is with the executors; the session is not polled at all
    /// until its completion arrives (one request in flight per session).
    Awaiting,
    /// Flushing `write_buf`; back to `ReadPrefix` when done, unless the
    /// response closes the session (shutdown ack, header-level protocol
    /// violations).
    Write { written: usize, close_after: bool },
}

/// Stage timings of the request currently in flight on a session,
/// accumulated as the request moves through the state machine and
/// finished into a [`QueryTrace`] once its response fully leaves the
/// socket. All-scalar and `Copy`: carrying it costs nothing on the
/// zero-alloc hot path.
#[derive(Clone, Copy, Debug, Default)]
struct PendingTrace {
    opcode: u8,
    bytes_in: u64,
    decode_ns: u64,
    timing: JobTiming,
}

/// One client connection owned by an I/O thread.
struct Session {
    id: u64,
    stream: TcpStream,
    state: SessionState,
    prefix: [u8; 4],
    /// Frame body: version at `[0]`, opcode at `[1]`, payload after.
    read_buf: Vec<u8>,
    /// The encoded response frame being flushed.
    write_buf: Vec<u8>,
    bucket: Option<TokenBucket>,
    /// Last instant this session moved a byte (or changed state). The
    /// stall sweep reaps sessions stuck mid-frame or mid-flush past
    /// `ServerConfig::stall_timeout`; idle-between-frames and
    /// awaiting-an-executor don't count as stalled.
    last_progress: Instant,
    /// Telemetry of the request currently being served (one in flight
    /// per session, so one slot suffices).
    pending: PendingTrace,
    /// When the current response's encode+write stage began
    /// (`respond_enqueue` stamps it).
    write_started: Instant,
}

/// What [`drive_session`] decided about the session's future.
enum Drive {
    Keep,
    Close,
}

fn io_loop(shared: &Arc<Shared>, io: &Arc<IoShared>, mut reactor: Reactor) {
    let mut sessions: Vec<Session> = Vec::new();
    // Scratch, all reused across iterations (the steady-state loop
    // allocates nothing).
    let mut intake: Vec<(u64, TcpStream)> = Vec::new();
    let mut completions: Vec<(u64, Response, JobTiming)> = Vec::new();
    let mut sources: Vec<(RawFd, Interest)> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    let mut ready: Vec<Ready> = Vec::new();
    let mut closed: Vec<usize> = Vec::new();
    loop {
        // Adopt fresh connections from the listener.
        {
            let mut q = io.intake.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::swap(&mut *q, &mut intake);
        }
        for (id, stream) in intake.drain(..) {
            sessions.push(Session {
                id,
                stream,
                state: SessionState::ReadPrefix { filled: 0 },
                prefix: [0; 4],
                read_buf: shared.buffer_pool.acquire(1),
                write_buf: shared.buffer_pool.acquire(1),
                bucket: shared.cfg.rate_limit.as_ref().map(TokenBucket::new),
                last_progress: Instant::now(),
                pending: PendingTrace::default(),
                write_started: Instant::now(),
            });
        }
        // Deliver executor completions: encode into the session's write
        // buffer; the flush happens when poll reports the socket
        // writable (usually the very next iteration, without waiting).
        {
            let mut q = io
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::swap(&mut *q, &mut completions);
        }
        for (sid, resp, timing) in completions.drain(..) {
            // A session that died while awaiting is simply gone; its
            // response has nowhere to go, which is the correct outcome.
            if let Some(s) = sessions.iter_mut().find(|s| s.id == sid) {
                s.pending.timing = timing;
                respond_enqueue(shared, s, &resp, false);
            }
        }
        // Reap (set only after the executors drained and exited, so the
        // completion sweep above was the final one): flush what is
        // pending and close every session.
        if shared.reap.load(Ordering::Acquire) {
            for mut s in sessions.drain(..) {
                flush_blocking(shared, &mut s);
                release_session(shared, s);
            }
            return;
        }
        // Poll whoever has I/O to make progress on. Awaiting sessions
        // are not submitted: nothing they could do, and a client
        // pipelining its next request must not burn a wakeup per tick.
        sources.clear();
        owners.clear();
        for (i, s) in sessions.iter().enumerate() {
            let interest = match s.state {
                SessionState::ReadPrefix { .. } | SessionState::ReadBody { .. } => Interest::Read,
                SessionState::Write { .. } => Interest::Write,
                SessionState::Awaiting => continue,
            };
            sources.push((s.stream.as_raw_fd(), interest));
            owners.push(i);
        }
        if reactor.poll(&sources, 250, &mut ready).is_err() {
            // Transient poll failures (low memory) should not kill the
            // thread and its sessions; back off a beat and retry.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        closed.clear();
        for r in &ready {
            let i = owners[r.token];
            if let Drive::Close = drive_session(shared, io, &mut sessions[i]) {
                closed.push(i);
            }
        }
        // Stall sweep: a peer stuck **mid-I/O** — inside a frame it never
        // finishes sending (a torn client write looks exactly like this),
        // or refusing to drain its response — is reaped past the
        // deadline, so a half-dead connection can't pin a session slot
        // (or wedge a flush) forever. The poll timeout above bounds how
        // late the sweep can run. Sessions idle *between* frames or
        // awaiting an executor are never stall-reaped: idle connections
        // stay cheap, and a long job is the executor's business.
        let now = Instant::now();
        for (i, s) in sessions.iter().enumerate() {
            let mid_io = match s.state {
                SessionState::ReadPrefix { filled } => filled > 0,
                SessionState::ReadBody { .. } | SessionState::Write { .. } => true,
                SessionState::Awaiting => false,
            };
            if mid_io
                && now.duration_since(s.last_progress) >= shared.cfg.stall_timeout
                && !closed.contains(&i)
            {
                shared
                    .counters
                    .sessions_reaped
                    .fetch_add(1, Ordering::Relaxed);
                closed.push(i);
            }
        }
        // Largest index first: swap_remove must not disturb the smaller
        // indexes still queued for removal.
        closed.sort_unstable_by(|a, b| b.cmp(a));
        for &i in &closed {
            release_session(shared, sessions.swap_remove(i));
        }
    }
}

/// Runs a ready session's state machine until it blocks, parks on the
/// executor pool, or ends. Level-triggered polling means a partial step
/// is always resumed on a later tick, but the loop still drains
/// greedily: a pipelined burst is served in one wakeup.
fn drive_session(shared: &Arc<Shared>, io: &Arc<IoShared>, s: &mut Session) -> Drive {
    loop {
        match s.state {
            SessionState::ReadPrefix { filled } => {
                match s.stream.read(&mut s.prefix[filled..]) {
                    // EOF here is a clean close between frames (or a
                    // disconnect inside the prefix — either way there is
                    // nothing to answer and nothing to count: only
                    // header- and payload-level violations are wire
                    // errors).
                    Ok(0) => return Drive::Close,
                    Ok(n) => {
                        s.last_progress = Instant::now();
                        let filled = filled + n;
                        if filled < s.prefix.len() {
                            s.state = SessionState::ReadPrefix { filled };
                            continue;
                        }
                        let len = u32::from_le_bytes(s.prefix);
                        if len < FRAME_HEADER_LEN {
                            // Header-level violation: the stream position
                            // cannot be trusted any more. Answer the
                            // typed error, then close.
                            shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                            let e = WireError::FrameTooShort { len };
                            respond_enqueue(shared, s, &protocol_error(&e), true);
                        } else if len > shared.cfg.max_frame_len {
                            shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                            let e = WireError::FrameTooLarge {
                                len,
                                max: shared.cfg.max_frame_len,
                            };
                            respond_enqueue(shared, s, &protocol_error(&e), true);
                        } else {
                            s.read_buf.clear();
                            s.read_buf.resize(len as usize, 0);
                            s.state = SessionState::ReadBody { filled: 0 };
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Drive::Keep,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Drive::Close,
                }
            }
            SessionState::ReadBody { filled } => {
                match s.stream.read(&mut s.read_buf[filled..]) {
                    // A disconnect inside a frame: the session just ends —
                    // nothing to answer, nothing leaks.
                    Ok(0) => return Drive::Close,
                    Ok(n) => {
                        s.last_progress = Instant::now();
                        let filled = filled + n;
                        if filled < s.read_buf.len() {
                            s.state = SessionState::ReadBody { filled };
                        } else {
                            process_frame(shared, io, s);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Drive::Keep,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Drive::Close,
                }
            }
            // Not submitted to poll while awaiting; nothing to drive.
            SessionState::Awaiting => return Drive::Keep,
            SessionState::Write {
                written,
                close_after,
            } => match s.stream.write(&s.write_buf[written..]) {
                Ok(0) => return Drive::Close,
                Ok(n) => {
                    s.last_progress = Instant::now();
                    let written = written + n;
                    if written < s.write_buf.len() {
                        s.state = SessionState::Write {
                            written,
                            close_after,
                        };
                    } else {
                        shared
                            .counters
                            .bytes_out
                            .fetch_add(s.write_buf.len() as u64, Ordering::Relaxed);
                        finish_response(shared, s);
                        if close_after {
                            return Drive::Close;
                        }
                        s.state = SessionState::ReadPrefix { filled: 0 };
                    }
                }
                // Would-block is the only "try again later" signal: the
                // flush resumes on the next writable tick.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Drive::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A dead reader (reset, broken pipe) cannot wedge a
                // flush: the session is dropped the moment the fault
                // surfaces rather than spinning on a doomed socket.
                Err(e) if crate::wire::is_disconnect_kind(e.kind()) => return Drive::Close,
                Err(_) => return Drive::Close,
            },
        }
    }
}

/// Handles one complete frame sitting in `s.read_buf` (version at `[0]`,
/// opcode at `[1]`): answers control ops in place, admits work, and sets
/// the session's next state.
fn process_frame(shared: &Arc<Shared>, io: &Arc<IoShared>, s: &mut Session) {
    shared
        .counters
        .bytes_in
        .fetch_add(4 + s.read_buf.len() as u64, Ordering::Relaxed);
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    // Telemetry slot for this request (one in flight per session): the
    // stage nanos accumulate here until the response fully leaves the
    // socket, where `finish_response` turns them into a trace.
    s.pending = PendingTrace {
        opcode: s.read_buf[1],
        bytes_in: 4 + s.read_buf.len() as u64,
        ..PendingTrace::default()
    };
    let version = s.read_buf[0];
    if version != PROTOCOL_VERSION {
        shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
        let e = WireError::UnsupportedVersion { got: version };
        respond_enqueue(shared, s, &protocol_error(&e), true);
        return;
    }
    let decode_started = Instant::now();
    let decoded = Request::decode(s.read_buf[1], &s.read_buf[2..]);
    s.pending.decode_ns = elapsed_ns(decode_started);
    shared.stages.decode.record(s.pending.decode_ns);
    let req = match decoded {
        Ok(r) => r,
        // Payload-level violation: the frame boundary was intact, so the
        // session can keep serving after the typed error.
        Err(e) => {
            shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            respond_enqueue(shared, s, &protocol_error(&e), false);
            return;
        }
    };
    match req {
        // Control ops are answered in place: they are cheap reads and
        // must work even while the queue is saturated or the session is
        // throttled.
        Request::Stats => respond_enqueue(shared, s, &Response::Stats(shared.stats()), false),
        Request::Metrics => respond_enqueue(
            shared,
            s,
            &Response::Metrics(shared.metrics_report()),
            false,
        ),
        Request::Ping { token } => respond_enqueue(shared, s, &Response::Pong { token }, false),
        Request::Shutdown => {
            respond_enqueue(shared, s, &Response::Done, true);
            shared.signal_shutdown();
        }
        work => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                shared
                    .counters
                    .unavailable_rejections
                    .fetch_add(1, Ordering::Relaxed);
                respond_enqueue(shared, s, &unavailable(), false);
                return;
            }
            if let Some(bucket) = &mut s.bucket {
                if !bucket.try_take() {
                    shared
                        .counters
                        .sessions_throttled
                        .fetch_add(1, Ordering::Relaxed);
                    respond_enqueue(shared, s, &throttled(), false);
                    return;
                }
            }
            let reply = JobReply {
                io: Arc::clone(io),
                session: s.id,
                done: false,
            };
            match shared.queue.try_send(Job {
                req: work,
                reply,
                admitted_at: Instant::now(),
            }) {
                Ok(()) => {
                    shared
                        .counters
                        .jobs_admitted
                        .fetch_add(1, Ordering::Relaxed);
                    s.state = SessionState::Awaiting;
                }
                Err(TrySendError::Full(job)) => {
                    job.reply.defuse();
                    shared
                        .counters
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    respond_enqueue(shared, s, &Response::Busy, false);
                }
                Err(TrySendError::Disconnected(job)) => {
                    job.reply.defuse();
                    respond_enqueue(shared, s, &unavailable(), false);
                }
            }
        }
    }
}

/// Encodes `resp` into the session's write buffer and parks the session
/// in `Write` state; the drive loop flushes it as the socket allows.
///
/// A response that exceeds `cfg.max_frame_len` (e.g. Hits over a catalog
/// with millions of matching ids) fails the *local* encode bound before
/// anything touches the wire, so the stream is still in sync — the
/// session answers with a small typed `internal` error instead of
/// silently closing (which the client would see as a bare
/// `UnexpectedEof`, indistinguishable from a crashed server).
fn respond_enqueue(shared: &Shared, s: &mut Session, resp: &Response, close_after: bool) {
    // The write stage covers encode + flush: it starts here, before the
    // response is serialized, and ends when the last byte leaves.
    s.write_started = Instant::now();
    let bound = shared.cfg.max_frame_len;
    if encode_frame_into(&mut s.write_buf, PROTOCOL_VERSION, bound, |w| {
        resp.encode_to(w)
    })
    .is_err()
    {
        let fallback = Response::Error(ServerError::new(
            ServerErrorKind::Internal,
            "response exceeds the frame bound",
        ));
        encode_frame_into(&mut s.write_buf, PROTOCOL_VERSION, bound, |w| {
            fallback.encode_to(w)
        })
        .expect("the fallback error frame fits any sane bound");
    }
    s.state = SessionState::Write {
        written: 0,
        close_after,
    };
    // A fresh response restarts the stall clock — the peer gets the full
    // deadline to start draining it.
    s.last_progress = Instant::now();
}

/// Best-effort synchronous flush at reap time: the socket goes back to
/// blocking with a short write timeout, so a graceful shutdown delivers
/// every pending response without letting one dead peer stall teardown.
fn flush_blocking(shared: &Shared, s: &mut Session) {
    if let SessionState::Write { written, .. } = s.state {
        let _ = s.stream.set_nonblocking(false);
        let _ = s.stream.set_write_timeout(Some(Duration::from_secs(2)));
        if s.stream.write_all(&s.write_buf[written..]).is_ok() {
            shared
                .counters
                .bytes_out
                .fetch_add(s.write_buf.len() as u64, Ordering::Relaxed);
            finish_response(shared, s);
        }
    }
}

/// Nanoseconds elapsed since `from`, saturating at `u64::MAX`.
fn elapsed_ns(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Closes out one request's telemetry after its response completely left
/// the socket: records the write stage and offers the assembled
/// [`QueryTrace`] to the slow-query log. Pure atomics (and, past the
/// threshold, one short mutex on the trace ring) strictly after the
/// answer bytes are gone — this can never affect an answer.
fn finish_response(shared: &Shared, s: &mut Session) {
    let write_ns = elapsed_ns(s.write_started);
    shared.stages.write.record(write_ns);
    let p = s.pending;
    let total_ns = p
        .decode_ns
        .saturating_add(p.timing.queue_ns)
        .saturating_add(p.timing.execute_ns)
        .saturating_add(write_ns);
    shared.slow_log.offer(QueryTrace {
        seq: 0, // assigned by the log
        opcode: p.opcode,
        decode_ns: p.decode_ns,
        queue_ns: p.timing.queue_ns,
        execute_ns: p.timing.execute_ns,
        write_ns,
        total_ns,
        shards_scattered: p.timing.shards_scattered,
        shards_skipped_box: p.timing.shards_skipped_box,
        shards_skipped_synopsis: p.timing.shards_skipped_synopsis,
        bytes_in: p.bytes_in,
        bytes_out: s.write_buf.len() as u64,
    });
}

/// Closes a session: its buffers go home to the pool (capacity and all —
/// this is what makes a reconnect storm allocation-free once warm), the
/// socket drops, the active gauge falls.
fn release_session(shared: &Shared, s: Session) {
    let Session {
        read_buf,
        write_buf,
        ..
    } = s;
    shared.buffer_pool.release(read_buf);
    shared.buffer_pool.release(write_buf);
    shared
        .counters
        .sessions_active
        .fetch_sub(1, Ordering::Relaxed);
}

fn protocol_error(e: &WireError) -> Response {
    Response::Error(ServerError::new(ServerErrorKind::Protocol, e.to_string()))
}

fn unavailable() -> Response {
    Response::Error(ServerError::new(
        ServerErrorKind::Unavailable,
        "server is shutting down",
    ))
}

fn throttled() -> Response {
    Response::Error(ServerError::new(
        ServerErrorKind::Throttled,
        "session rate limit exceeded; retry later",
    ))
}

fn executor_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    use std::sync::mpsc::RecvTimeoutError;
    loop {
        // Hold the receiver lock only while waiting; executors take turns
        // pulling jobs (an arriving job wakes the lock holder at once —
        // the timeout only bounds how stale the shutdown-gate check can
        // get, it adds no delivery latency).
        let job = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(Duration::from_millis(25))
        };
        match job {
            Ok(job) => run_job(shared, job),
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // Drain-then-exit: the gate is up, so no session will
                    // admit more work after what is already queued; run
                    // the leftovers so their sessions get real answers.
                    // (A try_send racing past the drained-empty read gets
                    // its job dropped with the channel, which JobReply
                    // turns into a typed Unavailable — answered, never
                    // hung.)
                    loop {
                        let job = {
                            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
                            rx.try_recv()
                        };
                        match job {
                            Ok(job) => run_job(shared, job),
                            Err(_) => break,
                        }
                    }
                    break;
                }
            }
        }
    }
}

/// Executes one admitted job and answers its session.
///
/// Execution is panic-isolated: the decoder rejects everything *known* to
/// panic the engine, but a build can still panic on pathological
/// parameters, and an unwinding executor thread must not die (after
/// `cfg.executors` such deaths the queue receiver would drop and every
/// later request would be answered `unavailable` by a silently-degraded
/// server). A panic is caught here, answered as a typed `internal` error,
/// and the executor keeps draining. The engine locks recover from the
/// resulting poison (see [`Shared::engine_read`]): ingest is
/// validate→build→commit, so engine state stays consistent.
fn run_job(
    shared: &Arc<Shared>,
    Job {
        req,
        reply,
        admitted_at,
    }: Job,
) {
    let queue_ns = elapsed_ns(admitted_at);
    shared.stages.queue.record(queue_ns);
    shared
        .counters
        .jobs_dequeued
        .fetch_add(1, Ordering::Relaxed);
    // Dedup-capable ingests check the retry window first: a token the
    // server has already answered replays the recorded response without
    // touching the engine — the retried AddShard that must not
    // double-ingest. A token still in flight gets a transient
    // `unavailable` (back off and re-ask) rather than a second
    // execution or an executor blocked on another executor's job.
    let dedup_id = req.dedup_id();
    if let Some(id) = dedup_id {
        let mut window = shared.dedup.lock().unwrap_or_else(PoisonError::into_inner);
        match window.map.get(&id) {
            Some(DedupEntry::Done(resp)) => {
                let resp = (**resp).clone();
                drop(window);
                shared
                    .counters
                    .retries_attempted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .requests_deduped
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .jobs_completed
                    .fetch_add(1, Ordering::Relaxed);
                reply.send(
                    resp,
                    JobTiming {
                        queue_ns,
                        ..JobTiming::default()
                    },
                );
                return;
            }
            Some(DedupEntry::InFlight) => {
                drop(window);
                shared
                    .counters
                    .retries_attempted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .jobs_completed
                    .fetch_add(1, Ordering::Relaxed);
                reply.send(
                    Response::Error(ServerError::new(
                        ServerErrorKind::Unavailable,
                        "request id is still in flight; retry",
                    )),
                    JobTiming {
                        queue_ns,
                        ..JobTiming::default()
                    },
                );
                return;
            }
            None => window.insert(id, DedupEntry::InFlight),
        }
    }
    let (scatter0, box0, synopsis0) = scatter_counters(shared);
    let execute_started = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(shared, req)));
    let execute_ns = elapsed_ns(execute_started);
    shared.stages.execute.record(execute_ns);
    let (scatter1, box1, synopsis1) = scatter_counters(shared);
    let timing = JobTiming {
        queue_ns,
        execute_ns,
        shards_scattered: counter_delta(scatter0, scatter1),
        shards_skipped_box: counter_delta(box0, box1),
        shards_skipped_synopsis: counter_delta(synopsis0, synopsis1),
    };
    let resp = match outcome {
        Ok(resp) => {
            if let Some(id) = dedup_id {
                // Any produced answer — success or typed rejection — is
                // recorded: both are deterministic fates a duplicate
                // must observe consistently.
                shared
                    .dedup
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(id, DedupEntry::Done(Box::new(resp.clone())));
            }
            resp
        }
        Err(_) => {
            shared
                .counters
                .executor_panics
                .fetch_add(1, Ordering::Relaxed);
            if let Some(id) = dedup_id {
                // Ingest is validate→build→commit: a panicking ingest
                // committed nothing, so the retry must execute for real.
                shared
                    .dedup
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .forget(id);
            }
            // The panic text is NOT echoed to the (untrusted) client:
            // engine assertion messages can embed internal state, and a
            // client probing for panics must not get free introspection.
            // The default panic hook has already written the message and
            // backtrace to the server's stderr.
            Response::Error(ServerError::new(
                ServerErrorKind::Internal,
                "request execution panicked (details in the server log)",
            ))
        }
    };
    shared
        .counters
        .jobs_completed
        .fetch_add(1, Ordering::Relaxed);
    reply.send(resp, timing);
}

/// Snapshot of the engine's scatter-path counters (units evaluated,
/// skipped by box, skipped by synopsis) for best-effort per-job deltas.
fn scatter_counters(shared: &Shared) -> (u64, u64, u64) {
    let engine = shared.engine_read();
    (
        engine.telemetry().scatter.count(),
        engine.shards_routed_past(),
        engine.shards_routed_by_synopsis(),
    )
}

fn counter_delta(before: u64, after: u64) -> u32 {
    u32::try_from(after.saturating_sub(before)).unwrap_or(u32::MAX)
}

/// Runs one admitted job against the engine.
fn execute(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Query(expr) => {
            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            let engine = shared.engine_read();
            // A dimension mismatch can never succeed against the served
            // schema, so clients must not treat it as a retry-later
            // signal: it maps to the permanent `invalid-query` kind.
            if let Err(e) = engine.schema_check(std::slice::from_ref(&expr)) {
                return Response::Error(ServerError::new(
                    ServerErrorKind::InvalidQuery,
                    e.to_string(),
                ));
            }
            let mut results =
                engine.query_batch_opts(std::slice::from_ref(&expr), &shared.build_opts());
            Response::Hits(results.pop().expect("one result per expression"))
        }
        Request::QueryBatch(exprs) => {
            shared
                .counters
                .batch_queries
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .batch_exprs
                .fetch_add(exprs.len() as u64, Ordering::Relaxed);
            let engine = shared.engine_read();
            if let Err(e) = engine.schema_check(&exprs) {
                return Response::Error(ServerError::new(
                    ServerErrorKind::InvalidQuery,
                    e.to_string(),
                ));
            }
            Response::BatchHits(engine.query_batch_opts(&exprs, &shared.build_opts()))
        }
        Request::AddShard {
            request_id: _,
            datasets,
            global_ids,
        } => {
            shared.counters.admin_ops.fetch_add(1, Ordering::Relaxed);
            let repo = Repository::new(datasets);
            let mut engine = shared.engine_write();
            match engine.try_add_shard_opts(&repo, &global_ids, &shared.build_opts()) {
                Ok(shard) => Response::ShardAdded {
                    shard: shard as u32,
                },
                Err(e) => Response::Error(ServerError::new(ServerErrorKind::Ingest, e.to_string())),
            }
        }
        Request::RebuildShard {
            shard,
            request_id: _,
            datasets,
            global_ids,
        } => {
            shared.counters.admin_ops.fetch_add(1, Ordering::Relaxed);
            let repo = Repository::new(datasets);
            let mut engine = shared.engine_write();
            match engine.try_rebuild_shard_opts(
                shard as usize,
                &repo,
                &global_ids,
                &shared.build_opts(),
            ) {
                Ok(()) => Response::Done,
                Err(e) => Response::Error(ServerError::new(ServerErrorKind::Ingest, e.to_string())),
            }
        }
        // Lifecycle admin ops carry no data — they reference shards and
        // ids the server already holds, so a rejection means the request
        // named state that doesn't match the served catalog: permanent,
        // like a schema mismatch, hence the `invalid-query` kind (not
        // `ingest`, which is for ops shipping data).
        Request::SplitShard { shard, move_ids } => {
            shared.counters.admin_ops.fetch_add(1, Ordering::Relaxed);
            let mut engine = shared.engine_write();
            match engine.try_split_shard_opts(shard as usize, &move_ids, &shared.build_opts()) {
                Ok(new_shard) => Response::ShardAdded {
                    shard: new_shard as u32,
                },
                Err(e) => Response::Error(ServerError::new(
                    ServerErrorKind::InvalidQuery,
                    e.to_string(),
                )),
            }
        }
        Request::MergeShards { a, b } => {
            shared.counters.admin_ops.fetch_add(1, Ordering::Relaxed);
            let mut engine = shared.engine_write();
            match engine.try_merge_shards_opts(a as usize, b as usize, &shared.build_opts()) {
                Ok(survivor) => Response::ShardAdded {
                    shard: survivor as u32,
                },
                Err(e) => Response::Error(ServerError::new(
                    ServerErrorKind::InvalidQuery,
                    e.to_string(),
                )),
            }
        }
        Request::Sleep { ms } => {
            if !shared.cfg.allow_sleep {
                return Response::Error(ServerError::new(
                    ServerErrorKind::Protocol,
                    "sleep is disabled on this server (ServerConfig::allow_sleep)",
                ));
            }
            if ms == PANIC_DRILL_MS {
                // The documented panic drill: proves end to end that a
                // panicking job is answered typed and the executor
                // survives. Gated behind the same opt-in as Sleep itself.
                panic!("panic drill (Sleep with ms = u32::MAX)");
            }
            std::thread::sleep(Duration::from_millis(ms.min(MAX_SLEEP_MS) as u64));
            Response::Done
        }
        // Control ops never reach the queue.
        Request::Stats | Request::Metrics | Request::Ping { .. } | Request::Shutdown => {
            Response::Error(ServerError::new(
                ServerErrorKind::Protocol,
                "control op on the work queue",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done() -> DedupEntry {
        DedupEntry::Done(Box::new(Response::Done))
    }

    /// FIFO eviction must never age out an `InFlight` entry: a slow
    /// ingest overtaken by > CAP fresh ids would otherwise lose its
    /// marker, and a duplicate arriving afterwards would re-execute
    /// concurrently with the original — the double-ingest the window
    /// exists to prevent.
    #[test]
    fn eviction_skips_in_flight_entries() {
        let mut w = DedupWindow::default();
        w.insert(1, DedupEntry::InFlight);
        for id in 2..(2 + 2 * DEDUP_WINDOW_CAP as u64) {
            w.insert(id, done());
        }
        assert!(
            matches!(w.map.get(&1), Some(DedupEntry::InFlight)),
            "the in-flight marker survived {} insertions",
            2 * DEDUP_WINDOW_CAP
        );
        assert!(w.map.len() <= DEDUP_WINDOW_CAP);
        assert_eq!(w.order.len(), w.map.len());
        // Once finished it becomes ordinary and ages out like any other.
        w.insert(1, done());
        for id in 100_000..(100_000 + DEDUP_WINDOW_CAP as u64) {
            w.insert(id, done());
        }
        assert!(!w.map.contains_key(&1), "a Done entry ages out normally");
        assert!(w.map.len() <= DEDUP_WINDOW_CAP);
    }

    /// The rotation budget keeps a (theoretical) window full of
    /// `InFlight` ids from spinning the eviction scan forever — it
    /// degrades to exceeding the cap instead.
    #[test]
    fn all_in_flight_window_exceeds_cap_without_spinning() {
        let mut w = DedupWindow::default();
        for id in 1..(2 + DEDUP_WINDOW_CAP as u64) {
            w.insert(id, DedupEntry::InFlight);
        }
        assert_eq!(w.map.len(), DEDUP_WINDOW_CAP + 1);
        assert!(w.map.values().all(|e| matches!(e, DedupEntry::InFlight)));
    }
}
