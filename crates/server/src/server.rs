//! The serving loop: sessions, bounded admission, executors, shutdown.
//!
//! Thread anatomy (all `std::thread`, no async runtime):
//!
//! * one **listener** accepts connections and spawns a session thread per
//!   client;
//! * each **session** reads frames, answers the cheap control ops
//!   (stats/ping/shutdown) in place, and pushes real work — queries,
//!   batches, ingests — into the **bounded admission queue**
//!   (`mpsc::sync_channel(queue_depth)`). A full queue answers
//!   [`Response::Busy`] immediately: the server never buffers more than
//!   `queue_depth` requests, which is the whole backpressure story;
//! * a fixed pool of **executors** drains the queue and runs jobs against
//!   the shared [`ShardedEngine`] — queries under a read lock (the
//!   engine's `&self` paths fan out over `dds_pool` internally via
//!   `query_batch`), ingests under a write lock through the non-panicking
//!   `try_*` paths.
//!
//! Graceful shutdown (remote [`Request::Shutdown`] or local
//! [`DdsServer::shutdown`]) flips the admission gate — late requests get a
//! typed `Unavailable` error — then **drains**: executors exit only once
//! the gate is up *and* the queue reads empty, so everything admitted is
//! executed and answered first (a request racing the gate edge is
//! answered with a typed `Unavailable` when the queue drops — answered,
//! never hung); idle sessions are unblocked by shutting their sockets
//! down last.

use crate::protocol::{
    Request, Response, ServerError, ServerErrorKind, ServerStats, MAX_SLEEP_MS, PANIC_DRILL_MS,
};
use crate::wire::{
    read_frame, write_frame, FrameReadError, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use dds_core::framework::{LogicalExpr, MeasureFunction, Repository};
use dds_core::pool::BuildOptions;
use dds_core::shard::ShardedEngine;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission-queue depth: at most this many requests wait for an
    /// executor; the next one is answered [`Response::Busy`].
    pub queue_depth: usize,
    /// Executor threads draining the queue.
    pub executors: usize,
    /// Worker threads each executed query fans out over
    /// (`ShardedEngine::query_batch_opts`); `None` uses the engine
    /// default (`DDS_THREADS` / all cores). Builds triggered by ingest use
    /// the same setting.
    pub query_threads: Option<usize>,
    /// Upper bound on a frame body, both directions.
    pub max_frame_len: u32,
    /// Whether [`Request::Sleep`] is honoured. Off by default: it exists
    /// for backpressure drills in tests, and a production server must not
    /// hand unauthenticated clients a free executor-occupancy primitive.
    pub allow_sleep: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            executors: 2,
            query_threads: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            allow_sleep: false,
        }
    }
}

/// Internal counter block (the mutable half of [`ServerStats`]).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    batch_exprs: AtomicU64,
    admin_ops: AtomicU64,
    busy_rejections: AtomicU64,
    unavailable_rejections: AtomicU64,
    wire_errors: AtomicU64,
    jobs_admitted: AtomicU64,
    jobs_dequeued: AtomicU64,
    jobs_completed: AtomicU64,
    executor_panics: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_active: AtomicU64,
}

/// One admitted unit of work: the decoded request plus the channel its
/// session is waiting on.
struct Job {
    req: Request,
    reply: SyncSender<Response>,
}

/// State shared by every server thread.
struct Shared {
    engine: RwLock<ShardedEngine>,
    counters: Counters,
    cfg: ServerConfig,
    /// The bound listener address (signal_shutdown pokes it to unblock
    /// accept).
    local_addr: std::net::SocketAddr,
    /// Once set, sessions stop admitting work (typed `Unavailable`).
    shutting_down: AtomicBool,
    /// Wakes [`DdsServer::wait_shutdown`] when a remote shutdown arrives.
    shutdown_cv: (Mutex<bool>, Condvar),
    /// Live session sockets, for unblocking reads at teardown.
    sessions: Mutex<HashMap<u64, TcpStream>>,
    /// Admission queue sender; sessions clone it per job attempt.
    queue: SyncSender<Job>,
}

impl Shared {
    /// Recover from a poisoned engine lock: ingest is validate→build→
    /// commit, so state is consistent even if a build panicked mid-way.
    fn engine_read(&self) -> std::sync::RwLockReadGuard<'_, ShardedEngine> {
        self.engine.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn engine_write(&self) -> std::sync::RwLockWriteGuard<'_, ShardedEngine> {
        self.engine.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn build_opts(&self) -> BuildOptions {
        match self.cfg.query_threads {
            Some(t) => BuildOptions::with_threads(t),
            None => BuildOptions::default(),
        }
    }

    fn signal_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            // Unblock the listener's accept with a throwaway connection.
            // An unspecified bind address (0.0.0.0 / [::]) is not
            // self-connectable on every platform — poke via loopback.
            let mut poke = self.local_addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect(poke);
            let (lock, cv) = &self.shutdown_cv;
            *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cv.notify_all();
        }
    }

    fn stats(&self) -> ServerStats {
        let c = &self.counters;
        let engine = self.engine_read().stats_snapshot();
        ServerStats {
            requests: c.requests.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            batch_queries: c.batch_queries.load(Ordering::Relaxed),
            batch_exprs: c.batch_exprs.load(Ordering::Relaxed),
            admin_ops: c.admin_ops.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            unavailable_rejections: c.unavailable_rejections.load(Ordering::Relaxed),
            wire_errors: c.wire_errors.load(Ordering::Relaxed),
            jobs_admitted: c.jobs_admitted.load(Ordering::Relaxed),
            jobs_dequeued: c.jobs_dequeued.load(Ordering::Relaxed),
            jobs_completed: c.jobs_completed.load(Ordering::Relaxed),
            executor_panics: c.executor_panics.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_active: c.sessions_active.load(Ordering::Relaxed),
            cache_hits: engine.cache_hits,
            cache_misses: engine.cache_misses,
            index_queries: engine.index_queries,
            shards_routed_past: engine.shards_routed_past,
            n_shards: engine.n_shards,
            n_datasets: engine.n_datasets,
        }
    }
}

/// A running server: a [`ShardedEngine`] behind a TCP boundary.
///
/// Dropping the handle does **not** stop the server; call
/// [`shutdown`](Self::shutdown) (or send [`Request::Shutdown`] from a
/// client and then [`shutdown`](Self::shutdown) to reap the threads).
pub struct DdsServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    listener_thread: Option<JoinHandle<()>>,
    executor_threads: Vec<JoinHandle<()>>,
    session_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DdsServer {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// serving `engine`.
    pub fn serve(
        engine: ShardedEngine,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<DdsServer> {
        assert!(cfg.queue_depth >= 1, "admission queue needs depth >= 1");
        assert!(cfg.executors >= 1, "need at least one executor");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (queue_tx, queue_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            counters: Counters::default(),
            cfg,
            local_addr,
            shutting_down: AtomicBool::new(false),
            shutdown_cv: (Mutex::new(false), Condvar::new()),
            sessions: Mutex::new(HashMap::new()),
            queue: queue_tx.clone(),
        });
        let queue_rx = Arc::new(Mutex::new(queue_rx));
        let executor_threads = (0..shared.cfg.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&queue_rx);
                std::thread::Builder::new()
                    .name(format!("dds-exec-{i}"))
                    .spawn(move || executor_loop(&shared, &rx))
                    .expect("spawn executor")
            })
            .collect();
        let session_threads = Arc::new(Mutex::new(Vec::new()));
        let listener_thread = {
            let shared = Arc::clone(&shared);
            let session_threads = Arc::clone(&session_threads);
            std::thread::Builder::new()
                .name("dds-listener".into())
                .spawn(move || listener_loop(&shared, &listener, &session_threads))
                .expect("spawn listener")
        };
        Ok(DdsServer {
            shared,
            local_addr,
            listener_thread: Some(listener_thread),
            executor_threads,
            session_threads,
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// A stats snapshot, identical to what a client's stats call returns.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Blocks until a shutdown has been signalled (remotely via
    /// [`Request::Shutdown`] or locally via [`shutdown`](Self::shutdown)
    /// from another thread).
    pub fn wait_shutdown(&self) {
        let (lock, cv) = &self.shared.shutdown_cv;
        let mut flagged = lock.lock().unwrap_or_else(PoisonError::into_inner);
        while !*flagged {
            flagged = cv.wait(flagged).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Graceful shutdown: gate admissions, drain the queue (executors
    /// finish and answer everything still queued before exiting; a
    /// request racing the gate edge gets a typed `Unavailable`, never
    /// silence), reap every thread, return the final stats. Idempotent
    /// with a remote shutdown — calling this after a client-initiated
    /// shutdown just performs the reaping half.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.signal_shutdown();
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        // Drain: executors poll the gate between jobs and exit only once
        // it is up AND the queue reads empty, so everything admitted
        // before (or racing into) the drain window is executed first.
        for t in self.executor_threads.drain(..) {
            let _ = t.join();
        }
        // Unblock idle sessions (blocked in read) and reap them.
        for (_, stream) in self
            .shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .session_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for t in handles {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

/// Whether an `accept` error signals exhausted process/system resources
/// (worth a backoff) rather than a single failed connection (not worth
/// one). `EMFILE` (24), `ENFILE` (23) and `ENOBUFS` have no stable
/// [`io::ErrorKind`] mapping, so they are matched by number — the first
/// two are identical across Linux and the BSDs, `ENOBUFS` is not.
fn accept_error_is_resource_exhaustion(e: &io::Error) -> bool {
    const ENOBUFS: i32 = if cfg!(target_os = "linux") {
        105
    } else if cfg!(windows) {
        10055 // WSAENOBUFS
    } else {
        55 // the BSDs / macOS
    };
    e.kind() == io::ErrorKind::OutOfMemory
        || matches!(e.raw_os_error(), Some(n) if n == 23 || n == 24 || n == ENOBUFS)
}

fn listener_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    session_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                // Resource exhaustion (EMFILE/ENFILE — plausible here,
                // every session clones its stream — or out-of-memory) is
                // persistent: without a pause the listener would spin at
                // 100% CPU until an fd frees up. Per-connection failures
                // (e.g. ECONNABORTED, a peer resetting mid-handshake)
                // must NOT pay that pause, or cheap aborted connects
                // would throttle accepts for legitimate clients. The
                // shutdown gate is re-checked on the next iteration, so
                // the pause never delays shutdown by more than one tick.
                if accept_error_is_resource_exhaustion(&e) {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                continue;
            }
        };
        let id = next_id;
        next_id += 1;
        shared
            .counters
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .sessions_active
            .fetch_add(1, Ordering::Relaxed);
        // A session MUST be registered before it is spawned: shutdown()
        // unblocks idle sessions through this map, so an unregistered
        // session could hang the final join. If the fd table is too
        // exhausted to clone the handle, refuse the connection instead.
        match stream.try_clone() {
            Ok(clone) => {
                shared
                    .sessions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(id, clone);
            }
            Err(_) => {
                shared
                    .counters
                    .sessions_active
                    .fetch_sub(1, Ordering::Relaxed);
                continue;
            }
        }
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("dds-session-{id}"))
            .spawn(move || {
                session_loop(&shared2, stream, id);
                shared2
                    .sessions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
                shared2
                    .counters
                    .sessions_active
                    .fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn session");
        let mut handles = session_threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Reap finished sessions as new ones arrive, so the handle list
        // tracks *live* connections instead of every connection ever
        // accepted (a churn-heavy server must not grow without bound).
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        handles.push(handle);
    }
}

/// Writes one response frame, keeping the byte counter. An IO failure
/// (client went away mid-response) just ends the session.
///
/// A response that exceeds `cfg.max_frame_len` (e.g. Hits over a catalog
/// with millions of matching ids) fails the *local* encode bound before
/// anything touches the wire, so the stream is still in sync — the
/// session answers with a small typed `internal` error instead of
/// silently closing (which the client would see as a bare
/// `UnexpectedEof`, indistinguishable from a crashed server).
fn respond(shared: &Shared, stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let (op, payload) = resp.encode();
    let n = match write_frame(
        stream,
        PROTOCOL_VERSION,
        op,
        &payload,
        shared.cfg.max_frame_len,
    ) {
        Ok(n) => n,
        // write_frame checks the bound before its first write, so only
        // its typed FrameTooLarge (io::ErrorKind::InvalidData wrapping a
        // WireError) guarantees an untouched stream; real transport
        // errors still end the session.
        Err(e)
            if e.kind() == io::ErrorKind::InvalidData
                && e.get_ref().is_some_and(|inner| inner.is::<WireError>()) =>
        {
            let fallback = Response::Error(ServerError::new(
                ServerErrorKind::Internal,
                "response exceeds the frame bound",
            ));
            let (op, payload) = fallback.encode();
            write_frame(
                stream,
                PROTOCOL_VERSION,
                op,
                &payload,
                shared.cfg.max_frame_len,
            )?
        }
        Err(e) => return Err(e),
    };
    shared.counters.bytes_out.fetch_add(n, Ordering::Relaxed);
    Ok(())
}

fn protocol_error(e: &WireError) -> Response {
    Response::Error(ServerError::new(ServerErrorKind::Protocol, e.to_string()))
}

fn unavailable() -> Response {
    Response::Error(ServerError::new(
        ServerErrorKind::Unavailable,
        "server is shutting down",
    ))
}

fn session_loop(shared: &Arc<Shared>, mut stream: TcpStream, _id: u64) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream, shared.cfg.max_frame_len) {
            Ok(f) => f,
            // Clean close, transport failure, or a disconnect mid-frame:
            // the session just ends — nothing to answer, nothing leaks.
            Err(FrameReadError::Eof) | Err(FrameReadError::Io(_)) => break,
            // Header-level violation: the stream position can't be
            // trusted any more. Answer the typed error, then close.
            Err(FrameReadError::Wire(e)) => {
                shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond(shared, &mut stream, &protocol_error(&e));
                break;
            }
        };
        shared
            .counters
            .bytes_in
            .fetch_add(frame.wire_len(), Ordering::Relaxed);
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        if frame.version != PROTOCOL_VERSION {
            shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            let e = WireError::UnsupportedVersion { got: frame.version };
            let _ = respond(shared, &mut stream, &protocol_error(&e));
            break;
        }
        let req = match Request::decode(frame.opcode, &frame.payload) {
            Ok(r) => r,
            // Payload-level violation: the frame boundary was intact, so
            // the session can keep serving after the typed error.
            Err(e) => {
                shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                if respond(shared, &mut stream, &protocol_error(&e)).is_err() {
                    break;
                }
                continue;
            }
        };
        let resp = match req {
            // Control ops are answered in place: they are cheap reads and
            // must work even while the queue is saturated.
            Request::Stats => Response::Stats(shared.stats()),
            Request::Ping { token } => Response::Pong { token },
            Request::Shutdown => {
                let _ = respond(shared, &mut stream, &Response::Done);
                shared.signal_shutdown();
                break;
            }
            work => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    shared
                        .counters
                        .unavailable_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    unavailable()
                } else {
                    let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
                    match shared.queue.try_send(Job {
                        req: work,
                        reply: reply_tx,
                    }) {
                        Ok(()) => {
                            shared
                                .counters
                                .jobs_admitted
                                .fetch_add(1, Ordering::Relaxed);
                            // The executor pool owns the job now; a dead
                            // executor drops the sender and we degrade to
                            // a typed error instead of hanging.
                            reply_rx.recv().unwrap_or_else(|_| unavailable())
                        }
                        Err(TrySendError::Full(_)) => {
                            shared
                                .counters
                                .busy_rejections
                                .fetch_add(1, Ordering::Relaxed);
                            Response::Busy
                        }
                        Err(TrySendError::Disconnected(_)) => unavailable(),
                    }
                }
            }
        };
        if respond(shared, &mut stream, &resp).is_err() {
            break;
        }
    }
}

fn executor_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    use std::sync::mpsc::RecvTimeoutError;
    loop {
        // Hold the receiver lock only while waiting; executors take turns
        // pulling jobs (an arriving job wakes the lock holder at once —
        // the timeout only bounds how stale the shutdown-gate check can
        // get, it adds no delivery latency).
        let job = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(std::time::Duration::from_millis(25))
        };
        match job {
            Ok(job) => run_job(shared, job),
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // Drain-then-exit: the gate is up, so no session will
                    // admit more work after what is already queued; run
                    // the leftovers so their sessions get real answers.
                    // (A try_send racing past the drained-empty read gets
                    // its reply sender dropped with the channel, which the
                    // session surfaces as a typed Unavailable — answered,
                    // never hung.)
                    loop {
                        let job = {
                            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
                            rx.try_recv()
                        };
                        match job {
                            Ok(job) => run_job(shared, job),
                            Err(_) => break,
                        }
                    }
                    break;
                }
            }
        }
    }
}

/// Executes one admitted job and answers its session.
///
/// Execution is panic-isolated: the decoder rejects everything *known* to
/// panic the engine, but a build can still panic on pathological
/// parameters, and an unwinding executor thread must not die (after
/// `cfg.executors` such deaths the queue receiver would drop and every
/// later request would be answered `unavailable` by a silently-degraded
/// server). A panic is caught here, answered as a typed `internal` error,
/// and the executor keeps draining. The engine locks recover from the
/// resulting poison (see [`Shared::engine_read`]): ingest is
/// validate→build→commit, so engine state stays consistent.
fn run_job(shared: &Arc<Shared>, Job { req, reply }: Job) {
    shared
        .counters
        .jobs_dequeued
        .fetch_add(1, Ordering::Relaxed);
    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(shared, req)))
        .unwrap_or_else(|_| {
            shared
                .counters
                .executor_panics
                .fetch_add(1, Ordering::Relaxed);
            // The panic text is NOT echoed to the (untrusted) client:
            // engine assertion messages can embed internal state, and a
            // client probing for panics must not get free introspection.
            // The default panic hook has already written the message and
            // backtrace to the server's stderr.
            Response::Error(ServerError::new(
                ServerErrorKind::Internal,
                "request execution panicked (details in the server log)",
            ))
        });
    shared
        .counters
        .jobs_completed
        .fetch_add(1, Ordering::Relaxed);
    // The session may have disconnected mid-request; dropping the
    // response is the correct outcome then.
    let _ = reply.send(resp);
}

/// Runs one admitted job against the engine.
fn execute(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Query(expr) => {
            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            let engine = shared.engine_read();
            if let Some(resp) = schema_guard(&engine, std::slice::from_ref(&expr)) {
                return resp;
            }
            let mut results =
                engine.query_batch_opts(std::slice::from_ref(&expr), &shared.build_opts());
            Response::Hits(results.pop().expect("one result per expression"))
        }
        Request::QueryBatch(exprs) => {
            shared
                .counters
                .batch_queries
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .batch_exprs
                .fetch_add(exprs.len() as u64, Ordering::Relaxed);
            let engine = shared.engine_read();
            if let Some(resp) = schema_guard(&engine, &exprs) {
                return resp;
            }
            Response::BatchHits(engine.query_batch_opts(&exprs, &shared.build_opts()))
        }
        Request::AddShard {
            datasets,
            global_ids,
        } => {
            shared.counters.admin_ops.fetch_add(1, Ordering::Relaxed);
            let repo = Repository::new(datasets);
            let mut engine = shared.engine_write();
            match engine.try_add_shard_opts(&repo, &global_ids, &shared.build_opts()) {
                Ok(shard) => Response::ShardAdded {
                    shard: shard as u32,
                },
                Err(e) => Response::Error(ServerError::new(ServerErrorKind::Ingest, e.to_string())),
            }
        }
        Request::RebuildShard {
            shard,
            datasets,
            global_ids,
        } => {
            shared.counters.admin_ops.fetch_add(1, Ordering::Relaxed);
            let repo = Repository::new(datasets);
            let mut engine = shared.engine_write();
            match engine.try_rebuild_shard_opts(
                shard as usize,
                &repo,
                &global_ids,
                &shared.build_opts(),
            ) {
                Ok(()) => Response::Done,
                Err(e) => Response::Error(ServerError::new(ServerErrorKind::Ingest, e.to_string())),
            }
        }
        Request::Sleep { ms } => {
            if !shared.cfg.allow_sleep {
                return Response::Error(ServerError::new(
                    ServerErrorKind::Protocol,
                    "sleep is disabled on this server (ServerConfig::allow_sleep)",
                ));
            }
            if ms == PANIC_DRILL_MS {
                // The documented panic drill: proves end to end that a
                // panicking job is answered typed and the executor
                // survives. Gated behind the same opt-in as Sleep itself.
                panic!("panic drill (Sleep with ms = u32::MAX)");
            }
            std::thread::sleep(std::time::Duration::from_millis(ms.min(MAX_SLEEP_MS) as u64));
            Response::Done
        }
        // Control ops never reach the queue.
        Request::Stats | Request::Ping { .. } | Request::Shutdown => Response::Error(
            ServerError::new(ServerErrorKind::Protocol, "control op on the work queue"),
        ),
    }
}

/// The engine's query paths assert that every predicate matches the served
/// schema dimension; served traffic must get a typed error instead of a
/// panicking executor. `None` means the expressions are safe to run.
fn schema_guard(engine: &ShardedEngine, exprs: &[LogicalExpr]) -> Option<Response> {
    let Some(dim) = engine.dim() else {
        // No shards: every query legitimately answers empty, touching no
        // index, so nothing can panic.
        return None;
    };
    fn dims_ok(expr: &LogicalExpr, dim: usize) -> bool {
        match expr {
            LogicalExpr::Pred(p) => match &p.measure {
                MeasureFunction::Percentile(r) => r.dim() == dim,
                MeasureFunction::TopK { v, .. } => v.len() == dim,
            },
            LogicalExpr::And(xs) | LogicalExpr::Or(xs) => xs.iter().all(|x| dims_ok(x, dim)),
        }
    }
    if exprs.iter().all(|e| dims_ok(e, dim)) {
        None
    } else {
        // Permanent: this request can never succeed against the served
        // schema, so clients must not treat it as a retry-later signal.
        Some(Response::Error(ServerError::new(
            ServerErrorKind::InvalidQuery,
            format!("query dimension does not match the served schema (dim = {dim})"),
        )))
    }
}
