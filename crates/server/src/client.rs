//! Blocking client for the `dds-server` wire protocol.
//!
//! One request in flight per connection: every call writes a frame, reads
//! the answering frame, and surfaces the transport/protocol layer as a
//! typed [`ClientError`] while passing the *engine's* answers — including
//! `EngineError`s — through untouched, so a served
//! [`query`](DdsClient::query) returns exactly the in-process
//! `ShardedEngine::query` result (pinned byte-identical by the loopback
//! tests).
//!
//! The connection reuses one scratch buffer per direction across calls
//! (frames are encoded with [`crate::wire::encode_frame_into`] and read
//! with [`crate::wire::read_frame_into`]), so a warmed-up client
//! allocates nothing per round trip — the other half of the server's
//! zero-allocation steady state, pinned together by the `dds-bench`
//! counting-allocator experiment.
//!
//! # Self-healing
//!
//! With a [`RetryPolicy`] installed ([`DdsClient::with_retry`]) the
//! client heals around transport faults: a dead connection is dropped and
//! re-dialed, attempts back off exponentially with deterministic jitter,
//! and the whole loop is bounded by a deadline and an attempt cap. What
//! may be *re-sent* is governed by the wire op's
//! [`RetrySafety`](crate::protocol::RetrySafety) class — reads and
//! data-free admin ops always, ingests only under a dedup `request_id`
//! (which this client stamps automatically), `Shutdown`/`Sleep` never.
//! An answered transient rejection (`Busy`, `throttled`, `unavailable`)
//! executed nothing and is retryable for any op. A call that exhausts its
//! budget surfaces [`ClientError::DeadlineExceeded`] wrapping the last
//! underlying failure.

use crate::fault::{ConnPlan, FaultPlan, FaultStream};
use crate::protocol::{MetricsReport, Request, Response, RetrySafety, ServerError, ServerStats};
use crate::wire::{
    encode_frame_into, read_frame_into, FrameReadError, WireError, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use dds_core::engine::EngineError;
use dds_core::framework::{LogicalExpr, Repository};
use dds_core::shard::GlobalId;
use std::fmt;
use std::io::{self, Write};
use std::net::{IpAddr, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A query answer exactly as the in-process engine would return it.
pub type EngineResult = Result<Vec<GlobalId>, EngineError>;

/// Connection options for [`DdsClient::connect_with`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Socket read **and** write timeout for every call; `None` (the
    /// default) blocks indefinitely — unless a [`RetryPolicy`] is
    /// installed, in which case a per-attempt timeout is derived from the
    /// policy so one stalled attempt cannot eat the whole deadline. An
    /// expired timeout surfaces as [`ClientError::TimedOut`] — the
    /// connection is dropped afterwards, since an abandoned response may
    /// still arrive and desynchronise the stream.
    pub timeout: Option<Duration>,
    /// Upper bound on a frame body this client accepts and emits.
    pub max_frame_len: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// How a [`DdsClient`] retries around transport faults and transient
/// rejections. Install with [`DdsClient::with_retry`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total budget for one logical call, attempts and backoffs
    /// included. Past it the call fails with
    /// [`ClientError::DeadlineExceeded`].
    pub deadline: Duration,
    /// Most attempts one logical call makes (≥ 1; the first attempt
    /// counts).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt (capped at
    /// 1 s), with deterministic jitter in `[base/2, base)` of the
    /// current value.
    pub base_backoff: Duration,
    /// Seeds the backoff-jitter sequence — two clients retrying the
    /// same failure pattern from the same seed sleep identically.
    ///
    /// Deliberately **not** used for `request_id` generation: the
    /// server's dedup window is shared by every client, so ids drawn
    /// from a shared default seed would collide across clients and a
    /// second client's ingest would be misread as a retransmission of
    /// the first's. Request ids come from a per-client entropy-seeded
    /// generator instead (see [`DdsClient::connect_with`]).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline: Duration::from_secs(10),
            max_attempts: 8,
            base_backoff: Duration::from_millis(20),
            jitter_seed: 0x5EED_5EED,
        }
    }
}

/// Why a client call failed *before* producing an engine answer.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure other than the peer going away (connect refused,
    /// a genuine local I/O fault).
    Io(io::Error),
    /// The socket timeout expired mid-call (explicit
    /// [`ClientConfig::timeout`], or the per-attempt timeout a
    /// [`RetryPolicy`] derives). The connection is no longer usable: the
    /// response may arrive later and desynchronise the stream.
    TimedOut,
    /// The peer went away: a clean close between frames, a reset, or a
    /// broken pipe. Distinct from [`Io`](Self::Io) so a retry layer can
    /// tell "reconnect and try again" from "something is locally wrong".
    ConnectionClosed,
    /// The response violated the wire grammar.
    Wire(WireError),
    /// The server's admission queue was full; the request was not
    /// executed — retry later (the typed backpressure signal).
    Busy,
    /// The server answered a typed request-level error (protocol
    /// rejection, refused ingest, rate-limit throttling, shutting down).
    Server(ServerError),
    /// The server answered with a well-formed but unexpected response
    /// kind.
    UnexpectedResponse {
        /// What the call was waiting for.
        expected: &'static str,
        /// What arrived instead (debug rendering).
        got: String,
    },
    /// The [`RetryPolicy`] budget ran out. `last` is the failure of the
    /// final attempt — the thing that would have been returned without a
    /// policy.
    DeadlineExceeded {
        /// Attempts made (the first one included).
        attempts: u32,
        /// The final attempt's failure.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether retrying *could* help: the fault was in transport or an
    /// explicitly transient server answer (`Busy`,
    /// `unavailable`/`throttled`), rather than a permanent rejection, a
    /// grammar violation, or an already-exhausted retry budget.
    ///
    /// Note this classifies the **error**, not the op: a transient error
    /// after an op of unknown fate is only actually retryable if the op
    /// is retry-safe (see
    /// [`RetrySafety`](crate::protocol::RetrySafety)) — the retry loop
    /// enforces that half.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_)
            | ClientError::TimedOut
            | ClientError::ConnectionClosed
            | ClientError::Busy => true,
            ClientError::Server(e) => e.kind.is_transient(),
            ClientError::Wire(_)
            | ClientError::UnexpectedResponse { .. }
            | ClientError::DeadlineExceeded { .. } => false,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::TimedOut => {
                write!(f, "request timed out (ClientConfig::timeout)")
            }
            ClientError::ConnectionClosed => {
                write!(f, "the server closed the connection")
            }
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Busy => write!(f, "server busy: admission queue full, retry later"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} response, got {got}")
            }
            ClientError::DeadlineExceeded { attempts, last } => {
                write!(
                    f,
                    "retry deadline exceeded after {attempts} attempts: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Server(e) => Some(e),
            ClientError::DeadlineExceeded { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // Platforms disagree on what an expired socket timeout reads as:
        // Unix surfaces EAGAIN (WouldBlock), Windows WSAETIMEDOUT
        // (TimedOut). Both mean the same thing here.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::TimedOut,
            k if crate::wire::is_disconnect_kind(k) => ClientError::ConnectionClosed,
            _ => ClientError::Io(e),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Eof => ClientError::ConnectionClosed,
            FrameReadError::Io(e) => e.into(),
            FrameReadError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// Where an attempt's failure left the request — the input to the
/// retry-safety decision.
enum Fate {
    /// The connection could not even be established: nothing was sent,
    /// so a retry is always safe.
    NotSent,
    /// The transport died after (part of) the frame went out and before
    /// an answer came back. Re-sending is gated on the op's
    /// [`RetrySafety`].
    Unknown,
    /// The server *answered* — with `Busy` or a typed error. Nothing is
    /// pending; whether to retry depends only on the answer's
    /// transience.
    Answered,
}

struct AttemptError {
    err: ClientError,
    fate: Fate,
}

/// Advances a splitmix64 state and returns the next output.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-client entropy seeding the `request_id` generator.
///
/// The server's dedup window is shared by **all** clients, so request
/// ids must be unique across clients, not just within one — a collision
/// makes a fresh ingest read as a retransmission, silently replaying
/// another client's answer. Three independent sources are mixed so no
/// single coincidence collides two clients: a process-unique counter
/// (two clients in one process always differ), the connection's local
/// ephemeral port + address (two single-client processes on one host
/// differ), and the wall clock at nanosecond grain (distinct hosts
/// differ).
fn request_id_seed(stream: &TcpStream) -> u64 {
    static CLIENT_SEQ: AtomicU64 = AtomicU64::new(1);
    let mut seq = CLIENT_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut seed = splitmix_next(&mut seq);
    if let Ok(t) = SystemTime::now().duration_since(UNIX_EPOCH) {
        let mut clock = t.as_nanos() as u64;
        seed ^= splitmix_next(&mut clock);
    }
    if let Ok(local) = stream.local_addr() {
        let mut addr = u64::from(local.port());
        match local.ip() {
            IpAddr::V4(ip) => addr ^= u64::from(u32::from(ip)) << 16,
            IpAddr::V6(ip) => {
                let bits = u128::from(ip);
                addr ^= (bits as u64) ^ ((bits >> 64) as u64);
            }
        }
        seed ^= splitmix_next(&mut addr);
    }
    seed
}

/// A blocking connection to a [`DdsServer`](crate::DdsServer).
///
/// The transport is always a [`FaultStream`]: under a clean plan (the
/// normal case) it is a transparent passthrough; under
/// [`with_faults`](Self::with_faults) each successive connection suffers
/// its seeded [`ConnPlan`] — the client-side half of the fault-injection
/// story, letting tests drive the *production* retry loop through
/// deterministic chaos.
#[derive(Debug)]
pub struct DdsClient {
    conn: Option<FaultStream>,
    /// The resolved peer, kept for reconnects.
    peer: SocketAddr,
    cfg: ClientConfig,
    retry: Option<RetryPolicy>,
    faults: Option<FaultPlan>,
    /// Connections dialed so far — indexes [`FaultPlan::conn`].
    conn_seq: u64,
    /// splitmix64 state for backoff jitter (seeded by
    /// [`RetryPolicy::jitter_seed`]).
    rng: u64,
    /// splitmix64 state for `request_id` generation, seeded with
    /// per-client entropy at connect time. Request ids land in the
    /// server's **shared** dedup window, so two clients must never emit
    /// the same id stream — which is why this state is independent of
    /// the (defaultable, hence collidable) `jitter_seed`.
    id_rng: u64,
    retries: u64,
    /// Encoded request frame, reused across calls.
    scratch_out: Vec<u8>,
    /// Response frame payload, reused across calls.
    scratch_in: Vec<u8>,
}

impl DdsClient {
    /// Connects to a server with default options (no timeout, no
    /// retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<DdsClient, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with explicit [`ClientConfig`] options.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
    ) -> Result<DdsClient, ClientError> {
        // Dial once eagerly (callers expect connect errors here, not on
        // the first call) and remember the resolved peer for reconnects.
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        let id_rng = request_id_seed(&stream);
        let mut client = DdsClient {
            conn: None,
            peer,
            cfg,
            retry: None,
            faults: None,
            conn_seq: 1,
            rng: 0x5EED_5EED,
            id_rng,
            retries: 0,
            scratch_out: Vec::new(),
            scratch_in: Vec::new(),
        };
        client.configure(&stream)?;
        client.conn = Some(FaultStream::new(stream, ConnPlan::CLEAN));
        Ok(client)
    }

    /// Lowers (or raises) the frame bound this client accepts and emits.
    pub fn with_max_frame_len(mut self, max_frame_len: u32) -> Self {
        self.cfg.max_frame_len = max_frame_len;
        self
    }

    /// Installs a [`RetryPolicy`]: calls reconnect and retry around
    /// transport faults within the policy's budget, and ingest calls are
    /// stamped with dedup `request_id`s so their retries are safe.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.rng = policy.jitter_seed;
        self.retry = Some(policy);
        self
    }

    /// Injects client-side faults: connection `i` (dial order, the
    /// eager connect from [`connect_with`](Self::connect_with) counts as
    /// `0`) suffers `plan.conn(i)`. The current connection is dropped so
    /// the very first faulty plan applies from the next call. Testing
    /// aid — this is how the suite drives the retry loop through
    /// deterministic chaos without a proxy.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.conn = None;
        self.conn_seq = 0;
        self.faults = Some(plan);
        self
    }

    /// Transport-level retries performed so far (reconnect + re-send
    /// cycles and backoffs after transient rejections; successful first
    /// attempts don't count).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_rand(&mut self) -> u64 {
        splitmix_next(&mut self.rng)
    }

    /// A fresh nonzero dedup token for one logical ingest call (reused
    /// verbatim across that call's attempts). Drawn from the
    /// entropy-seeded per-client stream, never from the jitter rng —
    /// see [`request_id_seed`].
    fn next_request_id(&mut self) -> u64 {
        loop {
            let id = splitmix_next(&mut self.id_rng);
            if id != 0 {
                return id;
            }
        }
    }

    /// The socket budget for one attempt: the explicit
    /// [`ClientConfig::timeout`], or — with a retry policy and none set
    /// — `deadline / max_attempts` (floored at 10 ms) so a stalled
    /// attempt cannot eat the whole budget.
    fn attempt_timeout(&self) -> Option<Duration> {
        self.cfg.timeout.or_else(|| {
            self.retry
                .map(|p| (p.deadline / p.max_attempts.max(1)).max(Duration::from_millis(10)))
        })
    }

    /// Applies socket options to a fresh connection.
    fn configure(&self, stream: &TcpStream) -> Result<(), ClientError> {
        let _ = stream.set_nodelay(true);
        let timeout = self.attempt_timeout();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Dials the remembered peer, applying the next fault plan if one is
    /// installed. The dial itself is bounded by the per-attempt timeout
    /// clipped to `remaining` (what is left of the retry deadline): a
    /// black-holed peer that silently drops SYNs fails this attempt
    /// within budget instead of blocking for the OS connect timeout.
    fn reconnect(&mut self, remaining: Option<Duration>) -> Result<(), ClientError> {
        let plan = match self.faults {
            Some(f) => f.conn(self.conn_seq),
            None => ConnPlan::CLEAN,
        };
        self.conn_seq += 1;
        if plan.connect_delay_ms > 0 {
            // The delayed-connect fault: dialing takes its time.
            std::thread::sleep(Duration::from_millis(u64::from(plan.connect_delay_ms)));
        }
        let budget = match (self.attempt_timeout(), remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let stream = match budget {
            // connect_timeout rejects a zero duration, and a nearly-spent
            // deadline should still buy one real dial — floor at 10 ms
            // (the deadline check in the retry loop ends the call).
            Some(t) => TcpStream::connect_timeout(&self.peer, t.max(Duration::from_millis(10)))?,
            None => TcpStream::connect(self.peer)?,
        };
        self.configure(&stream)?;
        self.conn = Some(FaultStream::new(stream, plan));
        Ok(())
    }

    /// One wire round trip on the current connection.
    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        let conn = self.conn.as_mut().expect("exchange requires a connection");
        encode_frame_into(
            &mut self.scratch_out,
            PROTOCOL_VERSION,
            self.cfg.max_frame_len,
            |w| req.encode_to(w),
        )?;
        conn.write_all(&self.scratch_out)?;
        let (version, opcode) =
            read_frame_into(conn, self.cfg.max_frame_len, &mut self.scratch_in)?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion { got: version }.into());
        }
        Ok(Response::decode(opcode, &self.scratch_in)?)
    }

    /// One attempt: ensure a connection, do the round trip, classify the
    /// failure's fate. Any transport or wire failure poisons the
    /// connection (the stream can no longer be trusted to be in sync).
    /// `remaining` bounds a reconnect dial (what is left of the retry
    /// deadline; `None` = no deadline).
    fn attempt(
        &mut self,
        req: &Request,
        remaining: Option<Duration>,
    ) -> Result<Response, AttemptError> {
        if self.conn.is_none() {
            self.reconnect(remaining).map_err(|err| AttemptError {
                err,
                fate: Fate::NotSent,
            })?;
        }
        match self.exchange(req) {
            Ok(Response::Busy) => Err(AttemptError {
                err: ClientError::Busy,
                fate: Fate::Answered,
            }),
            Ok(Response::Error(e)) => Err(AttemptError {
                err: ClientError::Server(e),
                fate: Fate::Answered,
            }),
            Ok(resp) => Ok(resp),
            Err(err) => {
                self.conn = None;
                Err(AttemptError {
                    err,
                    fate: Fate::Unknown,
                })
            }
        }
    }

    /// One request/response round trip, healed by the retry policy when
    /// one is installed.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let policy = match self.retry {
            Some(p) => p,
            None => return self.attempt(req, None).map_err(|a| a.err),
        };
        // Whether this op may be re-sent when its fate is unknown.
        let resend_safe = match req.retry_safety() {
            RetrySafety::Safe => true,
            RetrySafety::SafeIfDeduped => req.dedup_id().is_some(),
            RetrySafety::Unsafe => false,
        };
        let start = Instant::now();
        let mut attempts = 0u32;
        let mut backoff = policy.base_backoff.max(Duration::from_millis(1));
        loop {
            attempts += 1;
            let remaining = policy.deadline.saturating_sub(start.elapsed());
            let AttemptError { err, fate } = match self.attempt(req, Some(remaining)) {
                Ok(resp) => return Ok(resp),
                Err(a) => a,
            };
            let retryable = match fate {
                Fate::NotSent => err.is_transient(),
                Fate::Answered => err.is_transient(),
                Fate::Unknown => resend_safe && err.is_transient(),
            };
            if !retryable {
                return Err(err);
            }
            if attempts >= policy.max_attempts.max(1) || start.elapsed() >= policy.deadline {
                return Err(ClientError::DeadlineExceeded {
                    attempts,
                    last: Box::new(err),
                });
            }
            self.retries += 1;
            // Deterministic decorrelated jitter in [backoff/2, backoff),
            // clipped to what is left of the deadline.
            let half = (backoff / 2).as_millis().max(1) as u64;
            let jittered = Duration::from_millis(half + self.next_rand() % half);
            let remaining = policy.deadline.saturating_sub(start.elapsed());
            std::thread::sleep(jittered.min(remaining));
            backoff = (backoff * 2).min(Duration::from_secs(1));
        }
    }

    fn unexpected<T>(expected: &'static str, got: Response) -> Result<T, ClientError> {
        Err(ClientError::UnexpectedResponse {
            expected,
            got: format!("{got:?}"),
        })
    }

    /// Answers one expression — the served `ShardedEngine::query`.
    pub fn query(&mut self, expr: &LogicalExpr) -> Result<EngineResult, ClientError> {
        match self.call(&Request::Query(expr.clone()))? {
            Response::Hits(res) => Ok(res),
            other => Self::unexpected("hits", other),
        }
    }

    /// Answers a batch — the served `ShardedEngine::query_batch`,
    /// input-ordered.
    pub fn query_batch(&mut self, exprs: &[LogicalExpr]) -> Result<Vec<EngineResult>, ClientError> {
        match self.call(&Request::QueryBatch(exprs.to_vec()))? {
            Response::BatchHits(res) => Ok(res),
            other => Self::unexpected("batch hits", other),
        }
    }

    /// Ingests a new shard; returns its index for later rebuilds. A
    /// rejected ingest surfaces as
    /// [`ClientError::Server`] with kind `Ingest`. With a retry policy
    /// installed the request carries a generated dedup `request_id`, so
    /// its retries cannot double-ingest.
    pub fn add_shard(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<usize, ClientError> {
        let request_id = if self.retry.is_some() {
            self.next_request_id()
        } else {
            0
        };
        self.add_shard_with_id(request_id, repo, global_ids)
    }

    /// [`add_shard`](Self::add_shard) under an explicit caller-chosen
    /// `request_id` (`0` = no dedup). Callers that retry a failed
    /// logical ingest **across calls** should pass the same id each
    /// time: the server's dedup window then guarantees at most one
    /// ingest no matter how many times the request is re-sent —
    /// uniqueness across *distinct* ingests is the caller's
    /// responsibility.
    pub fn add_shard_with_id(
        &mut self,
        request_id: u64,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<usize, ClientError> {
        let req = Request::AddShard {
            request_id,
            datasets: repo.datasets().to_vec(),
            global_ids: global_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Replaces shard `shard`'s contents. Dedup `request_id` handling as
    /// in [`add_shard`](Self::add_shard).
    pub fn rebuild_shard(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<(), ClientError> {
        let request_id = if self.retry.is_some() {
            self.next_request_id()
        } else {
            0
        };
        let req = Request::RebuildShard {
            shard: shard as u32,
            request_id,
            datasets: repo.datasets().to_vec(),
            global_ids: global_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }

    /// Divides shard `shard` in two: datasets whose global ids are in
    /// `move_ids` land in a new shard, whose index is returned. Served
    /// answers never change across the transition. A rejection (unknown
    /// shard, id not held, empty side) surfaces as
    /// [`ClientError::Server`] with kind `InvalidQuery` — the op carries
    /// no data, so a rejection means the request named state that doesn't
    /// match the served catalog.
    pub fn split_shard(
        &mut self,
        shard: usize,
        move_ids: &[GlobalId],
    ) -> Result<usize, ClientError> {
        let req = Request::SplitShard {
            shard: shard as u32,
            move_ids: move_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Coalesces shards `a` and `b` into one; returns the surviving
    /// index, `min(a, b)` (shards past `max(a, b)` shift down by one).
    /// Rejections surface like [`split_shard`](Self::split_shard)'s.
    pub fn merge_shards(&mut self, a: usize, b: usize) -> Result<usize, ClientError> {
        let req = Request::MergeShards {
            a: a as u32,
            b: b as u32,
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Fetches the server's aggregated statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Self::unexpected("stats", other),
        }
    }

    /// Fetches the server's telemetry snapshot: per-stage latency
    /// histograms (decode, queue wait, execute, response write, engine
    /// routing, per-scatter-unit execution) plus the recent slow-query
    /// traces. `report.render_text()` gives a Prometheus-style rendering
    /// for scraping. Like [`stats`](Self::stats) it is answered by the
    /// session directly, so it works even while the admission queue is
    /// saturated — exactly when the histograms are most interesting.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => Self::unexpected("metrics", other),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let token = 0x70_6F_6E_67;
        match self.call(&Request::Ping { token })? {
            Response::Pong { token: t } if t == token => Ok(()),
            other => Self::unexpected("pong", other),
        }
    }

    /// Asks the server to shut down gracefully (admitted work is drained
    /// and answered before the server exits). Never re-sent by the retry
    /// policy — a duplicate would hit the next server generation.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }

    /// Holds one executor for `ms` milliseconds (capped server-side) — a
    /// testing aid for backpressure drills. Never re-sent by the retry
    /// policy.
    pub fn sleep(&mut self, ms: u32) -> Result<(), ClientError> {
        match self.call(&Request::Sleep { ms })? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Two clients built with the **default** retry policy must not emit
    /// the same `request_id` stream: the server's dedup window is shared
    /// across clients, so a collision would misread one client's ingest
    /// as a retransmission of the other's and silently replay the wrong
    /// answer (the cross-client dedup-collision bug).
    #[test]
    fn default_policy_clients_draw_disjoint_request_id_streams() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Keep the accepted sockets alive so connects succeed.
        let mut accepted = Vec::new();
        let mut ids = |_: ()| -> Vec<u64> {
            let mut c = DdsClient::connect(addr).expect("connect");
            accepted.push(listener.accept().expect("accept").0);
            c = c.with_retry(RetryPolicy::default());
            (0..32).map(|_| c.next_request_id()).collect()
        };
        let a = ids(());
        let b = ids(());
        assert_ne!(a, b, "identical id streams collide in the dedup window");
        let overlap: Vec<_> = a.iter().filter(|id| b.contains(id)).collect();
        assert!(
            overlap.is_empty(),
            "cross-client request_id overlap: {overlap:?}"
        );
        // And the jitter sequence stays deterministic from its seed —
        // entropy went into the id stream, not the backoff schedule.
        let mut j1 = DdsClient::connect(addr).expect("connect");
        accepted.push(listener.accept().expect("accept").0);
        let mut j2 = DdsClient::connect(addr).expect("connect");
        accepted.push(listener.accept().expect("accept").0);
        j1 = j1.with_retry(RetryPolicy::default());
        j2 = j2.with_retry(RetryPolicy::default());
        let s1: Vec<u64> = (0..8).map(|_| j1.next_rand()).collect();
        let s2: Vec<u64> = (0..8).map(|_| j2.next_rand()).collect();
        assert_eq!(s1, s2, "jitter must stay seed-deterministic");
    }
}
