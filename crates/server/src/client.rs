//! Blocking client for the `dds-server` wire protocol.
//!
//! One request in flight per connection: every call writes a frame, reads
//! the answering frame, and surfaces the transport/protocol layer as a
//! typed [`ClientError`] while passing the *engine's* answers — including
//! `EngineError`s — through untouched, so a served
//! [`query`](DdsClient::query) returns exactly the in-process
//! `ShardedEngine::query` result (pinned byte-identical by the loopback
//! tests).
//!
//! The connection reuses one scratch buffer per direction across calls
//! (frames are encoded with [`crate::wire::encode_frame_into`] and read
//! with [`crate::wire::read_frame_into`]), so a warmed-up client
//! allocates nothing per round trip — the other half of the server's
//! zero-allocation steady state, pinned together by the `dds-bench`
//! counting-allocator experiment.

use crate::protocol::{Request, Response, ServerError, ServerStats};
use crate::wire::{
    encode_frame_into, read_frame_into, FrameReadError, WireError, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use dds_core::engine::EngineError;
use dds_core::framework::{LogicalExpr, Repository};
use dds_core::shard::GlobalId;
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A query answer exactly as the in-process engine would return it.
pub type EngineResult = Result<Vec<GlobalId>, EngineError>;

/// Connection options for [`DdsClient::connect_with`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Socket read **and** write timeout for every call; `None` (the
    /// default) blocks indefinitely. An expired timeout surfaces as
    /// [`ClientError::TimedOut`] — the connection should be dropped
    /// afterwards, since an abandoned response may still arrive and
    /// desynchronise the stream.
    pub timeout: Option<Duration>,
    /// Upper bound on a frame body this client accepts and emits.
    pub max_frame_len: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Why a client call failed *before* producing an engine answer.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server closed).
    Io(io::Error),
    /// The configured [`ClientConfig::timeout`] expired mid-call. The
    /// connection is no longer usable: the response may arrive later and
    /// desynchronise the stream.
    TimedOut,
    /// The response violated the wire grammar.
    Wire(WireError),
    /// The server's admission queue was full; the request was not
    /// executed — retry later (the typed backpressure signal).
    Busy,
    /// The server answered a typed request-level error (protocol
    /// rejection, refused ingest, rate-limit throttling, shutting down).
    Server(ServerError),
    /// The server answered with a well-formed but unexpected response
    /// kind.
    UnexpectedResponse {
        /// What the call was waiting for.
        expected: &'static str,
        /// What arrived instead (debug rendering).
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::TimedOut => {
                write!(f, "request timed out (ClientConfig::timeout)")
            }
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Busy => write!(f, "server busy: admission queue full, retry later"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} response, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // Platforms disagree on what an expired socket timeout reads as:
        // Unix surfaces EAGAIN (WouldBlock), Windows WSAETIMEDOUT
        // (TimedOut). Both mean the same thing here.
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ClientError::TimedOut
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Eof => ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            FrameReadError::Io(e) => e.into(),
            FrameReadError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// A blocking connection to a [`DdsServer`](crate::DdsServer).
#[derive(Debug)]
pub struct DdsClient {
    stream: TcpStream,
    max_frame_len: u32,
    /// Encoded request frame, reused across calls.
    scratch_out: Vec<u8>,
    /// Response frame payload, reused across calls.
    scratch_in: Vec<u8>,
}

impl DdsClient {
    /// Connects to a server with default options (no timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<DdsClient, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with explicit [`ClientConfig`] options.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
    ) -> Result<DdsClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(cfg.timeout)?;
        stream.set_write_timeout(cfg.timeout)?;
        Ok(DdsClient {
            stream,
            max_frame_len: cfg.max_frame_len,
            scratch_out: Vec::new(),
            scratch_in: Vec::new(),
        })
    }

    /// Lowers (or raises) the frame bound this client accepts and emits.
    pub fn with_max_frame_len(mut self, max_frame_len: u32) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    /// One request/response round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        encode_frame_into(
            &mut self.scratch_out,
            PROTOCOL_VERSION,
            self.max_frame_len,
            |w| req.encode_to(w),
        )?;
        self.stream.write_all(&self.scratch_out)?;
        let (version, opcode) =
            read_frame_into(&mut self.stream, self.max_frame_len, &mut self.scratch_in)?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion { got: version }.into());
        }
        match Response::decode(opcode, &self.scratch_in)? {
            Response::Busy => Err(ClientError::Busy),
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(expected: &'static str, got: Response) -> Result<T, ClientError> {
        Err(ClientError::UnexpectedResponse {
            expected,
            got: format!("{got:?}"),
        })
    }

    /// Answers one expression — the served `ShardedEngine::query`.
    pub fn query(&mut self, expr: &LogicalExpr) -> Result<EngineResult, ClientError> {
        match self.call(&Request::Query(expr.clone()))? {
            Response::Hits(res) => Ok(res),
            other => Self::unexpected("hits", other),
        }
    }

    /// Answers a batch — the served `ShardedEngine::query_batch`,
    /// input-ordered.
    pub fn query_batch(&mut self, exprs: &[LogicalExpr]) -> Result<Vec<EngineResult>, ClientError> {
        match self.call(&Request::QueryBatch(exprs.to_vec()))? {
            Response::BatchHits(res) => Ok(res),
            other => Self::unexpected("batch hits", other),
        }
    }

    /// Ingests a new shard; returns its index for later rebuilds. A
    /// rejected ingest surfaces as
    /// [`ClientError::Server`] with kind `Ingest`.
    pub fn add_shard(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<usize, ClientError> {
        let req = Request::AddShard {
            datasets: repo.datasets().to_vec(),
            global_ids: global_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Replaces shard `shard`'s contents.
    pub fn rebuild_shard(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<(), ClientError> {
        let req = Request::RebuildShard {
            shard: shard as u32,
            datasets: repo.datasets().to_vec(),
            global_ids: global_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }

    /// Divides shard `shard` in two: datasets whose global ids are in
    /// `move_ids` land in a new shard, whose index is returned. Served
    /// answers never change across the transition. A rejection (unknown
    /// shard, id not held, empty side) surfaces as
    /// [`ClientError::Server`] with kind `InvalidQuery` — the op carries
    /// no data, so a rejection means the request named state that doesn't
    /// match the served catalog.
    pub fn split_shard(
        &mut self,
        shard: usize,
        move_ids: &[GlobalId],
    ) -> Result<usize, ClientError> {
        let req = Request::SplitShard {
            shard: shard as u32,
            move_ids: move_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Coalesces shards `a` and `b` into one; returns the surviving
    /// index, `min(a, b)` (shards past `max(a, b)` shift down by one).
    /// Rejections surface like [`split_shard`](Self::split_shard)'s.
    pub fn merge_shards(&mut self, a: usize, b: usize) -> Result<usize, ClientError> {
        let req = Request::MergeShards {
            a: a as u32,
            b: b as u32,
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Fetches the server's aggregated statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Self::unexpected("stats", other),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let token = 0x70_6F_6E_67;
        match self.call(&Request::Ping { token })? {
            Response::Pong { token: t } if t == token => Ok(()),
            other => Self::unexpected("pong", other),
        }
    }

    /// Asks the server to shut down gracefully (admitted work is drained
    /// and answered before the server exits).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }

    /// Holds one executor for `ms` milliseconds (capped server-side) — a
    /// testing aid for backpressure drills.
    pub fn sleep(&mut self, ms: u32) -> Result<(), ClientError> {
        match self.call(&Request::Sleep { ms })? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }
}
