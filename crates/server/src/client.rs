//! Blocking client for the `dds-server` wire protocol.
//!
//! One request in flight per connection: every call writes a frame, reads
//! the answering frame, and surfaces the transport/protocol layer as a
//! typed [`ClientError`] while passing the *engine's* answers — including
//! `EngineError`s — through untouched, so a served
//! [`query`](DdsClient::query) returns exactly the in-process
//! `ShardedEngine::query` result (pinned byte-identical by the loopback
//! tests).

use crate::protocol::{Request, Response, ServerError, ServerStats};
use crate::wire::{
    read_frame, write_frame, FrameReadError, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use dds_core::engine::EngineError;
use dds_core::framework::{LogicalExpr, Repository};
use dds_core::shard::GlobalId;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A query answer exactly as the in-process engine would return it.
pub type EngineResult = Result<Vec<GlobalId>, EngineError>;

/// Why a client call failed *before* producing an engine answer.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server closed).
    Io(io::Error),
    /// The response violated the wire grammar.
    Wire(WireError),
    /// The server's admission queue was full; the request was not
    /// executed — retry later (the typed backpressure signal).
    Busy,
    /// The server answered a typed request-level error (protocol
    /// rejection, refused ingest, shutting down).
    Server(ServerError),
    /// The server answered with a well-formed but unexpected response
    /// kind.
    UnexpectedResponse {
        /// What the call was waiting for.
        expected: &'static str,
        /// What arrived instead (debug rendering).
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Busy => write!(f, "server busy: admission queue full, retry later"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} response, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Eof => ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            FrameReadError::Io(e) => ClientError::Io(e),
            FrameReadError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// A blocking connection to a [`DdsServer`](crate::DdsServer).
#[derive(Debug)]
pub struct DdsClient {
    stream: TcpStream,
    max_frame_len: u32,
}

impl DdsClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<DdsClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(DdsClient {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Lowers (or raises) the frame bound this client accepts and emits.
    pub fn with_max_frame_len(mut self, max_frame_len: u32) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    /// One request/response round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (op, payload) = req.encode();
        write_frame(
            &mut self.stream,
            PROTOCOL_VERSION,
            op,
            &payload,
            self.max_frame_len,
        )?;
        let frame = read_frame(&mut self.stream, self.max_frame_len)?;
        if frame.version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion { got: frame.version }.into());
        }
        match Response::decode(frame.opcode, &frame.payload)? {
            Response::Busy => Err(ClientError::Busy),
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(expected: &'static str, got: Response) -> Result<T, ClientError> {
        Err(ClientError::UnexpectedResponse {
            expected,
            got: format!("{got:?}"),
        })
    }

    /// Answers one expression — the served `ShardedEngine::query`.
    pub fn query(&mut self, expr: &LogicalExpr) -> Result<EngineResult, ClientError> {
        match self.call(&Request::Query(expr.clone()))? {
            Response::Hits(res) => Ok(res),
            other => Self::unexpected("hits", other),
        }
    }

    /// Answers a batch — the served `ShardedEngine::query_batch`,
    /// input-ordered.
    pub fn query_batch(&mut self, exprs: &[LogicalExpr]) -> Result<Vec<EngineResult>, ClientError> {
        match self.call(&Request::QueryBatch(exprs.to_vec()))? {
            Response::BatchHits(res) => Ok(res),
            other => Self::unexpected("batch hits", other),
        }
    }

    /// Ingests a new shard; returns its index for later rebuilds. A
    /// rejected ingest surfaces as
    /// [`ClientError::Server`] with kind `Ingest`.
    pub fn add_shard(
        &mut self,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<usize, ClientError> {
        let req = Request::AddShard {
            datasets: repo.datasets().to_vec(),
            global_ids: global_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::ShardAdded { shard } => Ok(shard as usize),
            other => Self::unexpected("shard-added", other),
        }
    }

    /// Replaces shard `shard`'s contents.
    pub fn rebuild_shard(
        &mut self,
        shard: usize,
        repo: &Repository,
        global_ids: &[GlobalId],
    ) -> Result<(), ClientError> {
        let req = Request::RebuildShard {
            shard: shard as u32,
            datasets: repo.datasets().to_vec(),
            global_ids: global_ids.to_vec(),
        };
        match self.call(&req)? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }

    /// Fetches the server's aggregated statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Self::unexpected("stats", other),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let token = 0x70_6F_6E_67;
        match self.call(&Request::Ping { token })? {
            Response::Pong { token: t } if t == token => Ok(()),
            other => Self::unexpected("pong", other),
        }
    }

    /// Asks the server to shut down gracefully (admitted work is drained
    /// and answered before the server exits).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }

    /// Holds one executor for `ms` milliseconds (capped server-side) — a
    /// testing aid for backpressure drills.
    pub fn sleep(&mut self, ms: u32) -> Result<(), ClientError> {
        match self.call(&Request::Sleep { ms })? {
            Response::Done => Ok(()),
            other => Self::unexpected("done", other),
        }
    }
}
