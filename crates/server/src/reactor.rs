//! A minimal level-triggered readiness loop for the session I/O threads.
//!
//! [`Reactor::poll`] wraps POSIX `poll(2)` (via the vendored `poll-shim`
//! crate — no async runtime, no `mio`): the caller hands it the fds it
//! currently cares about with a read/write interest each, and gets back
//! which of them are ready. Level-triggered on purpose: a session that
//! consumes only part of what's pending (one frame of a pipelined burst,
//! one `write` of a long response) sees its fd again on the next call,
//! so the state machines in [`crate::server`] never need edge-tracking.
//!
//! Each reactor owns a [`Waker`] endpoint — a nonblocking
//! `UnixStream::pair` whose read half is polled alongside the sockets —
//! so other threads (the listener handing over a fresh connection, an
//! executor delivering a finished job) can interrupt a blocking poll
//! without ever touching the sockets themselves. Wakes are coalesced:
//! any number of `wake` calls while the pipe is non-empty cost one byte
//! and one drain.
//!
//! Callers always pass `poll` a finite timeout (the I/O loop uses
//! 250 ms), so time-based housekeeping — notably the mid-I/O stall
//! sweep behind `ServerConfig::stall_timeout` — runs on every loop
//! iteration even when no fd ever becomes ready: a completely silent
//! stalled peer still gets reaped within one poll interval of its
//! deadline.

use poll_shim::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;

/// What a source wants to hear about. Sessions want `Read` while
/// expecting request bytes and `Write` while flushing a response; a
/// session awaiting its executor result wants neither and is simply not
/// submitted to [`Reactor::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    /// Readiness to read (`POLLIN`).
    Read,
    /// Readiness to write (`POLLOUT`).
    Write,
}

/// One ready source, reported by [`Reactor::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Ready {
    /// Index of the source in the `sources` slice passed to `poll`.
    pub token: usize,
    /// The requested interest is satisfied (or the kernel flagged an
    /// error/hangup condition, which a read/write will surface as `Err`
    /// or EOF — the caller should attempt the I/O either way).
    pub ready: bool,
}

/// The cross-thread wakeup handle paired with one [`Reactor`]. Cheap to
/// clone the underlying socket is not — hold it in an `Arc` next to the
/// queues it signals about.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Interrupts the paired reactor's current (or next) `poll`. Never
    /// blocks and never fails: the write end is nonblocking, and a full
    /// pipe already guarantees the reactor will wake.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// The readiness loop state: the waker's read half plus reusable
/// `pollfd` scratch.
#[derive(Debug)]
pub struct Reactor {
    rx: UnixStream,
    fds: Vec<PollFd>,
}

impl Reactor {
    /// A fresh reactor and its paired [`Waker`].
    pub fn new() -> io::Result<(Reactor, Waker)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Reactor {
                rx,
                fds: Vec::new(),
            },
            Waker { tx },
        ))
    }

    /// Waits up to `timeout_ms` (`-1` = indefinitely) for the waker or
    /// any source to become ready. Ready sources are appended to `ready`
    /// (cleared first) as indexes into `sources`; the return value says
    /// whether the waker fired (its pipe is drained before returning, so
    /// coalesced wakes cost one syscall).
    pub fn poll(
        &mut self,
        sources: &[(RawFd, Interest)],
        timeout_ms: i32,
        ready: &mut Vec<Ready>,
    ) -> io::Result<bool> {
        use std::os::fd::AsRawFd;
        ready.clear();
        self.fds.clear();
        self.fds.push(PollFd::new(self.rx.as_raw_fd(), POLLIN));
        for &(fd, interest) in sources {
            let events = match interest {
                Interest::Read => POLLIN,
                Interest::Write => POLLOUT,
            };
            self.fds.push(PollFd::new(fd, events));
        }
        poll_fds(&mut self.fds, timeout_ms)?;
        let mut woken = false;
        if self.fds[0].revents != 0 {
            woken = true;
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        for (i, slot) in self.fds.iter().enumerate().skip(1) {
            // Error conditions count as ready even if the interest bit is
            // absent: the caller's read/write surfaces the failure, which
            // is how a half-dead session gets torn down.
            if slot.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0 {
                ready.push(Ready {
                    token: i - 1,
                    ready: true,
                });
            }
        }
        Ok(woken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_interrupts_and_coalesces() {
        let (mut reactor, waker) = Reactor::new().unwrap();
        waker.wake();
        waker.wake();
        waker.wake();
        let mut ready = Vec::new();
        assert!(reactor.poll(&[], 1000, &mut ready).unwrap());
        assert!(ready.is_empty());
        // Drained: the next zero-timeout poll reports no wake.
        assert!(!reactor.poll(&[], 0, &mut ready).unwrap());
    }

    #[test]
    fn reports_socket_readiness_by_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let (mut reactor, _waker) = Reactor::new().unwrap();
        let mut ready = Vec::new();
        // `a` has nothing to read, but is certainly writable.
        let sources = [
            (a.as_raw_fd(), Interest::Read),
            (a.as_raw_fd(), Interest::Write),
        ];
        reactor.poll(&sources, 1000, &mut ready).unwrap();
        let tokens: Vec<usize> = ready.iter().map(|r| r.token).collect();
        assert_eq!(tokens, vec![1]);
        // After the peer writes, the read interest fires too.
        use std::io::Write as _;
        (&b).write_all(b"hi").unwrap();
        reactor.poll(&sources, 1000, &mut ready).unwrap();
        let tokens: Vec<usize> = ready.iter().map(|r| r.token).collect();
        assert_eq!(tokens, vec![0, 1]);
    }
}
