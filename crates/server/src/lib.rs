//! `dds-server` — a network-facing query service over the sharded
//! distribution-aware search engine.
//!
//! The paper frames dataset search as a service a data marketplace
//! exposes to searchers; `dds_core::shard::ShardedEngine` is that service
//! in-process, and this crate puts it behind a wire boundary using **std
//! only** (`std::net::TcpListener`, scoped threads — no async runtime, no
//! serde):
//!
//! * [`wire`] — length-prefixed, versioned frames with checked primitive
//!   codecs; malformed, truncated and oversized input surface as typed
//!   [`wire::WireError`]s, never panics. Grammar in `PROTOCOL.md`.
//! * [`protocol`] — explicit encode/decode for query expressions, hits,
//!   errors, admin ops and the aggregated [`protocol::ServerStats`];
//!   decoding also validates the semantic bounds that would panic the
//!   engine (NaN intervals, DNF explosions, empty datasets).
//! * [`server`] — [`DdsServer`]: a listener, per-connection sessions, a
//!   **bounded admission queue** (overload answers a typed
//!   [`protocol::Response::Busy`] instead of buffering unboundedly — the
//!   backpressure contract), a fixed executor pool running jobs on the
//!   engine's `dds_pool`-backed batch paths, and graceful shutdown
//!   (gate + drain: everything admitted is answered).
//! * [`client`] — [`DdsClient`]: a blocking connection with single/batch
//!   query calls and admin calls (`add_shard`, `rebuild_shard`, `stats`,
//!   `shutdown_server`).
//!
//! Served answers are **byte-identical** to in-process `ShardedEngine`
//! answers — `EngineError`s included — under concurrent clients; the
//! loopback integration tests pin this.
//!
//! ```no_run
//! use dds_core::pref::PrefBuildParams;
//! use dds_core::ptile::PtileBuildParams;
//! use dds_core::shard::ShardedEngine;
//! use dds_server::{DdsClient, DdsServer, ServerConfig};
//!
//! let engine = ShardedEngine::new(
//!     &[1],
//!     PtileBuildParams::exact_centralized(),
//!     PrefBuildParams::exact_centralized(),
//! );
//! let server = DdsServer::serve(engine, "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = DdsClient::connect(server.local_addr())?;
//! client.ping()?;
//! client.shutdown_server()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{ClientError, DdsClient, EngineResult};
pub use protocol::{Request, Response, ServerError, ServerErrorKind, ServerStats};
pub use server::{DdsServer, ServerConfig};
pub use wire::{WireError, PROTOCOL_VERSION};
