//! `dds-server` — a network-facing query service over the sharded
//! distribution-aware search engine.
//!
//! The paper frames dataset search as a service a data marketplace
//! exposes to searchers; `dds_core::shard::ShardedEngine` is that service
//! in-process, and this crate puts it behind a wire boundary using **std
//! only** (`std::net`, a vendored `poll(2)` shim — no async runtime, no
//! serde; POSIX-only because of the readiness loop):
//!
//! * [`wire`] — length-prefixed, versioned frames with checked primitive
//!   codecs; malformed, truncated and oversized input surface as typed
//!   [`wire::WireError`]s, never panics. Grammar in `PROTOCOL.md`.
//! * [`protocol`] — explicit encode/decode for query expressions, hits,
//!   errors, admin ops, the aggregated [`protocol::ServerStats`] and the
//!   telemetry [`protocol::MetricsReport`] (per-stage latency histogram
//!   snapshots + slow-query traces, with a Prometheus-style
//!   `render_text`);
//!   decoding also validates the semantic bounds that would panic the
//!   engine (NaN intervals, DNF explosions, empty datasets).
//! * [`reactor`] — the level-triggered readiness loop ([`poll(2)`] via
//!   the vendored `poll-shim`) plus a cross-thread [`reactor::Waker`].
//! * [`buffer`] — the size-classed session [`buffer::BufferPool`]:
//!   steady-state serving allocates nothing per frame, and a warm pool
//!   makes reconnect storms allocation-free too.
//! * [`server`] — [`DdsServer`]: a listener, a fixed pool of I/O threads
//!   driving session state machines over nonblocking sockets (thousands
//!   of idle connections per thread), a **bounded admission queue**
//!   (overload answers a typed [`protocol::Response::Busy`] instead of
//!   buffering unboundedly — the backpressure contract), optional
//!   per-session token-bucket [`RateLimit`]s (a typed `throttled` error,
//!   never silent drops), a fixed executor pool running jobs on the
//!   engine's `dds_pool`-backed batch paths, and graceful shutdown
//!   (gate + drain: everything admitted is answered).
//! * [`client`] — [`DdsClient`]: a blocking connection with single/batch
//!   query calls, admin calls (`add_shard`, `rebuild_shard`, `stats`,
//!   `metrics`, `shutdown_server`), configurable socket timeouts
//!   ([`ClientConfig`]),
//!   and an optional self-healing [`RetryPolicy`] (reconnect, exponential
//!   backoff with deterministic jitter, deadline, and dedup `request_id`s
//!   so retried ingests cannot double-apply).
//! * [`fault`] — deterministic fault injection: a seeded
//!   [`fault::FaultPlan`] (torn writes, resets, stalls, trickle,
//!   delayed connects) applied by a [`fault::FaultStream`] wrapper and a
//!   [`fault::ChaosProxy`] harness, so every network failure a test
//!   exercises is reproducible from its seed.
//!
//! Served answers are **byte-identical** to in-process `ShardedEngine`
//! answers — `EngineError`s included — under concurrent clients; the
//! loopback integration tests pin this.
//!
//! [`poll(2)`]: https://man7.org/linux/man-pages/man2/poll.2.html
//!
//! ```no_run
//! use dds_core::pref::PrefBuildParams;
//! use dds_core::ptile::PtileBuildParams;
//! use dds_core::shard::ShardedEngine;
//! use dds_server::{DdsClient, DdsServer, ServerConfig};
//!
//! let engine = ShardedEngine::new(
//!     &[1],
//!     PtileBuildParams::exact_centralized(),
//!     PrefBuildParams::exact_centralized(),
//! );
//! let server = DdsServer::serve(engine, "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = DdsClient::connect(server.local_addr())?;
//! client.ping()?;
//! client.shutdown_server()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod client;
pub mod fault;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, DdsClient, EngineResult, RetryPolicy};
pub use fault::{ChaosProxy, ConnPlan, Fault, FaultPlan, FaultStream};
pub use protocol::{
    MetricsReport, Request, Response, RetrySafety, ServerError, ServerErrorKind, ServerStats,
};
pub use server::{DdsServer, RateLimit, ServerConfig};
pub use wire::{WireError, PROTOCOL_VERSION};
