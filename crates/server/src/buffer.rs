//! Size-classed reusable byte buffers for the session layer.
//!
//! Every live session holds two buffers (request body in, encoded
//! response out) acquired from the server's [`BufferPool`] and returned
//! when the session closes. Buffers keep their capacity across frames
//! (`clear` never shrinks a `Vec`), so a session serving steady-state
//! traffic allocates **nothing per frame** — and with the pool, a
//! reconnect-storm allocates nothing per *session* either once the pool
//! is warm. The `dds-bench` counting-allocator experiment (`--e15`) pins
//! the per-frame half of this; the `buffers_reused` server counter makes
//! the per-session half observable in production.
//!
//! Size classes are powers of two from 4 KiB to 512 KiB, at most
//! [`PER_CLASS_RETENTION`] retained buffers each (≈ 65 MiB worst case,
//! in practice a handful of classes see traffic). Oversized buffers —
//! a response that outgrew the largest class — are classified by
//! capacity into the largest class they cover, so their capacity keeps
//! serving; acquire only ever hands out at least what was asked.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Smallest class: covers the length prefix plus every control-op frame
/// with room to spare.
const MIN_CLASS_BYTES: usize = 4 << 10;

/// Number of power-of-two classes: 4 KiB … 512 KiB.
const N_CLASSES: usize = 8;

/// Retained buffers per class; a release beyond this drops the buffer
/// (bounded memory under a connection burst that later subsides).
const PER_CLASS_RETENTION: usize = 64;

/// Byte size of class `c`.
fn class_bytes(c: usize) -> usize {
    MIN_CLASS_BYTES << c
}

/// The smallest class holding at least `min_cap` bytes, or `None` if
/// even the largest is too small.
fn class_covering(min_cap: usize) -> Option<usize> {
    (0..N_CLASSES).find(|&c| class_bytes(c) >= min_cap)
}

/// The largest class a buffer of capacity `cap` can serve, or `None` if
/// the capacity is below even the smallest class (never produced by
/// [`BufferPool::acquire`], but `release` accepts any buffer).
fn class_served(cap: usize) -> Option<usize> {
    (0..N_CLASSES).rev().find(|&c| cap >= class_bytes(c))
}

/// A bounded pool of size-classed `Vec<u8>`s shared by all sessions of
/// one server.
#[derive(Debug)]
pub struct BufferPool {
    classes: [Mutex<Vec<Vec<u8>>>; N_CLASSES],
    reused: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            classes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            reused: AtomicU64::new(0),
        }
    }

    /// An empty (cleared) buffer with capacity ≥ `min_cap`: pooled if the
    /// covering class has one (counted in [`reused`](Self::reused)),
    /// freshly allocated at the class size otherwise. A `min_cap` beyond
    /// the largest class allocates exactly `min_cap` — it can still come
    /// home via [`release`](Self::release).
    pub fn acquire(&self, min_cap: usize) -> Vec<u8> {
        match class_covering(min_cap) {
            Some(c) => {
                if let Some(buf) = self.classes[c].lock().unwrap().pop() {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    return buf;
                }
                Vec::with_capacity(class_bytes(c))
            }
            None => Vec::with_capacity(min_cap),
        }
    }

    /// Returns a buffer to the pool (cleared; capacity kept). Dropped
    /// instead if its capacity is below the smallest class or the class
    /// is already at its retention bound.
    pub fn release(&self, mut buf: Vec<u8>) {
        let Some(c) = class_served(buf.capacity()) else {
            return;
        };
        let mut class = self.classes[c].lock().unwrap();
        if class.len() < PER_CLASS_RETENTION {
            buf.clear();
            class.push(buf);
        }
    }

    /// How many acquisitions were served from the pool instead of the
    /// allocator — the `buffers_reused` stats counter.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_round_trip_reuses() {
        let pool = BufferPool::new();
        let mut buf = pool.acquire(100);
        assert!(buf.capacity() >= MIN_CLASS_BYTES);
        assert!(buf.is_empty());
        assert_eq!(pool.reused(), 0);
        buf.extend_from_slice(b"dirty");
        let cap = buf.capacity();
        pool.release(buf);
        let again = pool.acquire(100);
        assert_eq!(pool.reused(), 1);
        assert_eq!(again.capacity(), cap, "same buffer came back");
        assert!(again.is_empty(), "released buffers are cleared");
    }

    #[test]
    fn classes_cover_requested_capacity() {
        let pool = BufferPool::new();
        for min_cap in [1, 4096, 4097, 100_000, class_bytes(N_CLASSES - 1) + 1] {
            let buf = pool.acquire(min_cap);
            assert!(buf.capacity() >= min_cap, "min_cap = {min_cap}");
            pool.release(buf);
        }
    }

    #[test]
    fn grown_buffers_reclassify_by_capacity() {
        let pool = BufferPool::new();
        let mut buf = pool.acquire(16);
        // The session outgrew the smallest class mid-frame.
        buf.reserve(3 * MIN_CLASS_BYTES);
        pool.release(buf);
        // A request the smallest class cannot cover is served by the
        // grown buffer, not a fresh allocation.
        let big = pool.acquire(2 * MIN_CLASS_BYTES);
        assert_eq!(pool.reused(), 1);
        assert!(big.capacity() >= 2 * MIN_CLASS_BYTES);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(PER_CLASS_RETENTION + 10) {
            pool.release(Vec::with_capacity(MIN_CLASS_BYTES));
        }
        let retained = pool.classes[0].lock().unwrap().len();
        assert_eq!(retained, PER_CLASS_RETENTION);
    }
}
