//! Request/response payload codecs — the grammar of `PROTOCOL.md`.
//!
//! Encoding is explicit per type (no serde, no derive): every enum gets a
//! written-down discriminant, every float travels as its IEEE-754 bit
//! pattern (so answers survive the wire *bit-identically*, `-0.0`
//! included), every sequence is count-prefixed with the count checked
//! against the remaining bytes. Decoding **validates semantics** as well
//! as syntax: anything that would panic the engine — NaN intervals,
//! inverted rectangles, empty datasets, expressions whose DNF expansion
//! explodes — is rejected here as a typed [`WireError`], which the server
//! answers with a [`Response::Error`] instead of dying.

use crate::wire::{Reader, WireError, Writer};
use dds_core::engine::EngineError;
use dds_core::framework::{Dataset, Interval, LogicalExpr, MeasureFunction, Predicate};
use dds_core::shard::GlobalId;
use dds_core::telemetry::{bucket_bounds, HistogramSnapshot, QueryTrace, BUCKETS};
use dds_geom::Rect;
use std::fmt;

/// Deepest `And`/`Or` nesting a decoded expression may have (the decoder
/// recurses, so unbounded nesting would be a remote stack overflow).
pub const MAX_EXPR_DEPTH: usize = 64;

/// Most DNF clauses a decoded expression may expand to — the engine's own
/// `LogicalExpr::to_dnf` bound, enforced here so a hostile expression is
/// rejected with a typed error instead of panicking an executor.
pub const MAX_DNF_CLAUSES: u64 = dds_core::framework::MAX_DNF_CLAUSES;

/// Request opcodes.
pub mod opcode {
    /// Single query expression.
    pub const QUERY: u8 = 0x01;
    /// Batch of query expressions.
    pub const QUERY_BATCH: u8 = 0x02;
    /// Ingest a new shard.
    pub const ADD_SHARD: u8 = 0x03;
    /// Replace an existing shard.
    pub const REBUILD_SHARD: u8 = 0x04;
    /// Server statistics snapshot.
    pub const STATS: u8 = 0x05;
    /// Liveness check.
    pub const PING: u8 = 0x06;
    /// Graceful shutdown.
    pub const SHUTDOWN: u8 = 0x07;
    /// Hold an executor for a bounded time (testing aid).
    pub const SLEEP: u8 = 0x08;
    /// Divide one shard in two (lifecycle admin op).
    pub const SPLIT_SHARD: u8 = 0x09;
    /// Coalesce two shards into one (lifecycle admin op).
    pub const MERGE_SHARDS: u8 = 0x0A;
    /// Telemetry snapshot: stage latency histograms + slow-query traces.
    pub const METRICS: u8 = 0x0B;

    /// Response: single-query answer.
    pub const HITS: u8 = 0x81;
    /// Response: batch answer.
    pub const BATCH_HITS: u8 = 0x82;
    /// Response: shard ingested.
    pub const SHARD_ADDED: u8 = 0x83;
    /// Response: op completed with no payload (rebuild, sleep, shutdown).
    pub const DONE: u8 = 0x84;
    /// Response: statistics snapshot.
    pub const STATS_REPLY: u8 = 0x85;
    /// Response: liveness echo.
    pub const PONG: u8 = 0x86;
    /// Response: admission queue full — retry later.
    pub const BUSY: u8 = 0x87;
    /// Response: typed request-level failure.
    pub const ERROR: u8 = 0x88;
    /// Response: telemetry snapshot.
    pub const METRICS_REPLY: u8 = 0x89;
}

/// Longest an executor may be held by a [`Request::Sleep`] (ms).
pub const MAX_SLEEP_MS: u32 = 10_000;

/// `Sleep` ms value that makes the executor **panic deliberately**
/// instead of sleeping — the panic drill, for exercising the server's
/// panic isolation end to end (the job is answered with a typed
/// `internal` error and the executor survives). Like `Sleep` itself it
/// is inert unless the server opts in (`ServerConfig::allow_sleep`).
pub const PANIC_DRILL_MS: u32 = u32::MAX;

/// A decoded client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Answer one expression.
    Query(LogicalExpr),
    /// Answer a batch of expressions (input-ordered results).
    QueryBatch(Vec<LogicalExpr>),
    /// Ingest a new shard under caller-assigned stable global ids.
    AddShard {
        /// Client-chosen retry token; `0` means "no dedup". A nonzero id
        /// is remembered by the server's dedup window: a retransmission
        /// (same id) replays the recorded answer instead of ingesting
        /// twice, which is what makes a retried `AddShard` safe.
        request_id: u64,
        /// The shard's datasets (validated: non-empty, one schema, finite
        /// coordinates).
        datasets: Vec<Dataset>,
        /// `global_ids[i]` names `datasets[i]` forever.
        global_ids: Vec<GlobalId>,
    },
    /// Replace shard `shard`'s contents.
    RebuildShard {
        /// Index returned by the original AddShard.
        shard: u32,
        /// Retry token, like [`Request::AddShard`]'s (`0` = no dedup).
        request_id: u64,
        /// Replacement datasets.
        datasets: Vec<Dataset>,
        /// Replacement ids (re-using the replaced shard's ids is normal).
        global_ids: Vec<GlobalId>,
    },
    /// Server statistics snapshot (answered by the session directly — it
    /// never occupies an executor or an admission slot).
    Stats,
    /// Liveness check echoing `token` (session-direct, like Stats).
    Ping {
        /// Echoed verbatim in the Pong.
        token: u64,
    },
    /// Graceful shutdown: stop admitting, drain the queue, exit.
    Shutdown,
    /// Hold an executor for `ms` milliseconds (capped at
    /// [`MAX_SLEEP_MS`]). A testing aid for backpressure drills — it goes
    /// through the admission queue like real work.
    Sleep {
        /// Milliseconds to hold the executor.
        ms: u32,
    },
    /// Divide shard `shard` in two: the datasets whose global ids are in
    /// `move_ids` land in a new shard (the `ShardAdded` answer carries
    /// its index). Answers never change — ids are stable and sampling is
    /// seeded by id.
    SplitShard {
        /// The shard to divide.
        shard: u32,
        /// Ids moving to the new shard.
        move_ids: Vec<GlobalId>,
    },
    /// Coalesce shards `a` and `b` into one (the `ShardAdded` answer
    /// carries the surviving index, `min(a, b)`; shards past `max(a, b)`
    /// shift down by one).
    MergeShards {
        /// One shard of the pair.
        a: u32,
        /// The other shard.
        b: u32,
    },
    /// Telemetry snapshot: per-stage latency histograms and recent
    /// slow-query traces (session-direct, like Stats — it must work even
    /// while the admission queue is saturated, which is exactly when you
    /// want to look at the latency histograms). The append-only Stats
    /// frame is untouched: counters and histograms evolve independently.
    Metrics,
}

/// Whether a request whose **fate is unknown** (the connection died
/// after the frame — or part of it — went out, and no answer came back)
/// may be re-sent. This is the contract every retrying layer — the
/// client's [`RetryPolicy`](crate::client::RetryPolicy) today, a routing
/// tier re-issuing requests tomorrow — keys off; the full table lives in
/// `PROTOCOL.md`.
///
/// Note the asymmetry with *answered* rejections: `Busy`, `throttled`
/// and `unavailable` answers mean nothing was executed or buffered, so
/// after one of those **any** op may be retried. Classification only
/// gates the unknown-fate case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetrySafety {
    /// Re-sending can never change served state beyond what one
    /// execution would: reads (`Query`, `QueryBatch`, `Stats`, `Ping`)
    /// and the data-free lifecycle admin ops (`SplitShard`,
    /// `MergeShards`), whose rejections are permanent-error-typed — a
    /// duplicate of a committed transition names stale state and is
    /// answered with the same `invalid-query` error every time.
    Safe,
    /// Safe **only** when the request carries a nonzero `request_id` for
    /// the server's dedup window (`AddShard`, `RebuildShard`): without
    /// one, a retry of an applied-but-unanswered ingest double-ingests.
    SafeIfDeduped,
    /// Never re-send on unknown fate: `Shutdown` (a duplicate hits the
    /// next server generation) and `Sleep` (occupies an executor per
    /// copy).
    Unsafe,
}

impl Request {
    /// This op's [`RetrySafety`] class.
    pub fn retry_safety(&self) -> RetrySafety {
        match self {
            Request::Query(_)
            | Request::QueryBatch(_)
            | Request::Stats
            | Request::Metrics
            | Request::Ping { .. }
            | Request::SplitShard { .. }
            | Request::MergeShards { .. } => RetrySafety::Safe,
            Request::AddShard { .. } | Request::RebuildShard { .. } => RetrySafety::SafeIfDeduped,
            Request::Shutdown | Request::Sleep { .. } => RetrySafety::Unsafe,
        }
    }

    /// The nonzero retry token of a dedup-capable op, if it carries one.
    pub fn dedup_id(&self) -> Option<u64> {
        match self {
            Request::AddShard { request_id, .. } | Request::RebuildShard { request_id, .. }
                if *request_id != 0 =>
            {
                Some(*request_id)
            }
            _ => None,
        }
    }
}

/// A server response.
// `Stats` dwarfs the other variants (one u64 per counter, newest-last),
// but responses are short-lived stack temporaries encoded straight onto
// the wire — boxing would buy nothing except an allocation on the stats
// path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Single-query answer — exactly the in-process
    /// `ShardedEngine::query` result, errors included.
    Hits(Result<Vec<GlobalId>, EngineError>),
    /// Batch answer — exactly `ShardedEngine::query_batch`, input-ordered.
    BatchHits(Vec<Result<Vec<GlobalId>, EngineError>>),
    /// Shard ingested at this index.
    ShardAdded {
        /// Index usable in a later RebuildShard.
        shard: u32,
    },
    /// Op completed with no payload.
    Done,
    /// Statistics snapshot.
    Stats(ServerStats),
    /// Liveness echo.
    Pong {
        /// The request's token.
        token: u64,
    },
    /// The bounded admission queue is full; nothing was executed or
    /// buffered — retry later. This is the backpressure signal.
    Busy,
    /// Typed request-level failure (malformed payload, rejected ingest,
    /// server shutting down).
    Error(ServerError),
    /// Telemetry snapshot: stage latency histograms + slow-query traces.
    Metrics(MetricsReport),
}

/// What kind of request-level failure a [`Response::Error`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerErrorKind {
    /// The request violated the wire grammar or a semantic bound.
    Protocol,
    /// A shard ingest was rejected (`dds_core::shard::IngestError`).
    Ingest,
    /// The server is shutting down; no work was done. Transient — a
    /// retry against a live server would succeed.
    Unavailable,
    /// The request is well-formed but can never succeed against the
    /// served data (e.g. a query whose dimensions don't match the served
    /// schema). Permanent — retrying the same request is pointless.
    InvalidQuery,
    /// The server failed while producing the answer: an executor panicked
    /// executing the request, or the answer could not be shipped within
    /// the protocol's frame bound. The server itself stays up.
    Internal,
    /// The session exhausted its token-bucket rate limit
    /// (`ServerConfig::rate_limit`); nothing was executed or buffered.
    /// Transient, like `Busy` — back off and retry; the bucket refills at
    /// the configured rate.
    Throttled,
}

impl ServerErrorKind {
    /// Whether this kind means "the server refused to do the work right
    /// now, try again" (`Unavailable`, `Throttled`) rather than "this
    /// request can never succeed as sent" (everything else). Transient
    /// answers executed and buffered **nothing**, so any op — ingest
    /// included — may be retried after one.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServerErrorKind::Unavailable | ServerErrorKind::Throttled
        )
    }
}

impl fmt::Display for ServerErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerErrorKind::Protocol => write!(f, "protocol"),
            ServerErrorKind::Ingest => write!(f, "ingest"),
            ServerErrorKind::Unavailable => write!(f, "unavailable"),
            ServerErrorKind::InvalidQuery => write!(f, "invalid-query"),
            ServerErrorKind::Internal => write!(f, "internal"),
            ServerErrorKind::Throttled => write!(f, "throttled"),
        }
    }
}

/// A typed request-level failure, serialized as kind + human-readable
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerError {
    /// Failure class (clients branch on this).
    pub kind: ServerErrorKind,
    /// Human-readable detail (the `Display` of the underlying error).
    pub message: String,
}

impl ServerError {
    /// Convenience constructor.
    pub fn new(kind: ServerErrorKind, message: impl Into<String>) -> Self {
        ServerError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind, self.message)
    }
}

impl std::error::Error for ServerError {}

/// Aggregated server counters, all monotone except the gauges
/// (`sessions_active`, `n_shards`, `n_datasets`). Serialized as a
/// count-prefixed `u64` list so a newer server can append fields without
/// breaking an older client (unknown trailing fields are skipped).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Frames received and parsed as requests (every opcode).
    pub requests: u64,
    /// Single queries executed.
    pub queries: u64,
    /// Batch queries executed.
    pub batch_queries: u64,
    /// Expressions across executed batches.
    pub batch_exprs: u64,
    /// Shard ingests executed (add + rebuild, successful or rejected).
    pub admin_ops: u64,
    /// Requests refused with [`Response::Busy`] (admission queue full).
    pub busy_rejections: u64,
    /// Requests refused because the server was shutting down.
    pub unavailable_rejections: u64,
    /// Frames that failed to decode (typed error answered).
    pub wire_errors: u64,
    /// Jobs accepted into the admission queue.
    pub jobs_admitted: u64,
    /// Jobs taken off the queue by an executor.
    pub jobs_dequeued: u64,
    /// Jobs fully executed (their response was produced).
    pub jobs_completed: u64,
    /// Payload bytes received (frame prefixes included).
    pub bytes_in: u64,
    /// Payload bytes sent (frame prefixes included).
    pub bytes_out: u64,
    /// Connections accepted over the server lifetime.
    pub sessions_opened: u64,
    /// Connections currently open.
    pub sessions_active: u64,
    /// Mask-cache hits across shards (`MaskCache` counters).
    pub cache_hits: u64,
    /// Mask-cache misses across shards.
    pub cache_misses: u64,
    /// Underlying index queries across shards.
    pub index_queries: u64,
    /// (expression, shard) scatter units skipped by shard routing.
    pub shards_routed_past: u64,
    /// Shards currently served.
    pub n_shards: u64,
    /// Datasets currently served.
    pub n_datasets: u64,
    /// Jobs whose execution panicked (answered with a typed `internal`
    /// error; the executor survives).
    pub executor_panics: u64,
    /// Work requests refused with a typed `throttled` error (the
    /// session's token bucket was empty).
    pub sessions_throttled: u64,
    /// Session buffers served from the [`crate::buffer::BufferPool`]
    /// instead of the allocator.
    pub buffers_reused: u64,
    /// Shard splits committed over the engine lifetime.
    pub shard_splits: u64,
    /// Shard merges committed over the engine lifetime.
    pub shard_merges: u64,
    /// Sessions closed by the stall deadline
    /// (`ServerConfig::stall_timeout`): the peer sat mid-frame or
    /// mid-flush past the deadline and its slot was reclaimed.
    pub sessions_reaped: u64,
    /// Work requests recognized as retransmissions — a nonzero
    /// `request_id` the dedup window had already seen (whether the
    /// original was still in flight or already answered).
    pub retries_attempted: u64,
    /// Retransmissions answered by **replaying** the recorded response
    /// instead of executing again — the duplicate ingests that did not
    /// happen. The newest counters are serialized **last**: the stats
    /// list extends by appending, so older clients keep decoding the
    /// prefix they know.
    pub requests_deduped: u64,
    /// (expression, shard) scatter units skipped by the synopsis
    /// mass-bound routing tier — pruning the bounding-box tier
    /// (`shards_routed_past`) could not prove. Appended after
    /// `requests_deduped` per the newest-last rule.
    pub shards_routed_by_synopsis: u64,
}

impl ServerStats {
    fn fields(&self) -> [u64; 30] {
        [
            self.requests,
            self.queries,
            self.batch_queries,
            self.batch_exprs,
            self.admin_ops,
            self.busy_rejections,
            self.unavailable_rejections,
            self.wire_errors,
            self.jobs_admitted,
            self.jobs_dequeued,
            self.jobs_completed,
            self.bytes_in,
            self.bytes_out,
            self.sessions_opened,
            self.sessions_active,
            self.cache_hits,
            self.cache_misses,
            self.index_queries,
            self.shards_routed_past,
            self.n_shards,
            self.n_datasets,
            self.executor_panics,
            self.sessions_throttled,
            self.buffers_reused,
            self.shard_splits,
            self.shard_merges,
            self.sessions_reaped,
            self.retries_attempted,
            self.requests_deduped,
            self.shards_routed_by_synopsis,
        ]
    }

    fn from_fields(f: &[u64]) -> Self {
        ServerStats {
            requests: f[0],
            queries: f[1],
            batch_queries: f[2],
            batch_exprs: f[3],
            admin_ops: f[4],
            busy_rejections: f[5],
            unavailable_rejections: f[6],
            wire_errors: f[7],
            jobs_admitted: f[8],
            jobs_dequeued: f[9],
            jobs_completed: f[10],
            bytes_in: f[11],
            bytes_out: f[12],
            sessions_opened: f[13],
            sessions_active: f[14],
            cache_hits: f[15],
            cache_misses: f[16],
            index_queries: f[17],
            shards_routed_past: f[18],
            n_shards: f[19],
            n_datasets: f[20],
            executor_panics: f[21],
            sessions_throttled: f[22],
            buffers_reused: f[23],
            shard_splits: f[24],
            shard_merges: f[25],
            sessions_reaped: f[26],
            retries_attempted: f[27],
            requests_deduped: f[28],
            shards_routed_by_synopsis: f[29],
        }
    }
}

/// Number of histograms a metrics frame must carry, in this fixed order:
/// `decode`, `queue`, `execute`, `write` (the server request lifecycle),
/// then `routing`, `scatter` (the engine's scatter path). A newer server
/// may append further histograms; decoders skip the extras.
pub const METRICS_HISTOGRAMS: usize = 6;

/// The Metrics answer: per-stage latency histogram snapshots plus the
/// recent slow-query traces. Counters live in the (append-only, untouched)
/// [`ServerStats`] frame; this frame is the *latency-distribution* view —
/// the two evolve independently.
///
/// Wire layout: a count-prefixed histogram list (each histogram is
/// self-delimiting — its own bucket count, which must be [`BUCKETS`] for
/// the histograms this build knows, then that many `u64` counts) followed
/// by a count-prefixed [`QueryTrace`] list. At least
/// [`METRICS_HISTOGRAMS`] histograms are required; extras are skipped, so
/// the list extends by appending like the stats frame.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Frame → typed request decode time.
    pub decode: HistogramSnapshot,
    /// Admission-queue wait (enqueue → executor dequeue).
    pub queue: HistogramSnapshot,
    /// Engine execution time in the executor pool.
    pub execute: HistogramSnapshot,
    /// Response encode + socket write time.
    pub write: HistogramSnapshot,
    /// Engine routing-decision time per query (`routing_skip`).
    pub routing: HistogramSnapshot,
    /// Engine per-scatter-unit execution time (one expression × one
    /// shard); its total doubles as "scatter units evaluated".
    pub scatter: HistogramSnapshot,
    /// Recent slow-query traces, oldest first.
    pub slow_queries: Vec<QueryTrace>,
}

impl MetricsReport {
    /// The histograms in wire order, labelled.
    pub fn stages(&self) -> [(&'static str, &HistogramSnapshot); METRICS_HISTOGRAMS] {
        [
            ("decode", &self.decode),
            ("queue", &self.queue),
            ("execute", &self.execute),
            ("write", &self.write),
            ("routing", &self.routing),
            ("scatter", &self.scatter),
        ]
    }

    /// Prometheus-style text rendering for scraping: one cumulative
    /// `_bucket{stage=…,le=…}` series per stage (zero-count buckets are
    /// elided; the `+Inf` bucket and `_count` always appear), p50/p99/p999
    /// summary gauges, and the retained slow-query count.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE dds_stage_latency_ns histogram\n");
        for (stage, h) in self.stages() {
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative = cumulative.saturating_add(c);
                let le = bucket_bounds(i).1;
                let _ = writeln!(
                    out,
                    "dds_stage_latency_ns_bucket{{stage=\"{stage}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "dds_stage_latency_ns_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {cumulative}"
            );
            let _ = writeln!(
                out,
                "dds_stage_latency_ns_count{{stage=\"{stage}\"}} {cumulative}"
            );
        }
        out.push_str("# TYPE dds_stage_latency_ns_quantile gauge\n");
        for (stage, h) in self.stages() {
            for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(
                        out,
                        "dds_stage_latency_ns_quantile{{stage=\"{stage}\",q=\"{label}\"}} {v}"
                    );
                }
            }
        }
        out.push_str("# TYPE dds_slow_queries_recent gauge\n");
        let _ = writeln!(out, "dds_slow_queries_recent {}", self.slow_queries.len());
        out
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn put_rect(w: &mut Writer, r: &Rect) {
    w.put_u32(r.dim() as u32);
    for h in 0..r.dim() {
        w.put_f64(r.lo_at(h));
    }
    for h in 0..r.dim() {
        w.put_f64(r.hi_at(h));
    }
}

fn get_rect(r: &mut Reader) -> Result<Rect, WireError> {
    let dim = r.u32()? as usize;
    if dim == 0 {
        return Err(WireError::BadValue {
            context: "rectangle dimension must be >= 1",
        });
    }
    // Each of the 2·dim facets is 8 bytes; bound the allocation first.
    let needed = dim.saturating_mul(16);
    if needed > r.remaining() {
        return Err(WireError::Truncated {
            needed,
            have: r.remaining(),
        });
    }
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..dim {
        lo.push(r.f64()?);
    }
    for _ in 0..dim {
        hi.push(r.f64()?);
    }
    for h in 0..dim {
        if lo[h].is_nan() || hi[h].is_nan() {
            return Err(WireError::BadValue {
                context: "NaN rectangle facet",
            });
        }
        if lo[h] > hi[h] {
            return Err(WireError::BadValue {
                context: "inverted rectangle (lo > hi)",
            });
        }
    }
    Ok(Rect::from_bounds(&lo, &hi))
}

fn put_predicate(w: &mut Writer, p: &Predicate) {
    match &p.measure {
        MeasureFunction::Percentile(r) => {
            w.put_u8(0x00);
            put_rect(w, r);
        }
        MeasureFunction::TopK { v, k } => {
            w.put_u8(0x01);
            w.put_u64(*k as u64);
            w.put_count(v.len());
            for x in v {
                w.put_f64(*x);
            }
        }
    }
    w.put_f64(p.theta.lo);
    w.put_f64(p.theta.hi);
}

fn get_predicate(r: &mut Reader) -> Result<Predicate, WireError> {
    let measure = match r.u8()? {
        0x00 => MeasureFunction::Percentile(get_rect(r)?),
        0x01 => {
            let k = r.u64()? as usize;
            let n = r.count(8)?;
            if n == 0 {
                return Err(WireError::BadValue {
                    context: "empty preference vector",
                });
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let x = r.f64()?;
                if !x.is_finite() {
                    return Err(WireError::BadValue {
                        context: "non-finite preference vector coordinate",
                    });
                }
                v.push(x);
            }
            MeasureFunction::TopK { v, k }
        }
        tag => {
            return Err(WireError::BadTag {
                context: "measure function",
                tag,
            })
        }
    };
    let lo = r.f64()?;
    let hi = r.f64()?;
    if lo.is_nan() || hi.is_nan() {
        return Err(WireError::BadValue {
            context: "NaN interval endpoint",
        });
    }
    if lo > hi {
        return Err(WireError::BadValue {
            context: "inverted interval (lo > hi)",
        });
    }
    Ok(Predicate {
        measure,
        theta: Interval::new(lo, hi),
    })
}

fn put_expr(w: &mut Writer, expr: &LogicalExpr) {
    match expr {
        LogicalExpr::Pred(p) => {
            w.put_u8(0x00);
            put_predicate(w, p);
        }
        LogicalExpr::And(xs) => {
            w.put_u8(0x01);
            w.put_count(xs.len());
            for x in xs {
                put_expr(w, x);
            }
        }
        LogicalExpr::Or(xs) => {
            w.put_u8(0x02);
            w.put_count(xs.len());
            for x in xs {
                put_expr(w, x);
            }
        }
    }
}

fn get_expr_at(r: &mut Reader, depth: usize) -> Result<LogicalExpr, WireError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(WireError::BadValue {
            context: "expression nests too deeply",
        });
    }
    match r.u8()? {
        0x00 => Ok(LogicalExpr::Pred(get_predicate(r)?)),
        tag @ (0x01 | 0x02) => {
            let n = r.count(1)?;
            // Zero-child connectives are rejected outright: an empty `Or`
            // contributes a zero factor to the DNF clause product, which
            // would let an otherwise-explosive `And` slip past the
            // MAX_DNF_CLAUSES check while `to_dnf` still materializes the
            // huge intermediate accumulator (a remote OOM primitive).
            if n == 0 {
                return Err(WireError::BadValue {
                    context: "zero-child connective (And/Or needs at least one child)",
                });
            }
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(get_expr_at(r, depth + 1)?);
            }
            Ok(if tag == 0x01 {
                LogicalExpr::And(xs)
            } else {
                LogicalExpr::Or(xs)
            })
        }
        tag => Err(WireError::BadTag {
            context: "logical expression",
            tag,
        }),
    }
}

fn get_expr(r: &mut Reader) -> Result<LogicalExpr, WireError> {
    let expr = get_expr_at(r, 0)?;
    // The engine's own saturating pre-expansion bound (clamped factors,
    // so every intermediate of the expansion is covered, not just its
    // final size): `to_dnf` checks the same bound and panics — here a
    // hostile expression gets a typed rejection instead.
    if expr.dnf_clause_bound() > MAX_DNF_CLAUSES {
        return Err(WireError::BadValue {
            context: "expression expands past the DNF clause bound",
        });
    }
    Ok(expr)
}

// ---------------------------------------------------------------------------
// Datasets / shards
// ---------------------------------------------------------------------------

fn put_dataset(w: &mut Writer, ds: &Dataset) {
    w.put_str(ds.name());
    w.put_u32(ds.dim() as u32);
    w.put_count(ds.len());
    for p in ds.points() {
        for h in 0..ds.dim() {
            w.put_f64(p[h]);
        }
    }
}

fn get_dataset(r: &mut Reader) -> Result<Dataset, WireError> {
    let name = r.str_()?;
    let dim = r.u32()? as usize;
    if dim == 0 {
        return Err(WireError::BadValue {
            context: "dataset dimension must be >= 1",
        });
    }
    let n = r.count(dim.saturating_mul(8))?;
    if n == 0 {
        return Err(WireError::BadValue {
            context: "datasets must be non-empty",
        });
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            let x = r.f64()?;
            if !x.is_finite() {
                return Err(WireError::BadValue {
                    context: "non-finite dataset coordinate",
                });
            }
            row.push(x);
        }
        rows.push(row);
    }
    Ok(Dataset::from_rows(name, rows))
}

fn put_shard_data(w: &mut Writer, datasets: &[Dataset], global_ids: &[GlobalId]) {
    w.put_count(datasets.len());
    for ds in datasets {
        put_dataset(w, ds);
    }
    w.put_count(global_ids.len());
    for &id in global_ids {
        w.put_u64(id);
    }
}

fn get_shard_data(r: &mut Reader) -> Result<(Vec<Dataset>, Vec<GlobalId>), WireError> {
    let n = r.count(13)?; // name len + dim + count + >= 1 coordinate
    if n == 0 {
        return Err(WireError::BadValue {
            context: "a shard must hold at least one dataset",
        });
    }
    let mut datasets = Vec::with_capacity(n);
    for _ in 0..n {
        datasets.push(get_dataset(r)?);
    }
    let dim = datasets[0].dim();
    if datasets.iter().any(|d| d.dim() != dim) {
        return Err(WireError::BadValue {
            context: "datasets in one shard must share the schema dimension",
        });
    }
    let m = r.count(8)?;
    let mut ids = Vec::with_capacity(m);
    for _ in 0..m {
        ids.push(r.u64()?);
    }
    Ok((datasets, ids))
}

// ---------------------------------------------------------------------------
// Engine results
// ---------------------------------------------------------------------------

fn put_engine_error(w: &mut Writer, e: &EngineError) {
    match e {
        EngineError::MissingRank(k) => {
            w.put_u8(0x00);
            w.put_u64(*k as u64);
        }
        EngineError::DimensionMismatch { expected, got } => {
            w.put_u8(0x01);
            w.put_u64(*expected as u64);
            w.put_u64(*got as u64);
        }
    }
}

fn get_engine_error(r: &mut Reader) -> Result<EngineError, WireError> {
    match r.u8()? {
        0x00 => Ok(EngineError::MissingRank(r.u64()? as usize)),
        0x01 => Ok(EngineError::DimensionMismatch {
            expected: r.u64()? as usize,
            got: r.u64()? as usize,
        }),
        tag => Err(WireError::BadTag {
            context: "engine error",
            tag,
        }),
    }
}

fn put_engine_result(w: &mut Writer, res: &Result<Vec<GlobalId>, EngineError>) {
    match res {
        Ok(ids) => {
            w.put_u8(0x00);
            w.put_count(ids.len());
            for &id in ids {
                w.put_u64(id);
            }
        }
        Err(e) => {
            w.put_u8(0x01);
            put_engine_error(w, e);
        }
    }
}

fn get_engine_result(r: &mut Reader) -> Result<Result<Vec<GlobalId>, EngineError>, WireError> {
    match r.u8()? {
        0x00 => {
            let n = r.count(8)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.u64()?);
            }
            Ok(Ok(ids))
        }
        0x01 => Ok(Err(get_engine_error(r)?)),
        tag => Err(WireError::BadTag {
            context: "engine result",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

fn put_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    w.put_count(BUCKETS);
    for &c in &h.counts {
        w.put_u64(c);
    }
}

fn get_histogram(r: &mut Reader) -> Result<HistogramSnapshot, WireError> {
    let n = r.count(8)?;
    if n != BUCKETS {
        return Err(WireError::BadValue {
            context: "histogram bucket count does not match this build",
        });
    }
    let mut counts = [0u64; BUCKETS];
    for c in counts.iter_mut() {
        *c = r.u64()?;
    }
    Ok(HistogramSnapshot::from_counts(counts))
}

fn put_trace(w: &mut Writer, t: &QueryTrace) {
    w.put_u64(t.seq);
    w.put_u8(t.opcode);
    w.put_u64(t.decode_ns);
    w.put_u64(t.queue_ns);
    w.put_u64(t.execute_ns);
    w.put_u64(t.write_ns);
    w.put_u64(t.total_ns);
    w.put_u32(t.shards_scattered);
    w.put_u32(t.shards_skipped_box);
    w.put_u32(t.shards_skipped_synopsis);
    w.put_u64(t.bytes_in);
    w.put_u64(t.bytes_out);
}

/// Fixed encoded size of one [`QueryTrace`]: seq + opcode + 5 stage/total
/// nanos + 3 shard counts + 2 byte counts.
const TRACE_WIRE_LEN: usize = 8 + 1 + 5 * 8 + 3 * 4 + 2 * 8;

fn get_trace(r: &mut Reader) -> Result<QueryTrace, WireError> {
    Ok(QueryTrace {
        seq: r.u64()?,
        opcode: r.u8()?,
        decode_ns: r.u64()?,
        queue_ns: r.u64()?,
        execute_ns: r.u64()?,
        write_ns: r.u64()?,
        total_ns: r.u64()?,
        shards_scattered: r.u32()?,
        shards_skipped_box: r.u32()?,
        shards_skipped_synopsis: r.u32()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
    })
}

fn put_metrics(w: &mut Writer, m: &MetricsReport) {
    w.put_count(METRICS_HISTOGRAMS);
    for (_, h) in m.stages() {
        put_histogram(w, h);
    }
    w.put_count(m.slow_queries.len());
    for t in &m.slow_queries {
        put_trace(w, t);
    }
}

fn get_metrics(r: &mut Reader) -> Result<MetricsReport, WireError> {
    // Each histogram is at least a bucket count (4 bytes); the loose
    // minimum keeps the hostile-count guard while letting a future server
    // append histograms with a different bucket scheme.
    let n = r.count(4)?;
    if n < METRICS_HISTOGRAMS {
        return Err(WireError::BadValue {
            context: "metrics snapshot is missing histograms",
        });
    }
    let decode = get_histogram(r)?;
    let queue = get_histogram(r)?;
    let execute = get_histogram(r)?;
    let write = get_histogram(r)?;
    let routing = get_histogram(r)?;
    let scatter = get_histogram(r)?;
    // Skip appended histograms a newer server may ship (self-delimiting:
    // bucket count, then that many u64s).
    for _ in METRICS_HISTOGRAMS..n {
        let buckets = r.count(8)?;
        for _ in 0..buckets {
            r.u64()?;
        }
    }
    let n_traces = r.count(TRACE_WIRE_LEN)?;
    let mut slow_queries = Vec::with_capacity(n_traces);
    for _ in 0..n_traces {
        slow_queries.push(get_trace(r)?);
    }
    Ok(MetricsReport {
        decode,
        queue,
        execute,
        write,
        routing,
        scatter,
        slow_queries,
    })
}

// ---------------------------------------------------------------------------
// Requests / responses
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes to `(opcode, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        let op = self.encode_to(&mut w);
        (op, w.into_bytes())
    }

    /// Encodes the payload into a caller-provided [`Writer`] (whose
    /// backing buffer is typically pooled — see
    /// [`Writer::from_vec`](crate::wire::Writer::from_vec)), returning
    /// the opcode. The allocation-free twin of
    /// [`encode`](Self::encode).
    pub fn encode_to(&self, w: &mut Writer) -> u8 {
        match self {
            Request::Query(expr) => {
                put_expr(w, expr);
                opcode::QUERY
            }
            Request::QueryBatch(exprs) => {
                w.put_count(exprs.len());
                for e in exprs {
                    put_expr(w, e);
                }
                opcode::QUERY_BATCH
            }
            Request::AddShard {
                request_id,
                datasets,
                global_ids,
            } => {
                w.put_u64(*request_id);
                put_shard_data(w, datasets, global_ids);
                opcode::ADD_SHARD
            }
            Request::RebuildShard {
                shard,
                request_id,
                datasets,
                global_ids,
            } => {
                w.put_u32(*shard);
                w.put_u64(*request_id);
                put_shard_data(w, datasets, global_ids);
                opcode::REBUILD_SHARD
            }
            Request::Stats => opcode::STATS,
            Request::Ping { token } => {
                w.put_u64(*token);
                opcode::PING
            }
            Request::Shutdown => opcode::SHUTDOWN,
            Request::Sleep { ms } => {
                w.put_u32(*ms);
                opcode::SLEEP
            }
            Request::SplitShard { shard, move_ids } => {
                w.put_u32(*shard);
                w.put_count(move_ids.len());
                for &id in move_ids {
                    w.put_u64(id);
                }
                opcode::SPLIT_SHARD
            }
            Request::MergeShards { a, b } => {
                w.put_u32(*a);
                w.put_u32(*b);
                opcode::MERGE_SHARDS
            }
            Request::Metrics => opcode::METRICS,
        }
    }

    /// Decodes and validates a request payload. Rejections are typed; the
    /// payload must be fully consumed.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match op {
            opcode::QUERY => Request::Query(get_expr(&mut r)?),
            opcode::QUERY_BATCH => {
                let n = r.count(1)?;
                let mut exprs = Vec::with_capacity(n);
                for _ in 0..n {
                    exprs.push(get_expr(&mut r)?);
                }
                Request::QueryBatch(exprs)
            }
            opcode::ADD_SHARD => {
                let request_id = r.u64()?;
                let (datasets, global_ids) = get_shard_data(&mut r)?;
                Request::AddShard {
                    request_id,
                    datasets,
                    global_ids,
                }
            }
            opcode::REBUILD_SHARD => {
                let shard = r.u32()?;
                let request_id = r.u64()?;
                let (datasets, global_ids) = get_shard_data(&mut r)?;
                Request::RebuildShard {
                    shard,
                    request_id,
                    datasets,
                    global_ids,
                }
            }
            opcode::STATS => Request::Stats,
            opcode::PING => Request::Ping { token: r.u64()? },
            opcode::SHUTDOWN => Request::Shutdown,
            opcode::SLEEP => Request::Sleep { ms: r.u32()? },
            opcode::SPLIT_SHARD => {
                let shard = r.u32()?;
                let n = r.count(8)?;
                if n == 0 {
                    return Err(WireError::BadValue {
                        context: "a split must move at least one id",
                    });
                }
                let mut move_ids = Vec::with_capacity(n);
                for _ in 0..n {
                    move_ids.push(r.u64()?);
                }
                Request::SplitShard { shard, move_ids }
            }
            opcode::MERGE_SHARDS => Request::MergeShards {
                a: r.u32()?,
                b: r.u32()?,
            },
            opcode::METRICS => Request::Metrics,
            tag => {
                return Err(WireError::BadTag {
                    context: "request opcode",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes to `(opcode, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        let op = self.encode_to(&mut w);
        (op, w.into_bytes())
    }

    /// Encodes the payload into a caller-provided [`Writer`], returning
    /// the opcode — the allocation-free twin of [`encode`](Self::encode)
    /// used by the session layer's pooled write buffers.
    pub fn encode_to(&self, w: &mut Writer) -> u8 {
        match self {
            Response::Hits(res) => {
                put_engine_result(w, res);
                opcode::HITS
            }
            Response::BatchHits(results) => {
                w.put_count(results.len());
                for res in results {
                    put_engine_result(w, res);
                }
                opcode::BATCH_HITS
            }
            Response::ShardAdded { shard } => {
                w.put_u32(*shard);
                opcode::SHARD_ADDED
            }
            Response::Done => opcode::DONE,
            Response::Stats(stats) => {
                let fields = stats.fields();
                w.put_count(fields.len());
                for x in fields {
                    w.put_u64(x);
                }
                opcode::STATS_REPLY
            }
            Response::Pong { token } => {
                w.put_u64(*token);
                opcode::PONG
            }
            Response::Busy => opcode::BUSY,
            Response::Error(e) => {
                w.put_u8(match e.kind {
                    ServerErrorKind::Protocol => 0x00,
                    ServerErrorKind::Ingest => 0x01,
                    ServerErrorKind::Unavailable => 0x02,
                    ServerErrorKind::InvalidQuery => 0x03,
                    ServerErrorKind::Internal => 0x04,
                    ServerErrorKind::Throttled => 0x05,
                });
                w.put_str(&e.message);
                opcode::ERROR
            }
            Response::Metrics(m) => {
                put_metrics(w, m);
                opcode::METRICS_REPLY
            }
        }
    }

    /// Decodes a response payload (the client side of the codec).
    pub fn decode(op: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match op {
            opcode::HITS => Response::Hits(get_engine_result(&mut r)?),
            opcode::BATCH_HITS => {
                let n = r.count(1)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(get_engine_result(&mut r)?);
                }
                Response::BatchHits(results)
            }
            opcode::SHARD_ADDED => Response::ShardAdded { shard: r.u32()? },
            opcode::DONE => Response::Done,
            opcode::STATS_REPLY => {
                let n = r.count(8)?;
                let known = ServerStats::default().fields().len();
                if n < known {
                    return Err(WireError::BadValue {
                        context: "stats snapshot is missing fields",
                    });
                }
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(r.u64()?);
                }
                Response::Stats(ServerStats::from_fields(&fields))
            }
            opcode::PONG => Response::Pong { token: r.u64()? },
            opcode::BUSY => Response::Busy,
            opcode::ERROR => {
                let kind = match r.u8()? {
                    0x00 => ServerErrorKind::Protocol,
                    0x01 => ServerErrorKind::Ingest,
                    0x02 => ServerErrorKind::Unavailable,
                    0x03 => ServerErrorKind::InvalidQuery,
                    0x04 => ServerErrorKind::Internal,
                    0x05 => ServerErrorKind::Throttled,
                    tag => {
                        return Err(WireError::BadTag {
                            context: "error kind",
                            tag,
                        })
                    }
                };
                Response::Error(ServerError {
                    kind,
                    message: r.str_()?,
                })
            }
            opcode::METRICS_REPLY => Response::Metrics(get_metrics(&mut r)?),
            tag => {
                return Err(WireError::BadTag {
                    context: "response opcode",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr() -> LogicalExpr {
        LogicalExpr::Or(vec![
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile(
                    Rect::from_bounds(&[-1.0, 0.0], &[1.0, 10.0]),
                    Interval::new(0.25, 0.75),
                )),
                LogicalExpr::Pred(Predicate::topk_at_least(vec![0.6, 0.8], 3, -0.0)),
            ]),
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(2.0, 4.0),
                0.9,
            )),
        ])
    }

    /// Encode → decode → encode must be the identity on bytes (the codec
    /// is deterministic, so byte equality is structural equality).
    fn round_trip_request(req: &Request) {
        let (op, bytes) = req.encode();
        let decoded = Request::decode(op, &bytes).expect("valid request decodes");
        let (op2, bytes2) = decoded.encode();
        assert_eq!((op, bytes), (op2, bytes2));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Query(expr()));
        round_trip_request(&Request::QueryBatch(vec![expr(), expr()]));
        round_trip_request(&Request::AddShard {
            request_id: 0,
            datasets: vec![
                Dataset::from_rows("a", vec![vec![1.0, 2.0], vec![3.0, 4.0]]),
                Dataset::from_rows("ü", vec![vec![-5.0, 0.5]]),
            ],
            global_ids: vec![3, 9],
        });
        round_trip_request(&Request::AddShard {
            request_id: u64::MAX,
            datasets: vec![Dataset::from_rows("dedup", vec![vec![1.0]])],
            global_ids: vec![11],
        });
        round_trip_request(&Request::RebuildShard {
            shard: 2,
            request_id: 0xDEAD_BEEF,
            datasets: vec![Dataset::from_rows("b", vec![vec![0.0]])],
            global_ids: vec![7],
        });
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Ping { token: u64::MAX });
        round_trip_request(&Request::Shutdown);
        round_trip_request(&Request::Sleep { ms: 250 });
        round_trip_request(&Request::SplitShard {
            shard: 1,
            move_ids: vec![9, 3, u64::MAX],
        });
        round_trip_request(&Request::MergeShards { a: 2, b: 0 });
        round_trip_request(&Request::Metrics);
    }

    #[test]
    fn empty_splits_are_rejected_at_decode() {
        let mut w = Writer::new();
        w.put_u32(0); // shard
        w.put_u32(0); // zero ids to move
        assert!(matches!(
            Request::decode(opcode::SPLIT_SHARD, &w.into_bytes()),
            Err(WireError::BadValue {
                context: "a split must move at least one id",
            })
        ));
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Hits(Ok(vec![1, 5, 9])),
            Response::Hits(Err(EngineError::MissingRank(7))),
            Response::Hits(Err(EngineError::DimensionMismatch {
                expected: 2,
                got: 5,
            })),
            Response::BatchHits(vec![
                Ok(vec![]),
                Err(EngineError::MissingRank(2)),
                Err(EngineError::DimensionMismatch {
                    expected: 1,
                    got: 3,
                }),
            ]),
            Response::ShardAdded { shard: 4 },
            Response::Done,
            Response::Stats(ServerStats {
                requests: 10,
                bytes_in: 999,
                n_shards: 3,
                sessions_throttled: 17,
                buffers_reused: 23,
                shard_splits: 4,
                shard_merges: 2,
                sessions_reaped: 6,
                retries_attempted: 12,
                requests_deduped: 8,
                shards_routed_by_synopsis: 17,
                ..Default::default()
            }),
            Response::Pong { token: 42 },
            Response::Busy,
            Response::Error(ServerError::new(ServerErrorKind::Ingest, "id 5 in use")),
            Response::Error(ServerError::new(ServerErrorKind::Throttled, "rate limited")),
            Response::Metrics(MetricsReport::default()),
            Response::Metrics({
                let mut m = MetricsReport::default();
                m.decode.counts[0] = 3;
                m.queue.counts[10] = u64::MAX;
                m.execute.counts[63] = 1;
                m.write.counts[1] = 9;
                m.routing.counts[5] = 2;
                m.scatter.counts[30] = 7;
                m.slow_queries = vec![
                    QueryTrace::default(),
                    QueryTrace {
                        seq: u64::MAX,
                        opcode: 0x02,
                        decode_ns: 1,
                        queue_ns: 2,
                        execute_ns: 3,
                        write_ns: 4,
                        total_ns: 10,
                        shards_scattered: 5,
                        shards_skipped_box: 6,
                        shards_skipped_synopsis: 7,
                        bytes_in: 100,
                        bytes_out: u64::MAX,
                    },
                ];
                m
            }),
        ];
        for resp in responses {
            let (op, bytes) = resp.encode();
            let decoded = Response::decode(op, &bytes).expect("valid response decodes");
            assert_eq!(decoded, resp);
            let (op2, bytes2) = decoded.encode();
            assert_eq!((op, bytes), (op2, bytes2));
        }
    }

    #[test]
    fn semantic_validation_rejects_engine_poison() {
        // NaN interval: would panic Interval::new in-process.
        let mut w = Writer::new();
        w.put_u8(0x00); // Pred
        w.put_u8(0x00); // Percentile
        w.put_u32(1);
        w.put_f64(0.0);
        w.put_f64(1.0);
        w.put_f64(f64::NAN);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        assert!(matches!(
            Request::decode(opcode::QUERY, &bytes),
            Err(WireError::BadValue { .. })
        ));
        // Deep nesting is bounded.
        let mut w = Writer::new();
        for _ in 0..(MAX_EXPR_DEPTH + 2) {
            w.put_u8(0x01); // And
            w.put_u32(1);
        }
        w.put_u8(0x00);
        let bytes = w.into_bytes();
        assert!(matches!(
            Request::decode(opcode::QUERY, &bytes),
            Err(WireError::BadValue {
                context: "expression nests too deeply"
            })
        ));
        // DNF explosion is bounded: And of 7 binary Ors → 2^7 clauses.
        let or = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(0.0, 1.0),
                0.5,
            )),
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(1.0, 2.0),
                0.5,
            )),
        ]);
        let bomb = LogicalExpr::And(vec![or; 7]);
        let (op, bytes) = Request::Query(bomb).encode();
        assert!(matches!(
            Request::decode(op, &bytes),
            Err(WireError::BadValue {
                context: "expression expands past the DNF clause bound"
            })
        ));
        // An empty dataset would panic Dataset::new.
        let mut w = Writer::new();
        w.put_u64(0); // request_id (no dedup)
        w.put_u32(1); // one dataset
        w.put_str("empty");
        w.put_u32(1); // dim
        w.put_u32(0); // no points
        w.put_u32(0); // no ids
        let bytes = w.into_bytes();
        assert!(matches!(
            Request::decode(opcode::ADD_SHARD, &bytes),
            Err(WireError::BadValue { .. })
        ));
    }

    #[test]
    fn zero_child_connectives_cannot_bypass_the_dnf_bound() {
        // A zero-child connective is rejected at decode.
        let mut w = Writer::new();
        w.put_u8(0x02); // Or
        w.put_u32(0); // no children
        assert!(matches!(
            Request::decode(opcode::QUERY, &w.into_bytes()),
            Err(WireError::BadValue {
                context: "zero-child connective (And/Or needs at least one child)"
            })
        ));
        // The bypass shape: And([Or(100 preds) × 3, Or([])]) has a DNF
        // clause *product* of zero (the empty Or), but to_dnf would
        // materialize the ~10^6-clause intermediate accumulator before
        // reaching the zero factor. It must never pass decode.
        let pred = || {
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(0.0, 1.0),
                0.5,
            ))
        };
        let wide_or = LogicalExpr::Or((0..100).map(|_| pred()).collect());
        let bomb = LogicalExpr::And(vec![
            wide_or.clone(),
            wide_or.clone(),
            wide_or,
            LogicalExpr::Or(vec![]),
        ]);
        let (op, bytes) = Request::Query(bomb.clone()).encode();
        assert!(matches!(
            Request::decode(op, &bytes),
            Err(WireError::BadValue { .. })
        ));
        // Defense in depth: even if zero-child connectives were ever
        // admitted again, the engine's clamped clause bound still trips
        // (every prefix product is <= the counted total), so `to_dnf`
        // refuses the expression up front instead of OOMing — pinned by
        // `dnf_bound_is_checked_before_expansion` in dds_core.
        assert!(bomb.dnf_clause_bound() > MAX_DNF_CLAUSES);
    }

    #[test]
    fn retry_safety_classification_matches_the_protocol_table() {
        let shard = (vec![Dataset::from_rows("d", vec![vec![1.0]])], vec![0u64]);
        let cases: Vec<(Request, RetrySafety, Option<u64>)> = vec![
            (Request::Query(expr()), RetrySafety::Safe, None),
            (Request::QueryBatch(vec![expr()]), RetrySafety::Safe, None),
            (Request::Stats, RetrySafety::Safe, None),
            (Request::Metrics, RetrySafety::Safe, None),
            (Request::Ping { token: 1 }, RetrySafety::Safe, None),
            (
                Request::SplitShard {
                    shard: 0,
                    move_ids: vec![1],
                },
                RetrySafety::Safe,
                None,
            ),
            (Request::MergeShards { a: 0, b: 1 }, RetrySafety::Safe, None),
            (
                Request::AddShard {
                    request_id: 0,
                    datasets: shard.0.clone(),
                    global_ids: shard.1.clone(),
                },
                RetrySafety::SafeIfDeduped,
                None,
            ),
            (
                Request::AddShard {
                    request_id: 42,
                    datasets: shard.0.clone(),
                    global_ids: shard.1.clone(),
                },
                RetrySafety::SafeIfDeduped,
                Some(42),
            ),
            (
                Request::RebuildShard {
                    shard: 0,
                    request_id: 7,
                    datasets: shard.0,
                    global_ids: shard.1,
                },
                RetrySafety::SafeIfDeduped,
                Some(7),
            ),
            (Request::Shutdown, RetrySafety::Unsafe, None),
            (Request::Sleep { ms: 1 }, RetrySafety::Unsafe, None),
        ];
        for (req, safety, dedup) in cases {
            assert_eq!(req.retry_safety(), safety, "{req:?}");
            assert_eq!(req.dedup_id(), dedup, "{req:?}");
        }
    }

    #[test]
    fn trailing_bytes_and_bad_opcodes_are_rejected() {
        let (op, mut bytes) = Request::Ping { token: 1 }.encode();
        bytes.push(0xFF);
        assert!(matches!(
            Request::decode(op, &bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
        assert!(matches!(
            Request::decode(0x7F, &[]),
            Err(WireError::BadTag {
                context: "request opcode",
                ..
            })
        ));
        assert!(matches!(
            Response::decode(0x00, &[]),
            Err(WireError::BadTag {
                context: "response opcode",
                ..
            })
        ));
    }
}
