//! Frame transport and byte-level primitives.
//!
//! Everything on the wire is a *frame*: a little-endian `u32` length
//! prefix followed by `version`, `opcode` and an opcode-specific payload
//! (grammar in `PROTOCOL.md`). This module owns the length-prefix
//! discipline — including the maximum-frame bound that keeps a hostile
//! length prefix from allocating unbounded memory — and the primitive
//! readers/writers the payload codecs in [`crate::protocol`] are built
//! from. No serde: every byte is written and checked by hand, so a
//! corrupt frame surfaces as a typed [`WireError`], never a panic.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried in every frame.
///
/// History: v1 was the original frame grammar; v2 added the
/// `request_id:u64` dedup token to the `AddShard`/`RebuildShard`
/// payloads — a breaking body change, so the version was bumped rather
/// than letting a v1 peer's first 8 payload bytes be silently consumed
/// as a request id. Peers speaking another version get a typed
/// `UnsupportedVersion` error and the connection closes.
pub const PROTOCOL_VERSION: u8 = 2;

/// Default upper bound on a frame body (version + opcode + payload).
/// Ingest frames carry whole shards, so the default is generous; servers
/// and clients can lower it.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Frame header bytes preceding the payload (version + opcode).
pub const FRAME_HEADER_LEN: u32 = 2;

/// Whether an I/O error kind means "the peer went away" (clean or
/// abrupt), as opposed to a genuinely local fault. The client folds
/// these into [`ClientError::ConnectionClosed`](crate::ClientError) and
/// the server's write path uses the same test to tell a dead reader from
/// a stalled one.
pub fn is_disconnect_kind(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// A typed wire-format violation. Decoding never panics: malformed,
/// truncated and oversized input all land here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The payload holds bytes past the end of the decoded value.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
    /// An enum discriminant outside the protocol grammar.
    BadTag {
        /// Which grammar production was being decoded.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field holds invalid UTF-8.
    BadUtf8,
    /// A field value violates a semantic constraint (NaN interval, empty
    /// dataset, inverted rectangle, …). The message names the constraint.
    BadValue {
        /// Which constraint was violated.
        context: &'static str,
    },
    /// The length prefix exceeds the configured frame bound.
    FrameTooLarge {
        /// Declared body length.
        len: u32,
        /// Configured bound.
        max: u32,
    },
    /// The length prefix is too small to hold version + opcode.
    FrameTooShort {
        /// Declared body length.
        len: u32,
    },
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version received.
        got: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated payload: field needs {needed} bytes, {have} left"
                )
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the decoded value")
            }
            WireError::BadTag { context, tag } => {
                write!(f, "invalid tag {tag:#04x} decoding {context}")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadValue { context } => write!(f, "invalid value: {context}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::FrameTooShort { len } => {
                write!(f, "frame body of {len} bytes cannot hold version + opcode")
            }
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {PROTOCOL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Why a frame read ended.
#[derive(Debug)]
pub enum FrameReadError {
    /// Clean end of stream before any header byte (peer closed politely).
    Eof,
    /// Transport failure, including a disconnect mid-frame.
    Io(io::Error),
    /// Header-level protocol violation ([`WireError::FrameTooLarge`] /
    /// [`WireError::FrameTooShort`]): the stream position can no longer be
    /// trusted, so the connection should close after reporting it.
    Wire(WireError),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Eof => write!(f, "peer closed the connection"),
            FrameReadError::Io(e) => write!(f, "transport error: {e}"),
            FrameReadError::Wire(e) => write!(f, "frame violation: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameReadError::Io(e) => Some(e),
            FrameReadError::Wire(e) => Some(e),
            FrameReadError::Eof => None,
        }
    }
}

/// One decoded frame: version byte, opcode byte, payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The version byte as received (validated by the session layer so it
    /// can answer a mismatch with a typed error).
    pub version: u8,
    /// Opcode selecting the payload grammar.
    pub opcode: u8,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total bytes this frame occupies on the wire (prefix included).
    pub fn wire_len(&self) -> u64 {
        4 + FRAME_HEADER_LEN as u64 + self.payload.len() as u64
    }
}

/// Writes one frame. `max_len` bounds the body exactly like the reader's
/// bound, so an over-large *outgoing* frame fails fast locally instead of
/// being rejected by the peer. Returns the bytes put on the wire.
pub fn write_frame(
    w: &mut impl Write,
    version: u8,
    opcode: u8,
    payload: &[u8],
    max_len: u32,
) -> io::Result<u64> {
    let body_len = payload
        .len()
        .checked_add(FRAME_HEADER_LEN as usize)
        .filter(|&n| n <= max_len as usize)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                WireError::FrameTooLarge {
                    len: payload.len().min(u32::MAX as usize) as u32,
                    max: max_len,
                },
            )
        })?;
    w.write_all(&(body_len as u32).to_le_bytes())?;
    w.write_all(&[version, opcode])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(4 + body_len as u64)
}

/// Reads one frame, allocating at most `max_len` bytes for the body.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Frame, FrameReadError> {
    let mut body = Vec::new();
    let (version, opcode) = read_frame_into(r, max_len, &mut body)?;
    Ok(Frame {
        version,
        opcode,
        payload: body,
    })
}

/// [`read_frame`] into a caller-provided payload buffer (cleared, then
/// filled with the payload — header bytes excluded), returning
/// `(version, opcode)`. The buffer keeps its capacity across calls, so a
/// read loop over same-sized frames stops allocating once warm — the
/// transport half of the session layer's zero-allocation steady state.
pub fn read_frame_into(
    r: &mut impl Read,
    max_len: u32,
    body: &mut Vec<u8>,
) -> Result<(u8, u8), FrameReadError> {
    let mut prefix = [0u8; 4];
    // Distinguish a clean close (no bytes at all) from a mid-prefix cut.
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameReadError::Eof
                } else {
                    FrameReadError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "disconnect inside a frame length prefix",
                    ))
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len < FRAME_HEADER_LEN {
        return Err(FrameReadError::Wire(WireError::FrameTooShort { len }));
    }
    if len > max_len {
        return Err(FrameReadError::Wire(WireError::FrameTooLarge {
            len,
            max: max_len,
        }));
    }
    let mut header = [0u8; FRAME_HEADER_LEN as usize];
    r.read_exact(&mut header).map_err(FrameReadError::Io)?;
    body.clear();
    body.resize(len as usize - FRAME_HEADER_LEN as usize, 0);
    r.read_exact(body).map_err(FrameReadError::Io)?;
    Ok((header[0], header[1]))
}

/// Payload writer: append-only primitives over a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    pub fn new() -> Self {
        Writer::default()
    }

    /// A writer over a reused buffer: `buf` is cleared but keeps its
    /// capacity, so encoding into a pooled or scratch buffer allocates
    /// nothing once the buffer has grown to the working set.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// The accumulated payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact: `-0.0`
    /// and every NaN payload survive the round trip).
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a sequence count (`u32`).
    pub fn put_count(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// Encodes one complete frame — length prefix, version, opcode, payload
/// — into `buf` (cleared first, capacity kept), where `encode` is an
/// `encode_to`-style closure writing the payload and returning the
/// opcode. The in-memory twin of [`write_frame`] used by the
/// nonblocking session layer and the client's scratch buffers: encoding
/// into a warm buffer allocates nothing, and the caller ships `buf`
/// with plain writes whenever the socket is ready.
///
/// Like [`write_frame`], a body past `max_len` is refused — but only
/// *after* encoding (the length isn't known up front), so the caller
/// still holds the grown buffer and can re-encode a small typed error
/// into it.
pub fn encode_frame_into(
    buf: &mut Vec<u8>,
    version: u8,
    max_len: u32,
    encode: impl FnOnce(&mut Writer) -> u8,
) -> Result<(), WireError> {
    let mut w = Writer::from_vec(std::mem::take(buf));
    w.put_u32(0); // length prefix, patched below
    w.put_u8(version);
    w.put_u8(0); // opcode, patched below
    let op = encode(&mut w);
    *buf = w.into_bytes();
    let body_len = buf.len() - 4;
    if body_len > max_len as usize {
        return Err(WireError::FrameTooLarge {
            len: body_len.min(u32::MAX as usize) as u32,
            max: max_len,
        });
    }
    buf[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    buf[5] = op;
    Ok(())
}

/// Payload reader: a checked cursor over a byte slice. Every accessor
/// returns [`WireError::Truncated`] instead of reading past the end.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a sequence count, rejecting counts that could not possibly
    /// fit in the remaining bytes (each element needs at least
    /// `min_elem_bytes`): a hostile count can never force a huge
    /// allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Truncated {
                needed: floor,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Asserts the payload is fully consumed (decoders call this last, so
    /// a frame with junk appended is rejected, not silently accepted).
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(u32::MAX);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::INFINITY);
        w.put_str("naïve");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), u32::MAX);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.str_().unwrap(), "naïve");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut w = Writer::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.u64(), Err(WireError::Truncated { .. })));
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { extra: 3 })
        ));
    }

    #[test]
    fn hostile_counts_cannot_allocate() {
        // Declares 2^31 elements with 4 bytes left: rejected before any
        // allocation.
        let mut w = Writer::new();
        w.put_u32(1 << 31);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count(8), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn frames_round_trip_and_enforce_bounds() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, PROTOCOL_VERSION, 0x42, b"abc", 1024).unwrap();
        assert_eq!(n, buf.len() as u64);
        let frame = read_frame(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!(
            frame,
            Frame {
                version: PROTOCOL_VERSION,
                opcode: 0x42,
                payload: b"abc".to_vec()
            }
        );
        // Oversized declared length is rejected without allocating.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&[1, 2, 3]);
        match read_frame(&mut hostile.as_slice(), 1024) {
            Err(FrameReadError::Wire(WireError::FrameTooLarge { .. })) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // A too-short body length cannot hold the header.
        let mut short = Vec::new();
        short.extend_from_slice(&1u32.to_le_bytes());
        short.push(0);
        match read_frame(&mut short.as_slice(), 1024) {
            Err(FrameReadError::Wire(WireError::FrameTooShort { len: 1 })) => {}
            other => panic!("expected FrameTooShort, got {other:?}"),
        }
        // Clean EOF before any byte vs a cut inside the prefix.
        assert!(matches!(
            read_frame(&mut (&[] as &[u8]), 1024),
            Err(FrameReadError::Eof)
        ));
        assert!(matches!(
            read_frame(&mut (&[9u8, 0] as &[u8]), 1024),
            Err(FrameReadError::Io(_))
        ));
        // Writer-side bound.
        let mut out = Vec::new();
        assert!(write_frame(&mut out, PROTOCOL_VERSION, 0, &[0u8; 64], 16).is_err());
    }

    #[test]
    fn encode_frame_into_matches_write_frame_bytes() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, PROTOCOL_VERSION, 0x42, b"abc", 1024).unwrap();
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, PROTOCOL_VERSION, 1024, |w| {
            w.put_u8(b'a');
            w.put_u8(b'b');
            w.put_u8(b'c');
            0x42
        })
        .unwrap();
        assert_eq!(buf, streamed);
        // Reuse: a second encode into the same buffer replaces, not
        // appends, and an oversized body is refused with the buffer still
        // usable.
        encode_frame_into(&mut buf, PROTOCOL_VERSION, 1024, |_| 0x01).unwrap();
        assert_eq!(buf.len(), 6);
        let err = encode_frame_into(&mut buf, PROTOCOL_VERSION, 16, |w| {
            for _ in 0..64 {
                w.put_u8(0);
            }
            0x01
        });
        assert!(matches!(err, Err(WireError::FrameTooLarge { .. })));
        encode_frame_into(&mut buf, PROTOCOL_VERSION, 1024, |_| 0x01).unwrap();
        assert_eq!(buf.len(), 6);
    }

    #[test]
    fn read_frame_into_reuses_the_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, PROTOCOL_VERSION, 0x07, b"hello", 1024).unwrap();
        write_frame(&mut wire, PROTOCOL_VERSION, 0x08, b"x", 1024).unwrap();
        let mut body = Vec::new();
        let mut cursor = wire.as_slice();
        assert_eq!(
            read_frame_into(&mut cursor, 1024, &mut body).unwrap(),
            (PROTOCOL_VERSION, 0x07)
        );
        assert_eq!(body, b"hello");
        let cap = body.capacity();
        assert_eq!(
            read_frame_into(&mut cursor, 1024, &mut body).unwrap(),
            (PROTOCOL_VERSION, 0x08)
        );
        assert_eq!(body, b"x");
        assert_eq!(body.capacity(), cap);
        assert!(matches!(
            read_frame_into(&mut cursor, 1024, &mut body),
            Err(FrameReadError::Eof)
        ));
    }
}
