//! Loopback integration: a served [`ShardedEngine`] must be
//! indistinguishable from the same engine in-process — byte-identical
//! query/batch answers and preserved `EngineError`s, under concurrent
//! clients, across the full ingest → query → rebuild → stats → shutdown
//! lifecycle — and overload must surface as a typed `Busy` (bounded
//! admission), never as unbounded buffering.

use dds_core::engine::EngineError;
use dds_core::framework::{LogicalExpr, Predicate, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::ShardedEngine;
use dds_geom::Rect;
use dds_server::protocol::{Request, Response, ServerErrorKind};
use dds_server::wire::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION};
use dds_server::{ClientError, DdsClient, DdsServer, RateLimit, ServerConfig};
use dds_workload::{RepoSpec, RequestStreamSpec};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn params() -> (PtileBuildParams, PrefBuildParams) {
    (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    )
}

/// Builds the same sharded engine twice: one to serve, one in-process
/// reference (identical builds are deterministic).
fn engine_pair(spec: &RepoSpec, shards: usize) -> (ShardedEngine, ShardedEngine) {
    let build = || {
        let (ptile, pref) = params();
        let mut svc = ShardedEngine::new(&[1], ptile, pref);
        for shard in spec.shards(shards) {
            svc.add_shard_opts(
                &Repository::from_point_sets(shard.sets),
                &shard.global_ids,
                &BuildOptions::serial(),
            );
        }
        svc
    };
    (build(), build())
}

/// Sends a request without waiting for the response (for queue-filling).
fn send_raw(stream: &mut TcpStream, req: &Request) {
    let (op, payload) = req.encode();
    write_frame(
        stream,
        PROTOCOL_VERSION,
        op,
        &payload,
        DEFAULT_MAX_FRAME_LEN,
    )
    .expect("raw send");
}

/// Reads one response frame.
fn read_resp(stream: &mut TcpStream) -> Response {
    let frame = read_frame(stream, DEFAULT_MAX_FRAME_LEN).expect("raw read");
    Response::decode(frame.opcode, &frame.payload).expect("decode response")
}

fn wide_query() -> LogicalExpr {
    LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 100.0),
        0.2,
    ))
}

/// Polls the server's stats until `pred` holds (the cross-thread
/// rendezvous used by the backpressure and drain tests).
fn await_stats(
    addr: std::net::SocketAddr,
    pred: impl Fn(&dds_server::ServerStats) -> bool,
    what: &str,
) -> dds_server::ServerStats {
    let mut client = DdsClient::connect(addr).expect("stats connection");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats call");
        if pred(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn served_answers_are_identical_to_in_process_under_concurrent_clients() {
    let spec = RepoSpec::mixed(18, 50, 1, 0xC0FFEE);
    let (local, served) = engine_pair(&spec, 3);
    // 30 requests over 5 popular shapes; every 5th asks for an unindexed
    // rank, so MissingRank propagation is exercised inside the stream.
    let exprs = RequestStreamSpec::new(30, 11)
        .with_shapes(5)
        .with_missing_rank_every(5, 9)
        .exprs(&spec);
    let expected: Vec<_> = exprs.iter().map(|e| local.query(e)).collect();
    assert!(
        expected
            .iter()
            .any(|r| r == &Err(EngineError::MissingRank(9))),
        "the stream must contain error answers for this test to bite"
    );
    let expected_batch = local.query_batch_opts(&exprs, &BuildOptions::serial());
    assert_eq!(expected, expected_batch, "sanity: batch ≡ singles locally");

    let server =
        DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let exprs = Arc::new(exprs);
    let expected = Arc::new(expected);
    std::thread::scope(|s| {
        for c in 0..3 {
            let exprs = Arc::clone(&exprs);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                let mut client = DdsClient::connect(addr).expect("client connect");
                client.ping().expect("ping");
                // Singles, in a per-client rotation so clients interleave
                // different expressions concurrently.
                for i in 0..exprs.len() {
                    let j = (i + c * 7) % exprs.len();
                    let got = client.query(&exprs[j]).expect("query transport");
                    assert_eq!(got, expected[j], "client {c}, expr {j}");
                }
                // The whole stream as one batch: input-ordered, identical.
                let got = client.query_batch(&exprs).expect("batch transport");
                assert_eq!(&got, &*expected, "client {c} batch");
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.queries, 90, "3 clients × 30 singles");
    assert_eq!(stats.batch_queries, 3);
    assert_eq!(stats.batch_exprs, 90);
    assert_eq!(stats.busy_rejections, 0, "default depth absorbs this load");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert_eq!(stats.n_shards, 3);
    assert_eq!(stats.n_datasets, 18);
    server.shutdown();
}

#[test]
fn ingest_query_rebuild_stats_shutdown_round_trip() {
    // The server starts EMPTY: the whole catalog arrives through the
    // client, and a local mirror applies the same ops for equivalence.
    let (ptile, pref) = params();
    let mut local = ShardedEngine::new(&[1], ptile, pref);
    let served = {
        let (ptile, pref) = params();
        ShardedEngine::new(&[1], ptile, pref)
    };
    let server =
        DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");

    let spec = RepoSpec::mixed(12, 40, 1, 0x5EED);
    let exprs = RequestStreamSpec::new(12, 3).exprs(&spec);

    // Ingest shard by shard through the wire, mirroring locally.
    for shard in spec.shards(3) {
        let repo = Repository::from_point_sets(shard.sets);
        let served_idx = client.add_shard(&repo, &shard.global_ids).expect("add");
        let local_idx = local.add_shard_opts(&repo, &shard.global_ids, &BuildOptions::serial());
        assert_eq!(served_idx, local_idx, "shard indexes agree");
    }
    let compare = |client: &mut DdsClient, local: &ShardedEngine| {
        for e in &exprs {
            assert_eq!(client.query(e).expect("transport"), local.query(e));
        }
        assert_eq!(
            client.query_batch(&exprs).expect("transport"),
            local.query_batch_opts(&exprs, &BuildOptions::serial())
        );
    };
    compare(&mut client, &local);

    // Rejected ingest: duplicate global id — typed, state untouched.
    let dup = Repository::from_point_sets(RepoSpec::mixed(1, 20, 1, 1).build());
    match client.add_shard(&dup, &[0]) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Ingest);
            assert!(e.message.contains("already served"), "{}", e.message);
        }
        other => panic!("expected a typed ingest rejection, got {other:?}"),
    }
    compare(&mut client, &local);

    // Rebuild shard 1 with shifted data under the same ids.
    let refreshed = RepoSpec::mixed(12, 40, 1, 0x5EFF).shards(3).swap_remove(1);
    let repo = Repository::from_point_sets(refreshed.sets);
    client
        .rebuild_shard(1, &repo, &refreshed.global_ids)
        .expect("rebuild");
    local.rebuild_shard_opts(1, &repo, &refreshed.global_ids, &BuildOptions::serial());
    compare(&mut client, &local);

    // A rebuild of a shard that does not exist is typed too.
    match client.rebuild_shard(9, &repo, &refreshed.global_ids) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Ingest);
            assert!(e.message.contains("no such shard"), "{}", e.message);
        }
        other => panic!("expected a typed rebuild rejection, got {other:?}"),
    }

    // Stats reflect the engine and the transport.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.n_shards, 3);
    assert_eq!(stats.n_datasets, 12);
    assert_eq!(stats.admin_ops, 6, "3 adds + 1 rejected add + 2 rebuilds");
    assert_eq!(
        (stats.cache_hits, stats.cache_misses),
        local.cache_stats(),
        "served cache counters mirror the local engine's"
    );

    // Remote shutdown, then reap: the server thread set is gone after.
    client.shutdown_server().expect("shutdown ack");
    server.wait_shutdown();
    let final_stats = server.shutdown();
    assert!(final_stats.requests >= stats.requests);
}

#[test]
fn live_split_and_merge_keep_concurrent_answers_byte_identical() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let spec = RepoSpec::mixed(12, 40, 1, 0xBEEF);
    let (local, served) = engine_pair(&spec, 2);
    // A popular-shape stream with MissingRank probes: transitions must
    // preserve errors exactly like hits.
    let exprs = RequestStreamSpec::new(20, 17)
        .with_shapes(5)
        .with_missing_rank_every(5, 9)
        .exprs(&spec);
    let expected: Vec<_> = exprs.iter().map(|e| local.query(e)).collect();
    let move_ids: Vec<u64> = {
        // Shard 0 serves the even ids (round-robin over 2 shards); the
        // split moves the upper half of them to a new shard.
        let ids = spec.shards(2).swap_remove(0).global_ids;
        ids[ids.len() / 2..].to_vec()
    };
    let server =
        DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let exprs = Arc::new(exprs);
    let expected = Arc::new(expected);
    let churned = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Readers hammer the stream for as long as the churn runs — every
        // answer must be byte-identical to the static in-process engine,
        // whichever side of a transition it lands on.
        for c in 0..3 {
            let exprs = Arc::clone(&exprs);
            let expected = Arc::clone(&expected);
            let churned = &churned;
            s.spawn(move || {
                let mut client = DdsClient::connect(addr).expect("reader connect");
                let mut finish_after = false;
                loop {
                    for (j, e) in exprs.iter().enumerate() {
                        let got = client.query(e).expect("query transport");
                        assert_eq!(got, expected[j], "reader {c}, expr {j}");
                    }
                    let got = client.query_batch(&exprs).expect("batch transport");
                    assert_eq!(&got, &*expected, "reader {c} batch");
                    if finish_after {
                        return;
                    }
                    // One more full pass after the churn completes, so the
                    // post-merge layout is definitely exercised.
                    finish_after = churned.load(Ordering::Acquire);
                }
            });
        }
        // The admin drives a split and a merge through the wire while the
        // readers run.
        let mut admin = DdsClient::connect(addr).expect("admin connect");
        let born = admin.split_shard(0, &move_ids).expect("split");
        assert_eq!(born, 2, "the new shard lands at the end");
        // Let the readers observe the 3-shard layout for a moment.
        std::thread::sleep(Duration::from_millis(50));
        let survivor = admin.merge_shards(2, 1).expect("merge");
        assert_eq!(survivor, 1, "merge survives at min(a, b)");
        churned.store(true, Ordering::Release);
    });
    let stats = server.stats();
    assert_eq!(stats.shard_splits, 1);
    assert_eq!(stats.shard_merges, 1);
    assert_eq!(stats.admin_ops, 2, "one split + one merge");
    assert_eq!(stats.n_shards, 2, "3 after the split, 2 after the merge");
    assert_eq!(stats.n_datasets, 12, "transitions conserve the catalog");
    server.shutdown();
}

#[test]
fn schema_mismatch_queries_get_typed_errors_not_panics() {
    let spec = RepoSpec::mixed(6, 30, 2, 77);
    let (_, served) = engine_pair(&spec, 2);
    let server = DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    // 1-d query against a 2-d catalog: in-process this would panic the
    // engine's dimension assert; served traffic gets a typed *permanent*
    // error (InvalidQuery, not the transient Unavailable).
    match client.query(&wide_query()) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ServerErrorKind::InvalidQuery),
        other => panic!("expected a typed schema error, got {other:?}"),
    }
    // The server survived and still answers well-formed queries.
    let ok = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::from_bounds(&[0.0, 0.0], &[100.0, 100.0]),
        0.2,
    ));
    assert!(client.query(&ok).expect("transport").is_ok());
    server.shutdown();
}

#[test]
fn full_admission_queue_answers_busy_with_bounded_memory() {
    let spec = RepoSpec::mixed(4, 30, 1, 9);
    let (local, served) = engine_pair(&spec, 1);
    let cfg = ServerConfig {
        queue_depth: 2,
        executors: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // Occupy the only executor...
    let mut sleeper = TcpStream::connect(addr).expect("sleeper");
    send_raw(&mut sleeper, &Request::Sleep { ms: 1500 });
    await_stats(addr, |s| s.jobs_dequeued == 1, "the sleep to start");
    // ...then fill both queue slots with unread queries...
    let mut q1 = TcpStream::connect(addr).expect("q1");
    send_raw(&mut q1, &Request::Query(wide_query()));
    let mut q2 = TcpStream::connect(addr).expect("q2");
    send_raw(&mut q2, &Request::Query(wide_query()));
    await_stats(addr, |s| s.jobs_admitted == 3, "the queue to fill");

    // ...so the next request must bounce with a typed Busy, unexecuted.
    let mut overflow = DdsClient::connect(addr).expect("overflow client");
    match overflow.query(&wide_query()) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    let stats = await_stats(addr, |s| s.busy_rejections == 1, "the busy count");
    assert_eq!(
        stats.jobs_admitted, 3,
        "the bounced request was never queued"
    );

    // Backpressure is not loss: everything admitted completes and
    // answers, and the bounced client just retries successfully.
    assert_eq!(read_resp(&mut sleeper), Response::Done);
    let expected = Response::Hits(local.query(&wide_query()));
    assert_eq!(read_resp(&mut q1), expected);
    assert_eq!(read_resp(&mut q2), expected);
    let retried = overflow.query(&wide_query()).expect("retry after drain");
    assert_eq!(retried, local.query(&wide_query()));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work_and_gates_new_work() {
    let spec = RepoSpec::mixed(4, 30, 1, 13);
    let (local, served) = engine_pair(&spec, 1);
    let cfg = ServerConfig {
        queue_depth: 4,
        executors: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // In-flight work: a sleep executing, a query admitted behind it.
    let mut sleeper = TcpStream::connect(addr).expect("sleeper");
    send_raw(&mut sleeper, &Request::Sleep { ms: 600 });
    await_stats(addr, |s| s.jobs_dequeued == 1, "the sleep to start");
    let mut queued = TcpStream::connect(addr).expect("queued");
    send_raw(&mut queued, &Request::Query(wide_query()));
    await_stats(addr, |s| s.jobs_admitted == 2, "the query to be admitted");

    // A bystander connection from before the shutdown...
    let mut bystander = DdsClient::connect(addr).expect("bystander");
    bystander.ping().expect("ping");
    // ...and the shutdown itself, via the wire.
    let mut admin = DdsClient::connect(addr).expect("admin");
    admin.shutdown_server().expect("shutdown ack");

    // New work on a surviving connection is gated with a typed error
    // (poll: the gate flips just after the shutdown ack is sent).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match bystander.query(&wide_query()) {
            Err(ClientError::Server(e)) if e.kind == ServerErrorKind::Unavailable => break,
            Ok(_) => assert!(Instant::now() < deadline, "shutdown gate never closed"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Reap: drains the queue first, so the admitted work was executed and
    // answered — nothing admitted is ever dropped.
    let stats = server.shutdown();
    assert_eq!(stats.jobs_completed, 2, "sleep + admitted query both ran");
    assert!(stats.unavailable_rejections >= 1);
    assert_eq!(read_resp(&mut sleeper), Response::Done);
    assert_eq!(
        read_resp(&mut queued),
        Response::Hits(local.query(&wide_query()))
    );
}

#[test]
fn sixty_four_idle_connections_are_served_by_two_io_threads() {
    // The scale-out contract: the I/O thread pool is FIXED (2 here) and
    // strictly smaller than the connection count (64), yet every session
    // is live — answered when it speaks, parked for free when idle. The
    // old thread-per-connection design would need 64 session threads.
    let spec = RepoSpec::mixed(4, 20, 1, 3);
    let (local, served) = engine_pair(&spec, 1);
    let cfg = ServerConfig {
        io_threads: 2,
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    const N: usize = 64;
    let mut clients: Vec<DdsClient> = (0..N)
        .map(|i| DdsClient::connect(addr).unwrap_or_else(|e| panic!("client {i}: {e}")))
        .collect();
    // Every connection is answered while the other 63 sit idle.
    for (i, c) in clients.iter_mut().enumerate() {
        c.ping().unwrap_or_else(|e| panic!("ping {i}: {e}"));
    }
    let stats = clients[0].stats().expect("stats");
    assert_eq!(stats.sessions_active, N as u64, "all 64 sessions live");
    assert_eq!(stats.sessions_opened, N as u64);
    // Work still round-trips through the executor pool for every one of
    // them — parked sessions come back for their completions.
    let expected = local.query(&wide_query());
    for (i, c) in clients.iter_mut().enumerate() {
        let got = c
            .query(&wide_query())
            .unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(got, expected, "client {i}");
    }
    drop(clients);
    // The sessions drain as the closes are noticed (<= 1 tolerates the
    // stats poller's own connection).
    await_stats(addr, |s| s.sessions_active <= 1, "sessions to drain");
    let final_stats = server.shutdown();
    assert_eq!(final_stats.sessions_active, 0, "no session leaked");
}

#[test]
fn reconnect_storm_leaves_stats_consistent_and_reuses_buffers() {
    let spec = RepoSpec::mixed(4, 20, 1, 5);
    let (_, served) = engine_pair(&spec, 1);
    let server = DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    #[cfg(target_os = "linux")]
    let fds_before = std::fs::read_dir("/proc/self/fd").unwrap().count();

    const CYCLES: usize = 100;
    for i in 0..CYCLES {
        let mut c = DdsClient::connect(addr).unwrap_or_else(|e| panic!("cycle {i}: {e}"));
        c.ping().unwrap_or_else(|e| panic!("ping {i}: {e}"));
        // Half the cycles drop with a request the client never awaits,
        // so the server also sees mid-session disappearances.
        if i % 2 == 0 {
            let mut raw = TcpStream::connect(addr).expect("raw");
            send_raw(&mut raw, &Request::Ping { token: i as u64 });
        }
    }
    let stats = await_stats(
        addr,
        |s| s.sessions_active <= 1 && s.sessions_opened >= (CYCLES + CYCLES / 2) as u64,
        "the storm to drain",
    );
    assert_eq!(stats.wire_errors, 0, "clean closes are not wire errors");
    assert!(
        stats.buffers_reused > 0,
        "a warm pool must serve reconnects from recycled buffers"
    );

    // Tolerant fd-leak check: other tests in this process open and close
    // sockets concurrently, so poll until the count settles near the
    // baseline instead of demanding an instant exact match.
    #[cfg(target_os = "linux")]
    {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let fds_now = std::fs::read_dir("/proc/self/fd").unwrap().count();
            if fds_now <= fds_before + 16 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "fd count never settled: {fds_before} before the storm, {fds_now} after"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    let final_stats = server.shutdown();
    assert_eq!(final_stats.sessions_active, 0, "no session leaked");
    assert!(final_stats.sessions_opened >= (CYCLES + CYCLES / 2) as u64);
}

#[test]
fn exhausted_rate_limits_answer_typed_throttled_errors() {
    let spec = RepoSpec::mixed(4, 20, 1, 7);
    let (local, served) = engine_pair(&spec, 1);
    // per_sec: 0 — the burst is all a session gets, so the drill is
    // fully deterministic.
    let cfg = ServerConfig {
        rate_limit: Some(RateLimit {
            burst: 3,
            per_sec: 0,
        }),
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    let mut client = DdsClient::connect(addr).expect("connect");
    let expected = local.query(&wide_query());
    for i in 0..3 {
        let got = client
            .query(&wide_query())
            .unwrap_or_else(|e| panic!("in-budget {i}: {e}"));
        assert_eq!(got, expected);
    }
    // The fourth work op exceeds the burst: typed, transient, counted.
    match client.query(&wide_query()) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Throttled);
            assert!(e.message.contains("rate limit"), "{}", e.message);
        }
        other => panic!("expected a typed throttle, got {other:?}"),
    }
    // Control ops are never throttled: the session can still observe the
    // server (and see itself counted).
    client.ping().expect("ping is not throttled");
    let stats = client.stats().expect("stats is not throttled");
    assert_eq!(stats.sessions_throttled, 1);
    assert_eq!(stats.queries, 3, "the throttled query never executed");
    // Budgets are per session: a fresh connection has its own bucket.
    let mut fresh = DdsClient::connect(addr).expect("fresh connect");
    assert_eq!(fresh.query(&wide_query()).expect("fresh budget"), expected);
    server.shutdown();
}

#[test]
fn rate_limit_tokens_refill_over_time() {
    let spec = RepoSpec::mixed(4, 20, 1, 9);
    let (local, served) = engine_pair(&spec, 1);
    // One-token bucket refilling at 2/s: a back-to-back second query is
    // throttled, a 700ms wait buys the token back.
    let cfg = ServerConfig {
        rate_limit: Some(RateLimit {
            burst: 1,
            per_sec: 2,
        }),
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", cfg).expect("bind");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    let expected = local.query(&wide_query());
    assert_eq!(client.query(&wide_query()).expect("first"), expected);
    match client.query(&wide_query()) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ServerErrorKind::Throttled),
        other => panic!("expected a throttle before the refill, got {other:?}"),
    }
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(client.query(&wide_query()).expect("after refill"), expected);
    server.shutdown();
}

#[test]
fn metrics_report_per_stage_latencies_without_touching_answers() {
    let spec = RepoSpec::mixed(12, 40, 1, 0x713);
    let (local, served) = engine_pair(&spec, 2);
    let exprs = RequestStreamSpec::new(20, 7).with_shapes(4).exprs(&spec);
    let expected: Vec<_> = exprs.iter().map(|e| local.query(e)).collect();

    // A zero threshold turns every request into a slow-query trace, so
    // the ring is demonstrably populated; answers must be unchanged.
    let cfg = ServerConfig {
        slow_query_threshold: Duration::ZERO,
        slow_log_capacity: 8,
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", cfg).expect("bind loopback");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    for (e, want) in exprs.iter().zip(&expected) {
        assert_eq!(&client.query(e).expect("query"), want);
    }

    let report = client.metrics().expect("metrics");
    for (stage, snap) in report.stages() {
        assert!(snap.total() > 0, "stage {stage} recorded nothing");
        let p50 = snap.quantile(0.5).expect("p50");
        let p99 = snap.quantile(0.99).expect("p99");
        let p999 = snap.quantile(0.999).expect("p999");
        assert!(
            p50 <= p99 && p99 <= p999,
            "{stage}: p50 {p50} p99 {p99} p999 {p999}"
        );
    }

    // The ring holds the most recent traces in sequence order, and every
    // trace carries real sizes and consistent stage sums.
    let traces = &report.slow_queries;
    assert!(!traces.is_empty() && traces.len() <= 8, "{}", traces.len());
    for w in traces.windows(2) {
        assert!(w[0].seq < w[1].seq, "seqs must ascend");
    }
    for t in traces {
        assert!(t.bytes_in > 0 && t.bytes_out > 0);
        assert!(t.total_ns >= t.decode_ns && t.total_ns >= t.write_ns);
    }
    assert!(
        traces
            .iter()
            .any(|t| t.shards_scattered + t.shards_skipped_box + t.shards_skipped_synopsis > 0),
        "query traces must see shard routing"
    );

    // The Prometheus-style rendering names every stage and the ring.
    let text = report.render_text();
    for (stage, _) in report.stages() {
        assert!(text.contains(&format!("stage=\"{stage}\"")), "{stage}");
    }
    assert!(text.contains("dds_slow_queries_recent"));
    server.shutdown();
}
