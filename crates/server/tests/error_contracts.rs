//! Error-surface contracts: every variant of the user-facing error
//! types renders a non-empty, distinct `Display`, chains its cause
//! through `source()` where one exists, and classifies transient vs
//! permanent the way the retry layer depends on.

use dds_core::engine::EngineError;
use dds_core::shard::IngestError;
use dds_server::wire::WireError;
use dds_server::{ClientError, ServerError, ServerErrorKind};
use std::error::Error as _;
use std::io;

/// Every [`ClientError`] variant, one of each.
fn all_client_errors() -> Vec<ClientError> {
    vec![
        ClientError::Io(io::Error::new(io::ErrorKind::AddrInUse, "port taken")),
        ClientError::TimedOut,
        ClientError::ConnectionClosed,
        ClientError::Wire(WireError::BadUtf8),
        ClientError::Busy,
        ClientError::Server(ServerError {
            kind: ServerErrorKind::Throttled,
            message: "rate limit".to_string(),
        }),
        ClientError::UnexpectedResponse {
            expected: "pong",
            got: "Done".to_string(),
        },
        ClientError::DeadlineExceeded {
            attempts: 4,
            last: Box::new(ClientError::ConnectionClosed),
        },
    ]
}

#[test]
fn every_client_error_displays_non_empty_and_distinct() {
    let rendered: Vec<String> = all_client_errors().iter().map(|e| e.to_string()).collect();
    for (i, s) in rendered.iter().enumerate() {
        assert!(!s.is_empty(), "variant {i} renders empty");
        for (j, other) in rendered.iter().enumerate() {
            assert!(i == j || s != other, "variants {i} and {j} render alike");
        }
    }
    // The wrapper includes its cause in the rendering, so a log line
    // alone tells the whole story.
    let last = rendered.last().expect("non-empty set");
    assert!(last.contains("4 attempts"), "{last}");
    assert!(last.contains("closed the connection"), "{last}");
}

#[test]
fn client_error_sources_chain_where_a_cause_exists() {
    for e in all_client_errors() {
        match &e {
            ClientError::Io(_)
            | ClientError::Wire(_)
            | ClientError::Server(_)
            | ClientError::DeadlineExceeded { .. } => {
                let src = e.source().unwrap_or_else(|| panic!("{e} must chain"));
                assert!(!src.to_string().is_empty());
            }
            _ => assert!(e.source().is_none(), "{e} has no cause to chain"),
        }
    }
    // The chain is walkable end to end.
    let deadline = ClientError::DeadlineExceeded {
        attempts: 2,
        last: Box::new(ClientError::Server(ServerError {
            kind: ServerErrorKind::Unavailable,
            message: "shutting down".to_string(),
        })),
    };
    let mid = deadline.source().expect("wrapper chains");
    assert!(mid.source().is_some(), "the server error chains once more");
}

#[test]
fn transience_classification_matches_the_retry_contract() {
    // Transient: transport faults and explicit back-off answers.
    for e in [
        ClientError::Io(io::Error::new(io::ErrorKind::AddrInUse, "x")),
        ClientError::TimedOut,
        ClientError::ConnectionClosed,
        ClientError::Busy,
        ClientError::Server(ServerError {
            kind: ServerErrorKind::Unavailable,
            message: String::new(),
        }),
        ClientError::Server(ServerError {
            kind: ServerErrorKind::Throttled,
            message: String::new(),
        }),
    ] {
        assert!(e.is_transient(), "{e} must be transient");
    }
    // Permanent: grammar violations, typed rejections, exhausted budget.
    for kind in [
        ServerErrorKind::Protocol,
        ServerErrorKind::Ingest,
        ServerErrorKind::InvalidQuery,
        ServerErrorKind::Internal,
    ] {
        let e = ClientError::Server(ServerError {
            kind,
            message: String::new(),
        });
        assert!(!e.is_transient(), "{e} must be permanent");
    }
    for e in [
        ClientError::Wire(WireError::BadUtf8),
        ClientError::UnexpectedResponse {
            expected: "pong",
            got: "Done".to_string(),
        },
        ClientError::DeadlineExceeded {
            attempts: 1,
            last: Box::new(ClientError::TimedOut),
        },
    ] {
        assert!(!e.is_transient(), "{e} must be permanent");
    }
    // The same split at the kind level (what the server-side mapping and
    // the client agree on).
    assert!(ServerErrorKind::Unavailable.is_transient());
    assert!(ServerErrorKind::Throttled.is_transient());
    assert!(!ServerErrorKind::Protocol.is_transient());
    assert!(!ServerErrorKind::Ingest.is_transient());
    assert!(!ServerErrorKind::InvalidQuery.is_transient());
    assert!(!ServerErrorKind::Internal.is_transient());
}

#[test]
fn every_ingest_error_displays_non_empty_and_distinct() {
    let variants: Vec<IngestError> = vec![
        IngestError::ArityMismatch {
            datasets: 3,
            ids: 2,
        },
        IngestError::SchemaMismatch {
            expected: 2,
            got: 3,
        },
        IngestError::DuplicateId(7),
        IngestError::IdInUse(7),
        IngestError::NoSuchShard {
            shard: 9,
            n_shards: 2,
        },
        IngestError::PhiAnchorExceeded {
            anchor: 10,
            prospective: 11,
        },
        IngestError::IdNotInShard { id: 7, shard: 1 },
        IngestError::EmptySplitSide {
            shard: 1,
            moving: 0,
            datasets: 4,
        },
        IngestError::MergeWithSelf { shard: 1 },
    ];
    let rendered: Vec<String> = variants.iter().map(|e| e.to_string()).collect();
    for (i, s) in rendered.iter().enumerate() {
        assert!(!s.is_empty(), "variant {i} renders empty");
        for (j, other) in rendered.iter().enumerate() {
            assert!(i == j || s != other, "variants {i} and {j} render alike");
        }
        // Leaf errors: Display is the whole story, nothing to chain.
        assert!(variants[i].source().is_none());
    }
}

#[test]
fn every_engine_error_displays_non_empty_and_distinct() {
    let variants = [
        EngineError::MissingRank(5),
        EngineError::DimensionMismatch {
            expected: 2,
            got: 3,
        },
    ];
    let rendered: Vec<String> = variants.iter().map(|e| e.to_string()).collect();
    assert!(rendered.iter().all(|s| !s.is_empty()));
    assert_ne!(rendered[0], rendered[1]);
    assert!(variants.iter().all(|e| e.source().is_none()));
}
