//! The fault-tolerance proof layer: seeded chaos between a real client
//! and a real server, with every surviving answer pinned byte-identical
//! to a clean in-process mirror.
//!
//! Every fault here replays from a seed (printed by the soak as it
//! runs), so any red run reproduces exactly:
//!
//! ```sh
//! cargo test -p dds-server --test fault_soak -- --nocapture
//! ```

use dds_core::framework::{LogicalExpr, Predicate, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::{GlobalId, ShardedEngine};
use dds_geom::Rect;
use dds_server::wire::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION};
use dds_server::{
    ChaosProxy, ClientConfig, ClientError, DdsClient, DdsServer, FaultPlan, Request, Response,
    RetryPolicy, ServerConfig,
};
use dds_workload::{FaultScheduleSpec, RepoSpec, RequestStreamSpec};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn params() -> (PtileBuildParams, PrefBuildParams) {
    (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    )
}

fn empty_engine() -> ShardedEngine {
    let (ptile, pref) = params();
    ShardedEngine::new(&[1], ptile, pref)
}

fn soak_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_secs(20),
        max_attempts: 16,
        base_backoff: Duration::from_millis(5),
        jitter_seed: seed,
    }
}

fn is_deadline(e: &ClientError) -> bool {
    matches!(e, ClientError::DeadlineExceeded { .. })
}

/// Queries until the transport yields an answer; panics (with the seed)
/// on any non-retryable failure.
fn query_until_answered(
    client: &mut DdsClient,
    e: &LogicalExpr,
    seed: u64,
) -> Result<Vec<GlobalId>, dds_core::engine::EngineError> {
    loop {
        match client.query(e) {
            Ok(answer) => return answer,
            Err(err) => assert!(
                err.is_transient() || is_deadline(&err),
                "seed {seed:#x}: non-retryable query failure: {err}"
            ),
        }
    }
}

/// Polls a fresh clean connection until `pred` holds on the stats.
fn await_stats(
    addr: std::net::SocketAddr,
    pred: impl Fn(&dds_server::ServerStats) -> bool,
    what: &str,
) -> dds_server::ServerStats {
    let mut client = DdsClient::connect(addr).expect("stats connection");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats call");
        if pred(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One full soak: ingest → query → split/merge → re-query through a
/// chaos proxy, mirrored cleanly in-process. Returns nothing — every
/// divergence panics with the seed embedded.
fn soak_one_seed(seed: u64) {
    println!("fault soak: seed {seed:#x}");
    // Heavier than the 400‰ default so most dialed connections carry a
    // fault — the soak exists to watch the retry loop actually fire.
    let schedule = FaultScheduleSpec {
        seed,
        fault_per_mille: 850,
    };
    let plan = FaultPlan::seeded(schedule.seed).with_fault_per_mille(schedule.fault_per_mille);

    let mut mirror = empty_engine();
    let server = DdsServer::serve(empty_engine(), "127.0.0.1:0", ServerConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: bind: {e}"));
    let proxy = ChaosProxy::spawn(server.local_addr(), plan)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: proxy: {e}"));
    let mut client = DdsClient::connect_with(proxy.local_addr(), ClientConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: connect: {e}"))
        .with_retry(soak_retry(seed));

    // Ingest through the chaos: a failed logical call is re-issued with
    // the SAME request_id, so the server lands each shard exactly once
    // no matter how many duplicates the retries produce.
    let spec = RepoSpec::mixed(12, 40, 1, seed.wrapping_add(0x50AC));
    let serial = BuildOptions::serial();
    for (i, shard) in spec.shards(3).into_iter().enumerate() {
        let repo = Repository::from_point_sets(shard.sets);
        let request_id = (seed << 8) | 0x1000 | i as u64;
        let served_idx = loop {
            match client.add_shard_with_id(request_id, &repo, &shard.global_ids) {
                Ok(idx) => break idx,
                Err(e) => assert!(
                    e.is_transient() || is_deadline(&e),
                    "seed {seed:#x}: ingest {i}: {e}"
                ),
            }
        };
        let mirror_idx = mirror.add_shard_opts(&repo, &shard.global_ids, &serial);
        assert_eq!(served_idx, mirror_idx, "seed {seed:#x}: shard index {i}");
    }

    // A request stream with error salting: MissingRank answers must
    // survive the chaos byte-identically too.
    let exprs = RequestStreamSpec::new(10, seed)
        .with_missing_rank_every(5, 9)
        .with_faults(schedule)
        .exprs(&spec);
    for (j, e) in exprs.iter().enumerate() {
        let got = query_until_answered(&mut client, e, seed);
        assert_eq!(got, mirror.query(e), "seed {seed:#x}: expr {j}");
    }

    // Live churn through the chaos. Lifecycle ops carry no payload; a
    // duplicate of an already-applied transition answers a typed
    // rejection, and the (retried, hence reliable) stats call tells
    // which way the race went.
    let mut ids = mirror.global_ids(0).to_vec();
    ids.sort_unstable();
    let move_ids = ids.split_off(ids.len() / 2);
    loop {
        match client.split_shard(0, &move_ids) {
            Ok(_) => break,
            Err(_) => match client.stats() {
                Ok(s) if s.n_shards == 4 => break,
                Ok(s) => assert_eq!(s.n_shards, 3, "seed {seed:#x}: split shape"),
                Err(_) => continue,
            },
        }
    }
    mirror
        .try_split_shard_opts(0, &move_ids, &serial)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: mirror split: {e}"));
    loop {
        match client.merge_shards(3, 0) {
            Ok(_) => break,
            Err(_) => match client.stats() {
                Ok(s) if s.n_shards == 3 => break,
                Ok(s) => assert_eq!(s.n_shards, 4, "seed {seed:#x}: merge shape"),
                Err(_) => continue,
            },
        }
    }
    mirror
        .try_merge_shards_opts(3, 0, &serial)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: mirror merge: {e}"));
    for (j, e) in exprs.iter().enumerate() {
        let got = query_until_answered(&mut client, e, seed);
        assert_eq!(got, mirror.query(e), "seed {seed:#x}: post-churn expr {j}");
    }
    drop(client);
    proxy.shutdown();

    // The acceptance gates: a fresh CLEAN connection round-trips stats,
    // zero panics, and the catalog shape matches the mirror — retried
    // AddShards never double-ingested.
    let mut fresh = DdsClient::connect(server.local_addr())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: post-soak connect: {e}"));
    let stats = fresh
        .stats()
        .unwrap_or_else(|e| panic!("seed {seed:#x}: post-soak stats: {e}"));
    assert_eq!(stats.executor_panics, 0, "seed {seed:#x}: panics");
    assert_eq!(
        stats.n_shards,
        mirror.n_shards() as u64,
        "seed {seed:#x}: shard count diverged (duplicate ingest?)"
    );
    assert_eq!(
        stats.n_datasets,
        mirror.n_datasets() as u64,
        "seed {seed:#x}: dataset count diverged (duplicate ingest?)"
    );
    server.shutdown();
}

#[test]
fn fault_soak_sixteen_seeds_byte_identical_answers() {
    for seed in 0..16 {
        soak_one_seed(seed);
    }
}

#[test]
fn retried_add_shard_with_same_request_id_cannot_double_ingest() {
    let server =
        DdsServer::serve(empty_engine(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let shard = RepoSpec::mixed(4, 30, 1, 0xD0D0).shards(1).swap_remove(0);
    let repo = Repository::from_point_sets(shard.sets);

    // Two byte-identical AddShard frames with the same nonzero
    // request_id, exactly what a retry after a lost answer re-sends.
    let req = Request::AddShard {
        request_id: 0xFEED_F00D,
        datasets: repo.datasets().to_vec(),
        global_ids: shard.global_ids.clone(),
    };
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    let send = |stream: &mut TcpStream, req: &Request| {
        let (op, payload) = req.encode();
        write_frame(
            stream,
            PROTOCOL_VERSION,
            op,
            &payload,
            DEFAULT_MAX_FRAME_LEN,
        )
        .expect("send");
        let frame = read_frame(stream, DEFAULT_MAX_FRAME_LEN).expect("read");
        Response::decode(frame.opcode, &frame.payload).expect("decode")
    };
    let first = send(&mut raw, &req);
    assert_eq!(first, Response::ShardAdded { shard: 0 });
    // The retry is REPLAYED, not re-executed: same answer, no new shard.
    let second = send(&mut raw, &req);
    assert_eq!(second, first, "the recorded response is replayed verbatim");
    let stats = await_stats(addr, |s| s.requests_deduped == 1, "the dedup counter");
    assert_eq!(stats.n_shards, 1, "the duplicate never ingested");
    assert_eq!(stats.n_datasets, 4);
    assert_eq!(stats.retries_attempted, 1);
    // A *different* id is a different request and executes normally —
    // rejected here because the ids are already served.
    let rejected = send(
        &mut raw,
        &Request::AddShard {
            request_id: 0xFEED_F00E,
            datasets: repo.datasets().to_vec(),
            global_ids: shard.global_ids.clone(),
        },
    );
    assert!(
        matches!(rejected, Response::Error(_)),
        "a fresh id executes (and is typed-rejected): {rejected:?}"
    );
    server.shutdown();
}

#[test]
fn clean_server_close_is_a_typed_connection_closed() {
    let server =
        DdsServer::serve(empty_engine(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping while up");
    server.shutdown();
    // The peer is gone: whether the failure surfaces on the write or on
    // the read of the next call, it is the typed ConnectionClosed — the
    // reconnectable case — never a bare Io.
    match client.ping() {
        Err(e @ ClientError::ConnectionClosed) => assert!(e.is_transient()),
        other => panic!("expected ConnectionClosed, got {other:?}"),
    }
}

#[test]
fn client_side_faults_heal_transparently_with_retries_counted() {
    let spec = RepoSpec::mixed(6, 30, 1, 0xFA17);
    let mut mirror = empty_engine();
    let mut served = empty_engine();
    for shard in spec.shards(2) {
        let repo = Repository::from_point_sets(shard.sets);
        mirror.add_shard_opts(&repo, &shard.global_ids, &BuildOptions::serial());
        served.add_shard_opts(&repo, &shard.global_ids, &BuildOptions::serial());
    }
    let server = DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    // EVERY connection this client dials suffers a fault plan; the retry
    // loop must still deliver clean answers.
    let mut client = DdsClient::connect(server.local_addr())
        .expect("connect")
        .with_retry(RetryPolicy {
            deadline: Duration::from_secs(20),
            max_attempts: 16,
            base_backoff: Duration::from_millis(2),
            jitter_seed: 0xFA17,
        })
        .with_faults(FaultPlan::seeded(0xFA17).with_fault_per_mille(1000));
    let exprs = RequestStreamSpec::new(12, 0xFA17).exprs(&spec);
    for (j, e) in exprs.iter().enumerate() {
        let got = query_until_answered(&mut client, e, 0xFA17);
        assert_eq!(got, mirror.query(e), "expr {j}");
    }
    assert!(
        client.retries() >= 1,
        "an all-faulty dial sequence must have healed at least once (got {})",
        client.retries()
    );
    server.shutdown();
}

#[test]
fn sessions_stalled_mid_frame_are_reaped_but_idle_ones_are_not() {
    let cfg = ServerConfig {
        stall_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(empty_engine(), "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // An idle connection (no bytes at all) is exempt from the deadline…
    let mut idle = DdsClient::connect(addr).expect("idle connect");
    idle.ping().expect("idle ping");
    // …while a peer that sends half a length prefix and goes silent is
    // mid-frame: reaped once the deadline passes.
    use std::io::Write as _;
    let mut stuck = TcpStream::connect(addr).expect("stuck connect");
    stuck.write_all(&[0x10, 0x00]).expect("half a prefix");
    let stats = await_stats(addr, |s| s.sessions_reaped == 1, "the stall reap");
    assert_eq!(stats.sessions_reaped, 1);
    // The idle session survived the sweep and still works.
    std::thread::sleep(Duration::from_millis(300));
    idle.ping().expect("idle session survived the reaper");
    server.shutdown();
}

#[test]
fn exhausted_retry_budget_surfaces_deadline_exceeded_with_the_last_error() {
    let server =
        DdsServer::serve(empty_engine(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = DdsClient::connect(addr)
        .expect("connect")
        .with_retry(RetryPolicy {
            deadline: Duration::from_secs(5),
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            jitter_seed: 7,
        });
    // Take the server away entirely: every attempt fails before a byte
    // is sent, which is always retryable — so the budget, not the
    // classification, ends the loop.
    server.shutdown();
    let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 100.0),
        0.5,
    ));
    match client.query(&expr) {
        Err(e @ ClientError::DeadlineExceeded { attempts, .. }) => {
            assert_eq!(attempts, 3, "every budgeted attempt was spent");
            // The wrapper is terminal even though the cause was transient.
            assert!(!e.is_transient());
            use std::error::Error as _;
            assert!(e.source().is_some(), "the last failure is chained");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}
